//! A compiled, queryable analysis session.
//!
//! [`Session::build`] turns one declarative [`AnalysisSpec`] into a ready
//! engine — replacing the imperative five-step dance (`build_design` →
//! `ThicknessModelBuilder` → `ChipAnalysis` → `build_engine`) with a
//! single call. [`Session::open`] does the same through the
//! [`ArtifactCache`]: a warm open deserializes the compiled model
//! (eigenbasis, BLOD moments, hybrid tables) instead of recomputing it,
//! and answers every query bit-identically to a cold build.
//!
//! # Example
//!
//! ```
//! use statobd::{AnalysisSpec, Session};
//! use statobd::core::{params, BlockSpec, ChipSpec, EngineKind};
//!
//! let mut chip = ChipSpec::new();
//! chip.add_block(BlockSpec::new("core", 1e5, 100_000, 368.15, 1.2, vec![(0, 1.0)])?)?;
//! let spec = AnalysisSpec::chip(chip)
//!     .with_grid_side(5)
//!     .with_engine(EngineKind::StClosed);
//! let mut session = Session::build(&spec)?;
//! let t = session.lifetime(params::ONE_PER_MILLION)?;
//! assert!(session.p_at(t)? > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::artifact::{ArtifactCache, CompiledModel};
use crate::error::{Error, Result};
use crate::spec::{AnalysisSpec, DesignSource};
use statobd_circuits::{build_design, DesignConfig};
use statobd_core::{
    build_engine, failure_rate_curve, params, solve_lifetime, ChipAnalysis, EngineSpec,
    HybridConfig, HybridTables, ReliabilityEngine,
};
use statobd_device::ClosedFormTech;
use statobd_manager::{ManagerConfig, PolicyConfig, ReliabilityManager, StepReport};
use statobd_num::impl_json_struct;
use statobd_num::json::{FromJson, Json, JsonError, ToJson};
use statobd_variation::{GridSpec, ThicknessModelBuilder};
use std::sync::Arc;

/// The lifetime-solve bracket shared by every session query (seconds):
/// generous enough for any physical design, tight enough to converge in a
/// few dozen bisections.
pub const LIFETIME_BRACKET_S: (f64, f64) = (1e4, 1e13);

/// Default service life assumed by the lazy reliability manager: five
/// years, the paper's DRM evaluation horizon.
pub const DEFAULT_SERVICE_LIFE_S: f64 = 5.0 * 3.156e7;

/// Where a session's compiled model came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionSource {
    /// Built from scratch (and possibly saved to the cache).
    Cold,
    /// Deserialized from a validated cache artifact.
    Cache,
}

impl SessionSource {
    /// The wire name (`"cold"` / `"cache"`).
    pub fn name(&self) -> &'static str {
        match self {
            SessionSource::Cold => "cold",
            SessionSource::Cache => "cache",
        }
    }
}

impl ToJson for SessionSource {
    fn to_json(&self) -> Json {
        Json::String(self.name().to_string())
    }
}

impl FromJson for SessionSource {
    fn from_json(json: &Json) -> std::result::Result<Self, JsonError> {
        match json.as_str() {
            Some("cold") => Ok(SessionSource::Cold),
            Some("cache") => Ok(SessionSource::Cache),
            _ => Err(JsonError::new("source: expected 'cold' or 'cache'")),
        }
    }
}

/// Build provenance and counters for one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// The spec's content hash (the cache key).
    pub spec_hash: String,
    /// Cold build or cache load.
    pub source: SessionSource,
    /// Wall time of the build or load (seconds).
    pub build_s: f64,
    /// The engine kind name.
    pub engine: String,
    /// Number of chip blocks.
    pub n_blocks: usize,
    /// Number of retained principal components in the thickness model.
    pub n_components: usize,
    /// Queries answered so far.
    pub queries: u64,
    /// A non-fatal build diagnostic (e.g. an invalid cache artifact that
    /// was rebuilt over).
    pub note: Option<String>,
}

impl_json_struct!(SessionStats {
    spec_hash,
    source,
    build_s,
    engine,
    n_blocks,
    n_components,
    queries,
    note,
});

/// A compiled analysis bound to its engine, ready for queries.
///
/// Queries mutate only engine-internal scratch state; results are
/// deterministic and bit-identical whether the session was built cold or
/// loaded from the cache.
pub struct Session {
    // Field order is load-bearing: `engine` may borrow `analysis` through
    // a lifetime-erased pointer (see `from_model`), so it must be declared
    // first and therefore dropped first.
    engine: Box<dyn ReliabilityEngine>,
    manager: Option<ReliabilityManager>,
    analysis: Arc<ChipAnalysis>,
    tech: ClosedFormTech,
    spec: AnalysisSpec,
    stats: SessionStats,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("engine", &self.stats.engine)
            .field("manager", &self.manager.is_some())
            .field("spec", &self.spec)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Compiles `spec` from scratch (no cache involved).
    ///
    /// # Errors
    ///
    /// Propagates spec validation and every substrate failure.
    pub fn build(spec: &AnalysisSpec) -> Result<Self> {
        let start = std::time::Instant::now();
        let model = compile(spec)?;
        Session::from_model(
            spec.clone(),
            model,
            SessionSource::Cold,
            start.elapsed().as_secs_f64(),
            None,
        )
    }

    /// Opens a session through the artifact cache: a validated artifact is
    /// loaded (skipping the eigendecomposition and table construction
    /// entirely), a missing one triggers a cold build whose result is
    /// saved back. An artifact that exists but fails validation is
    /// rebuilt over, with the rejection recorded in
    /// [`SessionStats::note`].
    ///
    /// # Errors
    ///
    /// Propagates build failures; cache I/O failures on the save path.
    pub fn open(spec: &AnalysisSpec, cache: &ArtifactCache) -> Result<Self> {
        let start = std::time::Instant::now();
        let note = match cache.load(spec) {
            Ok(Some(model)) => {
                return Session::from_model(
                    spec.clone(),
                    model,
                    SessionSource::Cache,
                    start.elapsed().as_secs_f64(),
                    None,
                );
            }
            Ok(None) => None,
            // An invalid artifact must never abort the analysis: rebuild
            // and overwrite, but surface what was wrong with it.
            Err(e) => Some(e.to_string()),
        };
        let model = compile(spec)?;
        cache.save(spec, &model)?;
        Session::from_model(
            spec.clone(),
            model,
            SessionSource::Cold,
            start.elapsed().as_secs_f64(),
            note,
        )
    }

    /// Binds an engine to a compiled model.
    fn from_model(
        spec: AnalysisSpec,
        model: CompiledModel,
        source: SessionSource,
        build_s: f64,
        note: Option<String>,
    ) -> Result<Self> {
        let CompiledModel { analysis, tables } = model;
        let n_blocks = analysis.n_blocks();
        let n_components = analysis.model().n_components();
        let analysis = Arc::new(analysis);
        let engine_spec = effective_engine(&spec);
        let engine: Box<dyn ReliabilityEngine> = match (&engine_spec, tables) {
            // The hybrid engine owns its tables outright; use the
            // persisted (or freshly built) ones directly.
            (EngineSpec::Hybrid(_), Some(tables)) => Box::new(tables),
            _ => {
                // SAFETY: `analysis` lives behind an `Arc`, so its address
                // is stable for the allocation's lifetime regardless of
                // how `Session` moves. The `analysis` field keeps the Arc
                // alive for the whole session, `engine` is declared before
                // it (dropped first), and no `&mut ChipAnalysis` is ever
                // handed out. Erasing the borrow to 'static is therefore
                // sound for the engine's actual use.
                let analysis_ref: &'static ChipAnalysis = unsafe { &*Arc::as_ptr(&analysis) };
                build_engine(analysis_ref, &engine_spec)?
            }
        };
        let stats = SessionStats {
            spec_hash: spec.spec_hash()?,
            source,
            build_s,
            engine: engine_spec.kind().name().to_string(),
            n_blocks,
            n_components,
            queries: 0,
            note,
        };
        let tech = spec.tech.tech();
        Ok(Session {
            engine,
            manager: None,
            analysis,
            tech,
            spec,
            stats,
        })
    }

    /// The spec this session was built from.
    pub fn spec(&self) -> &AnalysisSpec {
        &self.spec
    }

    /// The compiled chip analysis.
    pub fn analysis(&self) -> &ChipAnalysis {
        &self.analysis
    }

    /// Build provenance and query counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Direct mutable access to the underlying reliability engine, for
    /// the `statobd_core` free functions the session does not wrap
    /// (burn-in analysis, custom brackets). Queries made through this
    /// reference are not counted in [`stats`](Self::stats).
    pub fn engine_mut(&mut self) -> &mut dyn ReliabilityEngine {
        self.engine.as_mut()
    }

    /// Chip failure probability at age `t_s` (seconds).
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn p_at(&mut self, t_s: f64) -> Result<f64> {
        self.stats.queries += 1;
        self.engine.failure_probability(t_s).map_err(Error::from)
    }

    /// Batched failure probabilities at each age in `ts`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn p_at_many(&mut self, ts: &[f64]) -> Result<Vec<f64>> {
        self.stats.queries += ts.len() as u64;
        self.engine.failure_probabilities(ts).map_err(Error::from)
    }

    /// A log-spaced `(t, P(t))` curve over `[t_lo_s, t_hi_s]` with `n`
    /// points (one batched engine sweep).
    ///
    /// # Errors
    ///
    /// Rejects empty or inverted ranges; propagates engine failures.
    pub fn sweep(&mut self, t_lo_s: f64, t_hi_s: f64, n: usize) -> Result<Vec<(f64, f64)>> {
        self.stats.queries += n as u64;
        failure_rate_curve(self.engine.as_mut(), t_lo_s, t_hi_s, n).map_err(Error::from)
    }

    /// The age (seconds) at which the chip failure probability reaches
    /// `p_target`.
    ///
    /// # Errors
    ///
    /// Rejects targets outside `(0, 1)`; propagates engine failures.
    pub fn lifetime(&mut self, p_target: f64) -> Result<f64> {
        self.stats.queries += 1;
        solve_lifetime(self.engine.as_mut(), p_target, LIFETIME_BRACKET_S).map_err(Error::from)
    }

    /// Instantaneous failure rate at age `t_s`, in FIT per 10⁹
    /// device-hours.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn fit_rate(&mut self, t_s: f64) -> Result<f64> {
        self.stats.queries += 1;
        statobd_core::fit_rate(self.engine.as_mut(), t_s).map_err(Error::from)
    }

    /// The effective chip-level Weibull slope `d ln(−ln S)/d ln t` at age
    /// `t_s`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn weibull_slope(&mut self, t_s: f64) -> Result<f64> {
        self.stats.queries += 1;
        statobd_core::effective_weibull_slope(self.engine.as_mut(), t_s).map_err(Error::from)
    }

    /// Replaces the lazy reliability manager with one built from an
    /// explicit policy and configuration (discarding any accumulated
    /// damage state).
    ///
    /// # Errors
    ///
    /// Propagates manager-construction failures.
    pub fn configure_manager(&mut self, policy: PolicyConfig, config: ManagerConfig) -> Result<()> {
        self.manager = Some(ReliabilityManager::new(
            &self.analysis,
            Box::new(self.tech),
            policy,
            config,
        )?);
        Ok(())
    }

    /// One dynamic-reliability-management step: advance the damage state
    /// by `dt_s` seconds at per-block temperatures `temps_k` under a
    /// requested supply voltage. On first use the manager is built lazily
    /// with a monitoring-only policy (1-ppm budget over a five-year
    /// service life); call [`configure_manager`](Self::configure_manager)
    /// first for a DVFS ladder.
    ///
    /// # Errors
    ///
    /// Propagates manager-construction and step failures.
    pub fn manage_step(&mut self, dt_s: f64, temps_k: &[f64], vdd_v: f64) -> Result<StepReport> {
        self.stats.queries += 1;
        self.ensure_manager()?;
        self.manager
            .as_mut()
            .expect("manager just ensured")
            .step(dt_s, temps_k, vdd_v)
            .map_err(Error::from)
    }

    /// Like [`manage_step`](Self::manage_step) with every block at its
    /// spec temperature plus a uniform offset `dt_k`.
    ///
    /// # Errors
    ///
    /// Propagates manager-construction and step failures.
    pub fn manage_step_uniform(&mut self, dt_s: f64, dt_k: f64, vdd_v: f64) -> Result<StepReport> {
        let temps: Vec<f64> = self
            .analysis
            .spec()
            .blocks()
            .iter()
            .map(|b| b.temperature_k() + dt_k)
            .collect();
        self.manage_step(dt_s, &temps, vdd_v)
    }

    /// The manager's accumulated damage state, if a manager exists.
    pub fn manager(&self) -> Option<&ReliabilityManager> {
        self.manager.as_ref()
    }

    /// Mutable access to the reliability manager, building the lazy
    /// default first if none exists — for callers that drive
    /// [`ReliabilityManager`] directly (phase schedules, checkpoints).
    ///
    /// # Errors
    ///
    /// Propagates manager-construction failures.
    pub fn manager_mut(&mut self) -> Result<&mut ReliabilityManager> {
        self.ensure_manager()?;
        Ok(self.manager.as_mut().expect("manager just ensured"))
    }

    fn ensure_manager(&mut self) -> Result<()> {
        if self.manager.is_some() {
            return Ok(());
        }
        let policy = PolicyConfig::monitoring_only(params::ONE_PER_MILLION, DEFAULT_SERVICE_LIFE_S);
        let config = ManagerConfig {
            tables: HybridConfig {
                threads: self.spec.threads,
                ..HybridConfig::default()
            },
            ..ManagerConfig::default()
        };
        self.configure_manager(policy, config)
    }
}

/// The engine spec with the session-level thread override applied.
fn effective_engine(spec: &AnalysisSpec) -> EngineSpec {
    match spec.threads {
        Some(n) => spec.engine.clone().with_threads(Some(n)),
        None => spec.engine.clone(),
    }
}

/// The expensive half: design construction, thickness-model
/// eigendecomposition, BLOD characterization and (for the hybrid engine)
/// table construction.
pub(crate) fn compile(spec: &AnalysisSpec) -> Result<CompiledModel> {
    spec.validate()?;
    let (chip, grid) = match &spec.design {
        DesignSource::Benchmark(benchmark) => {
            let config = DesignConfig {
                correlation_grid_side: spec.grid_side,
                thermal: spec.thermal,
                vdd_v: spec.vdd_v,
                area_per_device: spec.area_per_device,
            };
            let built = build_design(*benchmark, &config)?;
            (built.spec, built.grid)
        }
        DesignSource::Chip(chip) => (chip.clone(), GridSpec::square_unit(spec.grid_side)?),
    };
    let model = ThicknessModelBuilder::new()
        .grid(grid)
        .nominal(spec.model.nominal_nm)
        .budget(spec.model.resolved_budget()?)
        .kernel(spec.model.kernel)
        .systematic(spec.model.systematic)
        .build()?;
    let tech = spec.tech.tech();
    let analysis =
        ChipAnalysis::new(chip, model, &tech)?.with_composition(spec.composition.clone())?;
    let tables = match effective_engine(spec) {
        EngineSpec::Hybrid(config) => Some(HybridTables::build(&analysis, config)?),
        _ => None,
    };
    Ok(CompiledModel { analysis, tables })
}

#[cfg(test)]
mod tests {
    use super::*;
    use statobd_core::{BlockSpec, ChipSpec, EngineKind};

    fn tiny_chip() -> ChipSpec {
        let mut chip = ChipSpec::new();
        chip.add_block(
            BlockSpec::new("core", 4e4, 40_000, 368.15, 1.2, vec![(0, 0.5), (6, 0.5)]).unwrap(),
        )
        .unwrap();
        chip.add_block(BlockSpec::new("cache", 6e4, 60_000, 341.15, 1.2, vec![(12, 1.0)]).unwrap())
            .unwrap();
        chip
    }

    fn tiny_spec(kind: EngineKind) -> AnalysisSpec {
        AnalysisSpec::chip(tiny_chip())
            .with_grid_side(5)
            .with_engine(kind)
    }

    fn scratch_cache(tag: &str) -> ArtifactCache {
        let dir =
            std::env::temp_dir().join(format!("statobd-session-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::new(dir)
    }

    #[test]
    fn build_answers_the_basic_queries() {
        let mut s = Session::build(&tiny_spec(EngineKind::StClosed)).unwrap();
        let t = s.lifetime(params::ONE_PER_MILLION).unwrap();
        assert!(t > 0.0);
        let p = s.p_at(t).unwrap();
        assert!((p - params::ONE_PER_MILLION).abs() / params::ONE_PER_MILLION < 1e-6);
        let curve = s.sweep(t * 1e-1, t * 1e1, 5).unwrap();
        assert_eq!(curve.len(), 5);
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1), "monotone");
        assert_eq!(s.stats().queries, 7);
        assert_eq!(s.stats().source, SessionSource::Cold);
    }

    #[test]
    fn cache_round_trip_is_bit_exact() {
        let cache = scratch_cache("roundtrip");
        for kind in [EngineKind::StFast, EngineKind::Hybrid] {
            let spec = tiny_spec(kind);
            let mut cold = Session::open(&spec, &cache).unwrap();
            assert_eq!(cold.stats().source, SessionSource::Cold);
            let mut warm = Session::open(&spec, &cache).unwrap();
            assert_eq!(warm.stats().source, SessionSource::Cache, "{kind:?}");
            for t in [1e6, 1e8, 3e9] {
                let a = cold.p_at(t).unwrap();
                let b = warm.p_at(t).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "{kind:?} at t={t}");
            }
        }
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn invalid_artifacts_are_rebuilt_with_a_note() {
        let cache = scratch_cache("corrupt");
        let spec = tiny_spec(EngineKind::StClosed);
        Session::open(&spec, &cache).unwrap();
        let path = cache.artifact_path(&spec.spec_hash().unwrap());
        std::fs::write(&path, "{ not json").unwrap();
        let s = Session::open(&spec, &cache).unwrap();
        assert_eq!(s.stats().source, SessionSource::Cold);
        assert!(s.stats().note.is_some());
        // The rebuild overwrote the corrupt artifact.
        let again = Session::open(&spec, &cache).unwrap();
        assert_eq!(again.stats().source, SessionSource::Cache);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn manage_step_accumulates_damage() {
        let mut s = Session::build(&tiny_spec(EngineKind::StClosed)).unwrap();
        let year = 3.156e7;
        let r1 = s.manage_step_uniform(year, 0.0, 1.2).unwrap();
        let r2 = s.manage_step_uniform(year, 0.0, 1.2).unwrap();
        assert!(r2.p_now > r1.p_now, "{} vs {}", r2.p_now, r1.p_now);
        assert!(s.manager().is_some());
    }
}
