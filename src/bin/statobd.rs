//! `statobd` — command-line front end for the statistical OBD reliability
//! analysis.
//!
//! ```text
//! statobd template <out.json>          write an example chip spec
//! statobd analyze  <spec.json> [opts]  analyze a chip spec
//! statobd bench    <C1..C6|MC16>       analyze a bundled benchmark design
//! statobd thermal  <floorplan.json> <power.json> [opts]
//!                                      solve the steady-state thermal map
//! statobd manage   <spec.json> <schedule.json> [opts]
//!                                      run the dynamic reliability manager
//!                                      over a phase schedule
//! statobd manage template <out.json>   write an example schedule
//!
//! options for manage:
//!   --rho <f>        relative correlation distance   (default 0.5)
//!   --grid <n>       correlation grid side           (default 25)
//!   --l0 <n>         table-quadrature sub-domains    (default 10)
//!   --threads <n>    worker threads for the table build
//!   --checkpoint <path>  restore the damage state from this file if it
//!                    exists, and save the updated state back on exit
//!
//! options for thermal:
//!   --solver <name>  linear solver: auto, plain_cg, jacobi_pcg, ic0_pcg,
//!                    mgcg (default auto: picks by grid size)
//!   --grid <n>       thermal grid side                (default 64)
//!   --timings        print the assembly / preconditioner / solve
//!                    wall-time breakdown, per-iteration CG counts and the
//!                    final residual
//!
//! options for analyze/bench:
//!   --rho <f>        relative correlation distance   (default 0.5)
//!   --grid <n>       correlation grid side           (default 25)
//!   --l0 <n>         integration sub-domains         (default 10)
//!   --target <f>     failure-probability target      (default 1e-6)
//!   --engine <name>  primary engine: st_fast, st_MC, st_closed, hybrid
//!                    (default st_fast)
//!   --threads <n>    worker threads for parallel engines (default: the
//!                    STATOBD_THREADS environment variable, then all cores)
//!   --mc <n>         also run Monte-Carlo with n chips
//!   --timings        print the model-construction timing breakdown
//!                    (covariance assembly / eigendecomposition /
//!                    truncation) and which spectral solver ran
//!   --curve <n>      print an n-point P(t) failure-rate curve around the
//!                    solved lifetime (one batched engine sweep)
//!   --tables <path>  export hybrid lookup tables as JSON
//! ```

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{
    build_engine, effective_weibull_slope, failure_rate_curve, fit_rate, params, solve_lifetime,
    ChipAnalysis, ChipSpec, EngineKind, EngineSpec, GuardBand, GuardBandConfig, HybridConfig,
    HybridTables, MonteCarloConfig, StFast, StFastConfig,
};
use statobd::device::ClosedFormTech;
use statobd::manager::{
    DamageState, DvfsLevel, ManageSpec, ManagerConfig, PhaseSpec, PolicyConfig, ReliabilityManager,
};
use statobd::thermal::{
    kelvin_to_celsius, Floorplan, PowerModel, ThermalConfig, ThermalSolver, ThermalSolverKind,
};
use statobd::variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    rho: f64,
    grid: usize,
    l0: usize,
    target: f64,
    engine: EngineKind,
    threads: Option<usize>,
    mc_chips: Option<usize>,
    curve_points: Option<usize>,
    tables_out: Option<String>,
    timings: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            rho: params::DEFAULT_CORRELATION_DISTANCE,
            grid: params::DEFAULT_GRID_SIDE,
            l0: params::DEFAULT_L0,
            target: params::ONE_PER_MILLION,
            engine: EngineKind::StFast,
            threads: None,
            mc_chips: None,
            curve_points: None,
            tables_out: None,
            timings: false,
        }
    }
}

impl Options {
    /// The primary engine's construction spec.
    fn engine_spec(&self) -> EngineSpec {
        let spec = match self.engine {
            EngineKind::StFast => EngineSpec::StFast(StFastConfig {
                l0: self.l0,
                ..Default::default()
            }),
            kind => kind.default_spec(),
        };
        spec.with_threads(self.threads)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  statobd template <out.json>\n  statobd analyze <spec.json> [--rho f] [--grid n] [--l0 n] [--target f] [--engine name] [--threads n] [--mc n] [--curve n] [--tables path] [--timings]\n  statobd bench <C1|C2|C3|C4|C5|C6|MC16> [same options]\n  statobd thermal <floorplan.json> <power.json> [--solver name] [--grid n] [--timings]\n  statobd manage <spec.json> <schedule.json> [--rho f] [--grid n] [--l0 n] [--threads n] [--checkpoint path]\n  statobd manage template <out.json>"
    );
    ExitCode::FAILURE
}

#[derive(Debug)]
struct ThermalOptions {
    solver: ThermalSolverKind,
    grid: Option<usize>,
    timings: bool,
}

fn parse_thermal_options(args: &[String]) -> Result<ThermalOptions, String> {
    let mut opts = ThermalOptions {
        solver: ThermalSolverKind::Auto,
        grid: None,
        timings: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--solver" => {
                let name = value("--solver")?;
                opts.solver = ThermalSolverKind::parse(&name)
                    .ok_or_else(|| format!("--solver: unknown solver '{name}'"))?;
            }
            "--grid" => {
                opts.grid = Some(
                    value("--grid")?
                        .parse()
                        .map_err(|e| format!("--grid: {e}"))?,
                )
            }
            "--timings" => opts.timings = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.grid == Some(0) {
        return Err("--grid: the thermal grid needs at least one cell per side".to_string());
    }
    Ok(opts)
}

fn thermal(fp_path: &str, pm_path: &str, opts: &ThermalOptions) -> Result<(), String> {
    let fp: Floorplan = statobd::num::json::from_str(
        &std::fs::read_to_string(fp_path).map_err(|e| format!("reading {fp_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {fp_path}: {e}"))?;
    let pm: PowerModel = statobd::num::json::from_str(
        &std::fs::read_to_string(pm_path).map_err(|e| format!("reading {pm_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {pm_path}: {e}"))?;
    let mut config = ThermalConfig {
        solver: opts.solver,
        ..ThermalConfig::default()
    };
    if let Some(side) = opts.grid {
        config.nx = side;
        config.ny = side;
    }
    let solver = ThermalSolver::new(config);
    let map = solver.solve(&fp, &pm).map_err(|e| e.to_string())?;
    if opts.timings {
        let b = map.breakdown();
        println!(
            "thermal solve: {}x{} grid, solver {}",
            config.nx, config.ny, b.solver
        );
        println!(
            "  assembly {:.4} s  preconditioner {:.4} s  solve {:.4} s",
            b.assembly_s, b.precond_s, b.solve_s
        );
        let per_iter: Vec<String> = b.cg_iterations.iter().map(|i| i.to_string()).collect();
        println!(
            "  leakage iterations {}: CG per iteration [{}], total {}",
            map.leakage_iterations(),
            per_iter.join(", "),
            map.total_cg_iterations()
        );
        println!("  final relative residual {:.3e}\n", map.final_residual());
    }
    println!("{}", map.ascii_render(48));
    println!(
        "die: min {:.1} C, mean {:.1} C, max {:.1} C",
        kelvin_to_celsius(map.min_k()),
        kelvin_to_celsius(map.mean_k()),
        kelvin_to_celsius(map.max_k())
    );
    println!(
        "\n{:<14} {:>9} {:>9} {:>9}",
        "block", "min C", "mean C", "max C"
    );
    for b in fp.blocks() {
        let s = map.block_stats(b.rect());
        println!(
            "{:<14} {:>9.1} {:>9.1} {:>9.1}",
            b.name(),
            kelvin_to_celsius(s.min_k),
            kelvin_to_celsius(s.mean_k),
            kelvin_to_celsius(s.max_k)
        );
    }
    Ok(())
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--rho" => opts.rho = value("--rho")?.parse().map_err(|e| format!("--rho: {e}"))?,
            "--grid" => {
                opts.grid = value("--grid")?
                    .parse()
                    .map_err(|e| format!("--grid: {e}"))?
            }
            "--l0" => opts.l0 = value("--l0")?.parse().map_err(|e| format!("--l0: {e}"))?,
            "--target" => {
                opts.target = value("--target")?
                    .parse()
                    .map_err(|e| format!("--target: {e}"))?
            }
            "--mc" => {
                opts.mc_chips = Some(value("--mc")?.parse().map_err(|e| format!("--mc: {e}"))?)
            }
            "--curve" => {
                opts.curve_points = Some(
                    value("--curve")?
                        .parse()
                        .map_err(|e| format!("--curve: {e}"))?,
                )
            }
            "--engine" => {
                let name = value("--engine")?;
                opts.engine = EngineKind::parse(&name)
                    .ok_or_else(|| format!("--engine: unknown engine '{name}'"))?;
            }
            "--threads" => {
                opts.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--tables" => opts.tables_out = Some(value("--tables")?),
            "--timings" => opts.timings = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    validate_options(&opts)?;
    Ok(opts)
}

/// Rejects parameter values that would only fail (or silently produce
/// nonsense) deep inside the analysis: zero grid sides, zero quadrature
/// sub-domains, non-positive correlation distances, empty Monte-Carlo
/// populations and empty curves.
fn validate_options(opts: &Options) -> Result<(), String> {
    if !(opts.rho > 0.0) || !opts.rho.is_finite() {
        return Err(format!(
            "--rho: correlation distance must be positive and finite, got {}",
            opts.rho
        ));
    }
    if opts.grid == 0 {
        return Err("--grid: the correlation grid needs at least one cell per side".to_string());
    }
    if opts.l0 == 0 {
        return Err("--l0: the quadrature needs at least one sub-domain".to_string());
    }
    if !(opts.target > 0.0) || opts.target >= 1.0 {
        return Err(format!(
            "--target: failure-probability target must be in (0, 1), got {}",
            opts.target
        ));
    }
    if opts.mc_chips == Some(0) {
        return Err("--mc: the Monte-Carlo population needs at least one chip".to_string());
    }
    if opts.curve_points == Some(0) {
        return Err("--curve: the P(t) curve needs at least one point".to_string());
    }
    if opts.threads == Some(0) {
        return Err("--threads: need at least one worker thread".to_string());
    }
    Ok(())
}

fn template(path: &str) -> Result<(), String> {
    let mut spec = ChipSpec::new();
    spec.add_block(
        statobd::core::BlockSpec::new(
            "core",
            60_000.0,
            60_000,
            368.15,
            1.2,
            vec![(0, 0.5), (1, 0.5)],
        )
        .map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    spec.add_block(
        statobd::core::BlockSpec::new("cache", 140_000.0, 140_000, 341.15, 1.2, vec![(12, 1.0)])
            .map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let json = statobd::num::json::to_string_pretty(&spec);
    std::fs::write(path, json).map_err(|e| e.to_string())?;
    println!("wrote example spec to {path}");
    println!(
        "grid indices refer to a {0}x{0} correlation grid (row-major)",
        25
    );
    Ok(())
}

#[derive(Debug)]
struct ManageOptions {
    rho: f64,
    grid: usize,
    l0: usize,
    threads: Option<usize>,
    checkpoint: Option<String>,
}

fn parse_manage_options(args: &[String]) -> Result<ManageOptions, String> {
    let mut opts = ManageOptions {
        rho: params::DEFAULT_CORRELATION_DISTANCE,
        grid: params::DEFAULT_GRID_SIDE,
        l0: params::DEFAULT_L0,
        threads: None,
        checkpoint: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--rho" => opts.rho = value("--rho")?.parse().map_err(|e| format!("--rho: {e}"))?,
            "--grid" => {
                opts.grid = value("--grid")?
                    .parse()
                    .map_err(|e| format!("--grid: {e}"))?
            }
            "--l0" => opts.l0 = value("--l0")?.parse().map_err(|e| format!("--l0: {e}"))?,
            "--threads" => {
                opts.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--checkpoint" => opts.checkpoint = Some(value("--checkpoint")?),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if !(opts.rho > 0.0) || !opts.rho.is_finite() {
        return Err(format!(
            "--rho: correlation distance must be positive and finite, got {}",
            opts.rho
        ));
    }
    if opts.grid == 0 {
        return Err("--grid: the correlation grid needs at least one cell per side".to_string());
    }
    if opts.l0 == 0 {
        return Err("--l0: the quadrature needs at least one sub-domain".to_string());
    }
    if opts.threads == Some(0) {
        return Err("--threads: need at least one worker thread".to_string());
    }
    Ok(opts)
}

/// Writes an example `statobd manage` schedule: a 1-ppm five-year budget,
/// a three-level DVFS ladder and a bursty typical/turbo/idle pattern.
fn manage_template(path: &str) -> Result<(), String> {
    const MONTH_S: f64 = 2.63e6;
    let spec = ManageSpec {
        policy: PolicyConfig {
            budget: params::ONE_PER_MILLION,
            service_life_s: 60.0 * MONTH_S,
            hysteresis: 0.85,
            levels: vec![
                DvfsLevel {
                    name: "turbo".to_string(),
                    vdd_cap_v: 1.26,
                    dt_when_capped_k: 0.0,
                },
                DvfsLevel {
                    name: "nominal".to_string(),
                    vdd_cap_v: 1.20,
                    dt_when_capped_k: -6.0,
                },
                DvfsLevel {
                    name: "eco".to_string(),
                    vdd_cap_v: 1.10,
                    dt_when_capped_k: -14.0,
                },
            ],
        },
        phases: vec![
            PhaseSpec {
                name: "typical".to_string(),
                duration_s: 3.0 * MONTH_S,
                dt_k: 0.0,
                vdd_v: 1.20,
            },
            PhaseSpec {
                name: "turbo".to_string(),
                duration_s: 2.0 * MONTH_S,
                dt_k: 10.0,
                vdd_v: 1.26,
            },
            PhaseSpec {
                name: "idle".to_string(),
                duration_s: 7.0 * MONTH_S,
                dt_k: -12.0,
                vdd_v: 1.10,
            },
        ],
        steps_per_phase: 3,
        repeat: 5,
    };
    std::fs::write(path, spec.to_json()).map_err(|e| e.to_string())?;
    println!("wrote example schedule to {path}");
    println!("phase temperatures are offsets (dt_k) from each block's spec temperature");
    Ok(())
}

/// Runs the dynamic reliability manager over a phase schedule.
fn manage(spec_path: &str, schedule_path: &str, opts: &ManageOptions) -> Result<(), String> {
    let chip: ChipSpec = statobd::num::json::from_str(
        &std::fs::read_to_string(spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {spec_path}: {e}"))?;
    let schedule = ManageSpec::from_json(
        &std::fs::read_to_string(schedule_path)
            .map_err(|e| format!("reading {schedule_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {schedule_path}: {e}"))?;

    let grid = GridSpec::square_unit(opts.grid).map_err(|e| e.to_string())?;
    let model = ThicknessModelBuilder::new()
        .grid(grid)
        .nominal(params::NOMINAL_THICKNESS_NM)
        .budget(VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM).map_err(|e| e.to_string())?)
        .kernel(CorrelationKernel::Exponential {
            rel_distance: opts.rho,
        })
        .build()
        .map_err(|e| e.to_string())?;
    let tech = ClosedFormTech::nominal_45nm();
    let analysis = ChipAnalysis::new(chip, model, &tech).map_err(|e| e.to_string())?;

    let start = std::time::Instant::now();
    let manager_config = ManagerConfig {
        tables: HybridConfig {
            quadrature_l0: opts.l0,
            threads: opts.threads,
            ..HybridConfig::default()
        },
        ..ManagerConfig::default()
    };
    let mut mgr = ReliabilityManager::new(
        &analysis,
        Box::new(tech),
        schedule.policy.clone(),
        manager_config,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "manager ready: {} blocks, tables γ ∈ [{:.1}, {:.1}], b ∈ [{:.3}, {:.3}]  [{:.2} s]",
        analysis.n_blocks(),
        mgr.tables().config().gamma_range.0,
        mgr.tables().config().gamma_range.1,
        mgr.tables().config().b_range.0,
        mgr.tables().config().b_range.1,
        start.elapsed().as_secs_f64()
    );

    if let Some(path) = &opts.checkpoint {
        match std::fs::read_to_string(path) {
            Ok(json) => {
                let state = DamageState::from_json(&json).map_err(|e| e.to_string())?;
                println!(
                    "restored checkpoint {path}: {:.3} years of damage, P = {:.3e}",
                    state.elapsed_s() / 3.156e7,
                    {
                        mgr.restore(state).map_err(|e| e.to_string())?;
                        mgr.failure_probability_now().map_err(|e| e.to_string())?
                    }
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                println!("checkpoint {path} not found, starting from a pristine chip");
            }
            Err(e) => return Err(format!("reading {path}: {e}")),
        }
    }

    println!(
        "\n{:>5} {:>12} {:>8} {:>7} {:>13} {:>13}",
        "cycle", "phase", "level", "VDD", "P(now)", "P(projected)"
    );
    let budget = schedule.policy.budget;
    for cycle in 0..schedule.repeat {
        for phase_spec in &schedule.phases {
            let phase = phase_spec.resolve(analysis.spec());
            let reports = mgr
                .run_phase(&phase, schedule.steps_per_phase)
                .map_err(|e| e.to_string())?;
            let last = reports.last().expect("at least one step");
            println!(
                "{:>5} {:>12} {:>8} {:>7.2} {:>13.3e} {:>13.3e}{}",
                cycle,
                phase.name,
                mgr.level_name(),
                last.vdd_v,
                last.p_now,
                last.p_projected,
                if last.capped { "  <- capped" } else { "" }
            );
        }
    }

    let p_final = mgr.failure_probability_now().map_err(|e| e.to_string())?;
    println!(
        "\nend of schedule: {:.2} years elapsed, P = {p_final:.3e} (budget {budget:.1e}), {} DVFS transitions",
        mgr.damage().elapsed_s() / 3.156e7,
        mgr.transitions()
    );
    if mgr.off_grid_queries() > 0 {
        println!(
            "warning: {} table queries ran off the grid — results clamp conservatively low; \
             rebuild with a longer service life or cooler schedule",
            mgr.off_grid_queries()
        );
    }
    println!(
        "verdict: budget {}",
        if p_final <= budget { "met" } else { "exceeded" }
    );

    if let Some(path) = &opts.checkpoint {
        std::fs::write(path, mgr.damage().to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("damage state checkpointed to {path}");
    }
    Ok(())
}

/// Builds the thickness model over `grid`; with `--timings` the
/// construction goes through [`ThicknessModelBuilder::build_with_stats`]
/// and the covariance/eigen/truncation wall-time breakdown is printed.
fn build_thickness_model(
    grid: GridSpec,
    opts: &Options,
) -> Result<statobd::variation::ThicknessModel, String> {
    let builder = ThicknessModelBuilder::new()
        .grid(grid)
        .nominal(params::NOMINAL_THICKNESS_NM)
        .budget(VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM).map_err(|e| e.to_string())?)
        .kernel(CorrelationKernel::Exponential {
            rel_distance: opts.rho,
        });
    if !opts.timings {
        return builder.build().map_err(|e| e.to_string());
    }
    let (model, stats) = builder.build_with_stats().map_err(|e| e.to_string())?;
    println!(
        "model construction: {} grids -> {} components [{}]",
        stats.n_grids,
        stats.n_components,
        stats.solver.name()
    );
    println!(
        "  covariance {:.4} s  eigen {:.4} s  truncation {:.4} s  total {:.4} s",
        stats.covariance_s,
        stats.eigen_s,
        stats.truncation_s,
        stats.total_s()
    );
    Ok(model)
}

fn report(spec: ChipSpec, opts: &Options) -> Result<(), String> {
    let grid = GridSpec::square_unit(opts.grid).map_err(|e| e.to_string())?;
    let model = build_thickness_model(grid, opts)?;
    analyze_with_model(spec, model, opts)
}

fn analyze_with_model(
    spec: ChipSpec,
    model: statobd::variation::ThicknessModel,
    opts: &Options,
) -> Result<(), String> {
    let tech = ClosedFormTech::nominal_45nm();
    let analysis = ChipAnalysis::new(spec, model, &tech).map_err(|e| e.to_string())?;
    println!(
        "design: {} blocks, {} devices, worst block temperature {:.1} C",
        analysis.n_blocks(),
        analysis.spec().total_devices(),
        analysis.spec().max_temperature_k().unwrap_or(0.0) - 273.15
    );

    let bracket = (1e4, 1e13);
    let years = |t: f64| t / 3.156e7;

    let spec = opts.engine_spec();
    let mut primary = build_engine(&analysis, &spec).map_err(|e| e.to_string())?;
    let start = std::time::Instant::now();
    let t_fast =
        solve_lifetime(primary.as_mut(), opts.target, bracket).map_err(|e| e.to_string())?;
    println!(
        "{} lifetime @ P={:.1e}: {:.3e} s ({:.2} years)  [{:.1} ms]",
        spec.kind(),
        opts.target,
        t_fast,
        years(t_fast),
        start.elapsed().as_secs_f64() * 1e3
    );

    let fit = fit_rate(primary.as_mut(), t_fast).map_err(|e| e.to_string())?;
    let slope = effective_weibull_slope(primary.as_mut(), t_fast).map_err(|e| e.to_string())?;
    println!(
        "at that lifetime: FIT rate {fit:.2} failures/1e9 device-hours, effective Weibull slope {slope:.2}"
    );

    let guard = GuardBand::new(&analysis, GuardBandConfig::default()).map_err(|e| e.to_string())?;
    let t_guard = guard.lifetime(opts.target).map_err(|e| e.to_string())?;
    println!(
        "guard-band corner:            {:.3e} s ({:.2} years)  [{:.0}% pessimistic]",
        t_guard,
        years(t_guard),
        100.0 * (1.0 - t_guard / t_fast)
    );

    if let Some(chips) = opts.mc_chips {
        let start = std::time::Instant::now();
        let mc_spec = EngineSpec::MonteCarlo(MonteCarloConfig {
            n_chips: chips,
            threads: opts.threads,
            ..Default::default()
        });
        let mut mc = build_engine(&analysis, &mc_spec).map_err(|e| e.to_string())?;
        let t_mc = solve_lifetime(mc.as_mut(), opts.target, bracket).map_err(|e| e.to_string())?;
        println!(
            "Monte-Carlo ({chips} chips):     {:.3e} s ({:.2} years)  [{:.1} s; {} error {:.2}%]",
            t_mc,
            years(t_mc),
            start.elapsed().as_secs_f64(),
            spec.kind(),
            100.0 * ((t_fast - t_mc) / t_mc).abs()
        );
    }

    if let Some(n) = opts.curve_points {
        let n = n.max(2);
        // Two decades either side of the solved lifetime covers the whole
        // interesting region of the S-curve; one batched sweep.
        let start = std::time::Instant::now();
        let curve = failure_rate_curve(primary.as_mut(), t_fast * 1e-2, t_fast * 1e2, n)
            .map_err(|e| e.to_string())?;
        println!(
            "\nP(t) curve, {n} points around the lifetime  [{:.1} ms]:",
            start.elapsed().as_secs_f64() * 1e3
        );
        println!("  {:>12}  {:>10}  {:>12}", "t (s)", "t (yr)", "P(t)");
        for (t, p) in &curve {
            println!("  {t:>12.4e}  {:>10.3}  {p:>12.4e}", years(*t));
        }
    }

    if let Some(path) = &opts.tables_out {
        let tables =
            HybridTables::build(&analysis, HybridConfig::default()).map_err(|e| e.to_string())?;
        std::fs::write(path, tables.to_json().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        println!("hybrid lookup tables written to {path}");
    }

    println!("\nper-block contributions at the {} lifetime:", spec.kind());
    let breakdown = StFast::new(
        &analysis,
        StFastConfig {
            l0: opts.l0,
            threads: opts.threads,
            ..Default::default()
        },
    );
    for (j, block) in analysis.blocks().iter().enumerate() {
        let p = breakdown
            .block_failure_probability(j, t_fast)
            .map_err(|e| e.to_string())?;
        println!(
            "  {:<12} {:>7.1} C  P_j = {:.3e}",
            block.spec().name(),
            block.spec().temperature_k() - 273.15,
            p
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "template" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            template(path)
        }
        "analyze" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match parse_options(&args[2..]) {
                Ok(opts) => std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {path}: {e}"))
                    .and_then(|json| {
                        statobd::num::json::from_str::<ChipSpec>(&json)
                            .map_err(|e| format!("parsing {path}: {e}"))
                    })
                    .and_then(|spec| report(spec, &opts)),
                Err(e) => Err(e),
            }
        }
        "thermal" => {
            let (Some(fp), Some(pm)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            match parse_thermal_options(&args[3..]) {
                Ok(opts) => thermal(fp, pm, &opts),
                Err(e) => Err(e),
            }
        }
        "manage" => match (args.get(1).map(String::as_str), args.get(2)) {
            (Some("template"), Some(path)) => manage_template(path),
            (Some(spec), Some(schedule)) => match parse_manage_options(&args[3..]) {
                Ok(opts) => manage(spec, schedule, &opts),
                Err(e) => Err(e),
            },
            _ => return usage(),
        },
        "bench" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let bench = match name.as_str() {
                "C1" => Benchmark::C1,
                "C2" => Benchmark::C2,
                "C3" => Benchmark::C3,
                "C4" => Benchmark::C4,
                "C5" => Benchmark::C5,
                "C6" => Benchmark::C6,
                "MC16" => Benchmark::ManyCore16,
                other => {
                    eprintln!("unknown benchmark {other}");
                    return usage();
                }
            };
            match parse_options(&args[2..]) {
                Ok(opts) => {
                    let config = DesignConfig {
                        correlation_grid_side: opts.grid,
                        ..DesignConfig::default()
                    };
                    build_design(bench, &config)
                        .map_err(|e| e.to_string())
                        .and_then(|built| {
                            let model = build_thickness_model(built.grid, &opts)?;
                            analyze_with_model(built.spec, model, &opts)
                        })
                }
                Err(e) => Err(e),
            }
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_options_accepts_sane_flags() {
        let opts = parse_options(&args(&[
            "--rho",
            "0.4",
            "--grid",
            "12",
            "--l0",
            "8",
            "--mc",
            "50",
            "--curve",
            "5",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(opts.grid, 12);
        assert_eq!(opts.l0, 8);
        assert_eq!(opts.mc_chips, Some(50));
        assert_eq!(opts.curve_points, Some(5));
        assert_eq!(opts.threads, Some(2));
        assert!((opts.rho - 0.4).abs() < 1e-12);
    }

    #[test]
    fn parse_options_rejects_degenerate_values_at_parse_time() {
        // Each of these used to parse fine and fail (or mislead) much
        // later, deep inside the analysis.
        for (bad, needle) in [
            (vec!["--l0", "0"], "--l0"),
            (vec!["--grid", "0"], "--grid"),
            (vec!["--rho", "0"], "--rho"),
            (vec!["--rho", "-0.5"], "--rho"),
            (vec!["--rho", "nan"], "--rho"),
            (vec!["--mc", "0"], "--mc"),
            (vec!["--curve", "0"], "--curve"),
            (vec!["--threads", "0"], "--threads"),
            (vec!["--target", "0"], "--target"),
            (vec!["--target", "1.5"], "--target"),
        ] {
            let err = parse_options(&args(&bad)).unwrap_err();
            assert!(
                err.contains(needle),
                "rejection for {bad:?} should mention {needle}: {err}"
            );
        }
    }

    #[test]
    fn parse_options_rejects_unknown_and_dangling_flags() {
        assert!(parse_options(&args(&["--frobnicate"])).is_err());
        assert!(parse_options(&args(&["--rho"])).is_err());
    }

    #[test]
    fn parse_thermal_options_rejects_zero_grid() {
        assert!(parse_thermal_options(&args(&["--grid", "0"])).is_err());
        assert!(parse_thermal_options(&args(&["--grid", "32"])).is_ok());
    }

    #[test]
    fn parse_manage_options_validates_like_analyze() {
        let opts =
            parse_manage_options(&args(&["--checkpoint", "state.json", "--grid", "10"])).unwrap();
        assert_eq!(opts.checkpoint.as_deref(), Some("state.json"));
        assert_eq!(opts.grid, 10);
        for bad in [
            vec!["--l0", "0"],
            vec!["--grid", "0"],
            vec!["--rho", "0"],
            vec!["--threads", "0"],
            vec!["--unknown"],
        ] {
            assert!(
                parse_manage_options(&args(&bad)).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }
}
