//! `statobd` — command-line front end for the statistical OBD reliability
//! analysis.
//!
//! ```text
//! statobd template <out.json>          write an example chip spec
//! statobd analyze  <spec.json> [opts]  analyze a chip spec
//! statobd bench    <C1..C6|MC16>       analyze a bundled benchmark design
//! statobd serve    [opts]              answer line-delimited JSON queries
//!                                      over hot sessions (see below)
//! statobd thermal  <floorplan.json> <power.json> [opts]
//!                                      solve the steady-state thermal map
//! statobd manage   <spec.json> <schedule.json> [opts]
//!                                      run the dynamic reliability manager
//!                                      over a phase schedule
//! statobd manage template <out.json>   write an example schedule
//! statobd fleet    <spec.json|C1..MC16> [opts]
//!                                      stream a sampled chip population
//!                                      through a mission profile
//!
//! options for fleet:
//!   --chips <n>      fleet size                      (default 100000)
//!   --profile <name> mission profile: htol, ltol, datacenter,
//!                    automotive, burn_in_field       (default datacenter)
//!   --seed <n>       root RNG seed                   (default 42)
//!   --budget <f>     failure-probability budget      (default 1e-6)
//!   --wafer-depth <f> wafer bowl depth in nm, 0 = none (default 0.02)
//!   --rho <f>        relative correlation distance   (default 0.5)
//!   --grid <n>       correlation grid side           (default 25)
//!   --threads <n>    worker threads
//!   --shards <n>     reducer shards (default: thread count; aggregates
//!                    are bit-identical for any value)
//!   --json           print the full report as JSON
//!
//! options for serve:
//!   --socket <path>  listen on a unix socket instead of stdin/stdout
//!   --cache-dir <p>  artifact cache root (default $STATOBD_CACHE, then
//!                    ~/.cache/statobd)
//!   --no-cache       always build cold, never persist artifacts
//!   --quick          smoke mode: alias for --no-cache (used by CI)
//!   --max-sessions <n>  hot-session LRU capacity (default 4)
//!
//! options for manage:
//!   --rho <f>        relative correlation distance   (default 0.5)
//!   --grid <n>       correlation grid side           (default 25)
//!   --l0 <n>         table-quadrature sub-domains    (default 10)
//!   --threads <n>    worker threads for the table build
//!   --checkpoint <path>  restore the damage state from this file if it
//!                    exists, and save the updated state back on exit
//!
//! options for thermal:
//!   --solver <name>  linear solver: auto, plain_cg, jacobi_pcg, ic0_pcg,
//!                    mgcg (default auto: picks by grid size)
//!   --grid <n>       thermal grid side                (default 64)
//!   --timings        print the assembly / preconditioner / solve
//!                    wall-time breakdown, per-iteration CG counts and the
//!                    final residual
//!
//! options for analyze/bench:
//!   --rho <f>        relative correlation distance   (default 0.5)
//!   --grid <n>       correlation grid side           (default 25)
//!   --l0 <n>         integration sub-domains         (default 10)
//!   --target <f>     failure-probability target      (default 1e-6)
//!   --engine <name>  primary engine: st_fast, st_MC, st_closed, hybrid
//!                    (default st_fast)
//!   --threads <n>    worker threads for parallel engines (default: the
//!                    STATOBD_THREADS environment variable, then all cores)
//!   --mc <n>         also run Monte-Carlo with n chips
//!   --cache          open through the artifact cache: load the compiled
//!                    model if present, save it after a cold build
//!   --timings        print the session build breakdown (cold build vs
//!                    cache load, wall time, retained components)
//!   --curve <n>      print an n-point P(t) failure-rate curve around the
//!                    solved lifetime (one batched engine sweep)
//!   --tables <path>  export hybrid lookup tables as JSON
//! ```

use statobd::circuits::Benchmark;
use statobd::core::{
    build_engine, params, solve_lifetime, ChipSpec, EngineKind, EngineSpec, GuardBand,
    GuardBandConfig, HybridConfig, HybridTables, MonteCarloConfig, StFast, StFastConfig,
};
use statobd::manager::{
    DamageState, DvfsLevel, ManageSpec, ManagerConfig, MissionProfile, PhaseSpec, PolicyConfig,
};
use statobd::thermal::{
    kelvin_to_celsius, Floorplan, PowerModel, ThermalConfig, ThermalSolver, ThermalSolverKind,
};
use statobd::variation::SystematicPattern;
use statobd::{run_fleet, FleetConfig};
use statobd::{AnalysisSpec, ArtifactCache, DesignSource, ServeConfig, Session};
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    rho: f64,
    grid: usize,
    l0: usize,
    target: f64,
    engine: EngineKind,
    threads: Option<usize>,
    mc_chips: Option<usize>,
    curve_points: Option<usize>,
    tables_out: Option<String>,
    cache: bool,
    timings: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            rho: params::DEFAULT_CORRELATION_DISTANCE,
            grid: params::DEFAULT_GRID_SIDE,
            l0: params::DEFAULT_L0,
            target: params::ONE_PER_MILLION,
            engine: EngineKind::StFast,
            threads: None,
            mc_chips: None,
            curve_points: None,
            tables_out: None,
            cache: false,
            timings: false,
        }
    }
}

impl Options {
    /// The primary engine's construction spec.
    fn engine_spec(&self) -> EngineSpec {
        let spec = match self.engine {
            EngineKind::StFast => EngineSpec::StFast(StFastConfig {
                l0: self.l0,
                ..Default::default()
            }),
            kind => kind.default_spec(),
        };
        spec.with_threads(self.threads)
    }

    /// The declarative analysis spec these options denote for `design`.
    fn to_spec(&self, design: DesignSource) -> AnalysisSpec {
        let mut spec = match design {
            DesignSource::Benchmark(b) => AnalysisSpec::benchmark(b),
            DesignSource::Chip(c) => AnalysisSpec::chip(c),
        };
        spec.grid_side = self.grid;
        spec.model.kernel = statobd::variation::CorrelationKernel::Exponential {
            rel_distance: self.rho,
        };
        spec.engine = self.engine_spec();
        spec.threads = self.threads;
        spec
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  statobd template <out.json>\n  statobd analyze <spec.json> [--rho f] [--grid n] [--l0 n] [--target f] [--engine name] [--threads n] [--mc n] [--curve n] [--tables path] [--cache] [--timings]\n  statobd bench <C1|C2|C3|C4|C5|C6|MC16> [same options]\n  statobd serve [--socket path] [--cache-dir path] [--no-cache|--quick] [--max-sessions n]\n  statobd thermal <floorplan.json> <power.json> [--solver name] [--grid n] [--timings]\n  statobd manage <spec.json> <schedule.json> [--rho f] [--grid n] [--l0 n] [--threads n] [--checkpoint path]\n  statobd manage template <out.json>\n  statobd fleet <spec.json|C1..MC16> [--chips n] [--profile name] [--seed n] [--budget f] [--wafer-depth f] [--rho f] [--grid n] [--threads n] [--shards n] [--spares n] [--json]"
    );
    ExitCode::FAILURE
}

#[derive(Debug)]
struct ThermalOptions {
    solver: ThermalSolverKind,
    grid: Option<usize>,
    timings: bool,
}

fn parse_thermal_options(args: &[String]) -> Result<ThermalOptions, String> {
    let mut opts = ThermalOptions {
        solver: ThermalSolverKind::Auto,
        grid: None,
        timings: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--solver" => {
                let name = value("--solver")?;
                opts.solver = ThermalSolverKind::parse(&name)
                    .ok_or_else(|| format!("--solver: unknown solver '{name}'"))?;
            }
            "--grid" => {
                opts.grid = Some(
                    value("--grid")?
                        .parse()
                        .map_err(|e| format!("--grid: {e}"))?,
                )
            }
            "--timings" => opts.timings = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.grid == Some(0) {
        return Err("--grid: the thermal grid needs at least one cell per side".to_string());
    }
    Ok(opts)
}

fn thermal(fp_path: &str, pm_path: &str, opts: &ThermalOptions) -> Result<(), String> {
    let fp: Floorplan = statobd::num::json::from_str(
        &std::fs::read_to_string(fp_path).map_err(|e| format!("reading {fp_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {fp_path}: {e}"))?;
    let pm: PowerModel = statobd::num::json::from_str(
        &std::fs::read_to_string(pm_path).map_err(|e| format!("reading {pm_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {pm_path}: {e}"))?;
    let mut config = ThermalConfig {
        solver: opts.solver,
        ..ThermalConfig::default()
    };
    if let Some(side) = opts.grid {
        config.nx = side;
        config.ny = side;
    }
    let solver = ThermalSolver::new(config);
    let map = solver.solve(&fp, &pm).map_err(|e| e.to_string())?;
    if opts.timings {
        let b = map.breakdown();
        println!(
            "thermal solve: {}x{} grid, solver {}",
            config.nx, config.ny, b.solver
        );
        println!(
            "  assembly {:.4} s  preconditioner {:.4} s  solve {:.4} s",
            b.assembly_s, b.precond_s, b.solve_s
        );
        let per_iter: Vec<String> = b.cg_iterations.iter().map(|i| i.to_string()).collect();
        println!(
            "  leakage iterations {}: CG per iteration [{}], total {}",
            map.leakage_iterations(),
            per_iter.join(", "),
            map.total_cg_iterations()
        );
        println!("  final relative residual {:.3e}\n", map.final_residual());
    }
    println!("{}", map.ascii_render(48));
    println!(
        "die: min {:.1} C, mean {:.1} C, max {:.1} C",
        kelvin_to_celsius(map.min_k()),
        kelvin_to_celsius(map.mean_k()),
        kelvin_to_celsius(map.max_k())
    );
    println!(
        "\n{:<14} {:>9} {:>9} {:>9}",
        "block", "min C", "mean C", "max C"
    );
    for b in fp.blocks() {
        let s = map.block_stats(b.rect());
        println!(
            "{:<14} {:>9.1} {:>9.1} {:>9.1}",
            b.name(),
            kelvin_to_celsius(s.min_k),
            kelvin_to_celsius(s.mean_k),
            kelvin_to_celsius(s.max_k)
        );
    }
    Ok(())
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--rho" => opts.rho = value("--rho")?.parse().map_err(|e| format!("--rho: {e}"))?,
            "--grid" => {
                opts.grid = value("--grid")?
                    .parse()
                    .map_err(|e| format!("--grid: {e}"))?
            }
            "--l0" => opts.l0 = value("--l0")?.parse().map_err(|e| format!("--l0: {e}"))?,
            "--target" => {
                opts.target = value("--target")?
                    .parse()
                    .map_err(|e| format!("--target: {e}"))?
            }
            "--mc" => {
                opts.mc_chips = Some(value("--mc")?.parse().map_err(|e| format!("--mc: {e}"))?)
            }
            "--curve" => {
                opts.curve_points = Some(
                    value("--curve")?
                        .parse()
                        .map_err(|e| format!("--curve: {e}"))?,
                )
            }
            "--engine" => {
                let name = value("--engine")?;
                opts.engine = EngineKind::parse(&name).map_err(|e| format!("--engine: {e}"))?;
            }
            "--threads" => {
                opts.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--tables" => opts.tables_out = Some(value("--tables")?),
            "--cache" => opts.cache = true,
            "--timings" => opts.timings = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    validate_options(&opts)?;
    Ok(opts)
}

/// Rejects parameter values that would only fail (or silently produce
/// nonsense) deep inside the analysis: zero grid sides, zero quadrature
/// sub-domains, non-positive correlation distances, empty Monte-Carlo
/// populations and empty curves.
fn validate_options(opts: &Options) -> Result<(), String> {
    if !(opts.rho > 0.0) || !opts.rho.is_finite() {
        return Err(format!(
            "--rho: correlation distance must be positive and finite, got {}",
            opts.rho
        ));
    }
    if opts.grid == 0 {
        return Err("--grid: the correlation grid needs at least one cell per side".to_string());
    }
    if opts.l0 == 0 {
        return Err("--l0: the quadrature needs at least one sub-domain".to_string());
    }
    if !(opts.target > 0.0) || opts.target >= 1.0 {
        return Err(format!(
            "--target: failure-probability target must be in (0, 1), got {}",
            opts.target
        ));
    }
    if opts.mc_chips == Some(0) {
        return Err("--mc: the Monte-Carlo population needs at least one chip".to_string());
    }
    if opts.curve_points == Some(0) {
        return Err("--curve: the P(t) curve needs at least one point".to_string());
    }
    if opts.threads == Some(0) {
        return Err("--threads: need at least one worker thread".to_string());
    }
    Ok(())
}

fn template(path: &str) -> Result<(), String> {
    let mut spec = ChipSpec::new();
    spec.add_block(
        statobd::core::BlockSpec::new(
            "core",
            60_000.0,
            60_000,
            368.15,
            1.2,
            vec![(0, 0.5), (1, 0.5)],
        )
        .map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    spec.add_block(
        statobd::core::BlockSpec::new("cache", 140_000.0, 140_000, 341.15, 1.2, vec![(12, 1.0)])
            .map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let json = statobd::num::json::to_string_pretty(&spec);
    std::fs::write(path, json).map_err(|e| e.to_string())?;
    println!("wrote example spec to {path}");
    println!(
        "grid indices refer to a {0}x{0} correlation grid (row-major)",
        25
    );
    Ok(())
}

#[derive(Debug)]
struct ManageOptions {
    rho: f64,
    grid: usize,
    l0: usize,
    threads: Option<usize>,
    checkpoint: Option<String>,
}

fn parse_manage_options(args: &[String]) -> Result<ManageOptions, String> {
    let mut opts = ManageOptions {
        rho: params::DEFAULT_CORRELATION_DISTANCE,
        grid: params::DEFAULT_GRID_SIDE,
        l0: params::DEFAULT_L0,
        threads: None,
        checkpoint: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--rho" => opts.rho = value("--rho")?.parse().map_err(|e| format!("--rho: {e}"))?,
            "--grid" => {
                opts.grid = value("--grid")?
                    .parse()
                    .map_err(|e| format!("--grid: {e}"))?
            }
            "--l0" => opts.l0 = value("--l0")?.parse().map_err(|e| format!("--l0: {e}"))?,
            "--threads" => {
                opts.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--checkpoint" => opts.checkpoint = Some(value("--checkpoint")?),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if !(opts.rho > 0.0) || !opts.rho.is_finite() {
        return Err(format!(
            "--rho: correlation distance must be positive and finite, got {}",
            opts.rho
        ));
    }
    if opts.grid == 0 {
        return Err("--grid: the correlation grid needs at least one cell per side".to_string());
    }
    if opts.l0 == 0 {
        return Err("--l0: the quadrature needs at least one sub-domain".to_string());
    }
    if opts.threads == Some(0) {
        return Err("--threads: need at least one worker thread".to_string());
    }
    Ok(opts)
}

/// Writes an example `statobd manage` schedule: a 1-ppm five-year budget,
/// a three-level DVFS ladder and a bursty typical/turbo/idle pattern.
fn manage_template(path: &str) -> Result<(), String> {
    const MONTH_S: f64 = 2.63e6;
    let spec = ManageSpec {
        policy: PolicyConfig {
            budget: params::ONE_PER_MILLION,
            service_life_s: 60.0 * MONTH_S,
            hysteresis: 0.85,
            levels: vec![
                DvfsLevel {
                    name: "turbo".to_string(),
                    vdd_cap_v: 1.26,
                    dt_when_capped_k: 0.0,
                },
                DvfsLevel {
                    name: "nominal".to_string(),
                    vdd_cap_v: 1.20,
                    dt_when_capped_k: -6.0,
                },
                DvfsLevel {
                    name: "eco".to_string(),
                    vdd_cap_v: 1.10,
                    dt_when_capped_k: -14.0,
                },
            ],
        },
        phases: vec![
            PhaseSpec {
                name: "typical".to_string(),
                duration_s: 3.0 * MONTH_S,
                dt_k: 0.0,
                vdd_v: 1.20,
            },
            PhaseSpec {
                name: "turbo".to_string(),
                duration_s: 2.0 * MONTH_S,
                dt_k: 10.0,
                vdd_v: 1.26,
            },
            PhaseSpec {
                name: "idle".to_string(),
                duration_s: 7.0 * MONTH_S,
                dt_k: -12.0,
                vdd_v: 1.10,
            },
        ],
        steps_per_phase: 3,
        repeat: 5,
    };
    std::fs::write(path, spec.to_json()).map_err(|e| e.to_string())?;
    println!("wrote example schedule to {path}");
    println!("phase temperatures are offsets (dt_k) from each block's spec temperature");
    Ok(())
}

/// Runs the dynamic reliability manager over a phase schedule.
fn manage(spec_path: &str, schedule_path: &str, opts: &ManageOptions) -> Result<(), String> {
    let chip: ChipSpec = statobd::num::json::from_str(
        &std::fs::read_to_string(spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {spec_path}: {e}"))?;
    let schedule = ManageSpec::from_json(
        &std::fs::read_to_string(schedule_path)
            .map_err(|e| format!("reading {schedule_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {schedule_path}: {e}"))?;

    // The manager needs only the compiled analysis; the (cheap) closed-form
    // engine keeps session construction light.
    let mut aspec = AnalysisSpec::chip(chip);
    aspec.grid_side = opts.grid;
    aspec.model.kernel = statobd::variation::CorrelationKernel::Exponential {
        rel_distance: opts.rho,
    };
    aspec.engine = EngineKind::StClosed.default_spec();
    aspec.threads = opts.threads;
    let mut session = Session::build(&aspec).map_err(|e| e.to_string())?;
    let n_blocks = session.analysis().n_blocks();

    let start = std::time::Instant::now();
    let manager_config = ManagerConfig {
        tables: HybridConfig {
            quadrature_l0: opts.l0,
            threads: opts.threads,
            ..HybridConfig::default()
        },
        ..ManagerConfig::default()
    };
    session
        .configure_manager(schedule.policy.clone(), manager_config)
        .map_err(|e| e.to_string())?;
    // Resolve the phase temperatures up front: the manager borrow below
    // is exclusive for the rest of the run.
    let phases: Vec<statobd::manager::OperatingPhase> = schedule
        .phases
        .iter()
        .map(|p| p.resolve(session.analysis().spec()))
        .collect();
    let mgr = session.manager_mut().map_err(|e| e.to_string())?;
    println!(
        "manager ready: {} blocks, tables γ ∈ [{:.1}, {:.1}], b ∈ [{:.3}, {:.3}]  [{:.2} s]",
        n_blocks,
        mgr.tables().config().gamma_range.0,
        mgr.tables().config().gamma_range.1,
        mgr.tables().config().b_range.0,
        mgr.tables().config().b_range.1,
        start.elapsed().as_secs_f64()
    );

    if let Some(path) = &opts.checkpoint {
        match std::fs::read_to_string(path) {
            Ok(json) => {
                let state = DamageState::from_json(&json).map_err(|e| e.to_string())?;
                println!(
                    "restored checkpoint {path}: {:.3} years of damage, P = {:.3e}",
                    state.elapsed_s() / 3.156e7,
                    {
                        mgr.restore(state).map_err(|e| e.to_string())?;
                        mgr.failure_probability_now().map_err(|e| e.to_string())?
                    }
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                println!("checkpoint {path} not found, starting from a pristine chip");
            }
            Err(e) => return Err(format!("reading {path}: {e}")),
        }
    }

    println!(
        "\n{:>5} {:>12} {:>8} {:>7} {:>13} {:>13}",
        "cycle", "phase", "level", "VDD", "P(now)", "P(projected)"
    );
    let budget = schedule.policy.budget;
    for cycle in 0..schedule.repeat {
        for phase in &phases {
            let reports = mgr
                .run_phase(phase, schedule.steps_per_phase)
                .map_err(|e| e.to_string())?;
            let last = reports.last().expect("at least one step");
            println!(
                "{:>5} {:>12} {:>8} {:>7.2} {:>13.3e} {:>13.3e}{}",
                cycle,
                phase.name,
                mgr.level_name(),
                last.vdd_v,
                last.p_now,
                last.p_projected,
                if last.capped { "  <- capped" } else { "" }
            );
        }
    }

    let p_final = mgr.failure_probability_now().map_err(|e| e.to_string())?;
    println!(
        "\nend of schedule: {:.2} years elapsed, P = {p_final:.3e} (budget {budget:.1e}), {} DVFS transitions",
        mgr.damage().elapsed_s() / 3.156e7,
        mgr.transitions()
    );
    if mgr.off_grid_queries() > 0 {
        println!(
            "warning: {} table queries ran off the grid — results clamp conservatively low; \
             rebuild with a longer service life or cooler schedule",
            mgr.off_grid_queries()
        );
    }
    println!(
        "verdict: budget {}",
        if p_final <= budget { "met" } else { "exceeded" }
    );

    if let Some(path) = &opts.checkpoint {
        std::fs::write(path, mgr.damage().to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("damage state checkpointed to {path}");
    }
    Ok(())
}

/// Compiles the session for `design` (through the artifact cache when
/// `--cache` is set) and prints the full report.
fn report(design: DesignSource, opts: &Options) -> Result<(), String> {
    let spec = opts.to_spec(design);
    let mut session = if opts.cache {
        let cache = ArtifactCache::open_default().map_err(|e| e.to_string())?;
        Session::open(&spec, &cache)
    } else {
        Session::build(&spec)
    }
    .map_err(|e| e.to_string())?;

    if let Some(note) = &session.stats().note {
        eprintln!("warning: {note}");
    }
    if opts.timings {
        let stats = session.stats();
        println!(
            "session: {} build in {:.4} s, {} components retained, spec hash {}",
            stats.source.name(),
            stats.build_s,
            stats.n_components,
            stats.spec_hash
        );
        println!("lane dispatch: {}", statobd::num::simd::dispatch_label());
    }
    println!(
        "design: {} blocks, {} devices, worst block temperature {:.1} C",
        session.analysis().n_blocks(),
        session.analysis().spec().total_devices(),
        session.analysis().spec().max_temperature_k().unwrap_or(0.0) - 273.15
    );

    let years = |t: f64| t / 3.156e7;
    let kind = opts.engine;

    let start = std::time::Instant::now();
    let t_fast = session.lifetime(opts.target).map_err(|e| e.to_string())?;
    println!(
        "{} lifetime @ P={:.1e}: {:.3e} s ({:.2} years)  [{:.1} ms]",
        kind,
        opts.target,
        t_fast,
        years(t_fast),
        start.elapsed().as_secs_f64() * 1e3
    );

    let fit = session.fit_rate(t_fast).map_err(|e| e.to_string())?;
    let slope = session.weibull_slope(t_fast).map_err(|e| e.to_string())?;
    println!(
        "at that lifetime: FIT rate {fit:.2} failures/1e9 device-hours, effective Weibull slope {slope:.2}"
    );

    let analysis = session.analysis();
    let guard = GuardBand::new(analysis, GuardBandConfig::default()).map_err(|e| e.to_string())?;
    let t_guard = guard.lifetime(opts.target).map_err(|e| e.to_string())?;
    println!(
        "guard-band corner:            {:.3e} s ({:.2} years)  [{:.0}% pessimistic]",
        t_guard,
        years(t_guard),
        100.0 * (1.0 - t_guard / t_fast)
    );

    if let Some(chips) = opts.mc_chips {
        let start = std::time::Instant::now();
        let mc_spec = EngineSpec::MonteCarlo(MonteCarloConfig {
            n_chips: chips,
            threads: opts.threads,
            ..Default::default()
        });
        let mut mc = build_engine(analysis, &mc_spec).map_err(|e| e.to_string())?;
        let t_mc = solve_lifetime(mc.as_mut(), opts.target, statobd::LIFETIME_BRACKET_S)
            .map_err(|e| e.to_string())?;
        println!(
            "Monte-Carlo ({chips} chips):     {:.3e} s ({:.2} years)  [{:.1} s; {} error {:.2}%]",
            t_mc,
            years(t_mc),
            start.elapsed().as_secs_f64(),
            kind,
            100.0 * ((t_fast - t_mc) / t_mc).abs()
        );
    }

    if let Some(path) = &opts.tables_out {
        let tables =
            HybridTables::build(analysis, HybridConfig::default()).map_err(|e| e.to_string())?;
        std::fs::write(path, tables.to_json().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        println!("hybrid lookup tables written to {path}");
    }

    println!("\nper-block contributions at the {kind} lifetime:");
    let breakdown = StFast::new(
        analysis,
        StFastConfig {
            l0: opts.l0,
            threads: opts.threads,
            ..Default::default()
        },
    );
    let blocks: Vec<(String, f64, f64)> = analysis
        .blocks()
        .iter()
        .enumerate()
        .map(|(j, block)| {
            breakdown.block_failure_probability(j, t_fast).map(|p| {
                (
                    block.spec().name().to_string(),
                    block.spec().temperature_k(),
                    p,
                )
            })
        })
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    for (name, temp_k, p) in &blocks {
        println!("  {name:<12} {:>7.1} C  P_j = {p:.3e}", temp_k - 273.15);
    }

    if let Some(n) = opts.curve_points {
        let n = n.max(2);
        // Two decades either side of the solved lifetime covers the whole
        // interesting region of the S-curve; one batched sweep.
        let start = std::time::Instant::now();
        let curve = session
            .sweep(t_fast * 1e-2, t_fast * 1e2, n)
            .map_err(|e| e.to_string())?;
        println!(
            "\nP(t) curve, {n} points around the lifetime  [{:.1} ms]:",
            start.elapsed().as_secs_f64() * 1e3
        );
        println!("  {:>12}  {:>10}  {:>12}", "t (s)", "t (yr)", "P(t)");
        for (t, p) in &curve {
            println!("  {t:>12.4e}  {:>10.3}  {p:>12.4e}", years(*t));
        }
    }
    Ok(())
}

#[derive(Debug)]
struct FleetOptions {
    chips: u64,
    profile: MissionProfile,
    seed: u64,
    budget: f64,
    wafer_depth: f64,
    rho: f64,
    grid: usize,
    threads: Option<usize>,
    shards: Option<usize>,
    spares: usize,
    json: bool,
}

fn parse_fleet_options(args: &[String]) -> Result<FleetOptions, String> {
    let mut opts = FleetOptions {
        chips: 100_000,
        profile: MissionProfile::datacenter(),
        seed: 42,
        budget: params::ONE_PER_MILLION,
        wafer_depth: 0.02,
        rho: params::DEFAULT_CORRELATION_DISTANCE,
        grid: params::DEFAULT_GRID_SIDE,
        threads: None,
        shards: None,
        spares: 0,
        json: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--chips" => {
                opts.chips = value("--chips")?
                    .parse()
                    .map_err(|e| format!("--chips: {e}"))?
            }
            "--profile" => {
                // Resolve at parse time: an unknown name fails here with a
                // did-you-mean suggestion, not after the model compiles.
                let name = value("--profile")?;
                opts.profile =
                    MissionProfile::named(&name).map_err(|e| format!("--profile: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--budget" => {
                opts.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?
            }
            "--wafer-depth" => {
                opts.wafer_depth = value("--wafer-depth")?
                    .parse()
                    .map_err(|e| format!("--wafer-depth: {e}"))?
            }
            "--rho" => opts.rho = value("--rho")?.parse().map_err(|e| format!("--rho: {e}"))?,
            "--grid" => {
                opts.grid = value("--grid")?
                    .parse()
                    .map_err(|e| format!("--grid: {e}"))?
            }
            "--threads" => {
                opts.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--shards" => {
                opts.shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                )
            }
            "--spares" => {
                opts.spares = value("--spares")?
                    .parse()
                    .map_err(|e| format!("--spares: {e}"))?
            }
            "--json" => opts.json = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.chips == 0 {
        return Err("--chips: the fleet needs at least one chip".to_string());
    }
    if opts.shards == Some(0) {
        return Err("--shards: need at least one shard".to_string());
    }
    if opts.threads == Some(0) {
        return Err("--threads: need at least one worker thread".to_string());
    }
    if !(opts.budget > 0.0) || opts.budget >= 1.0 {
        return Err(format!(
            "--budget: failure-probability budget must be in (0, 1), got {}",
            opts.budget
        ));
    }
    if !(opts.wafer_depth >= 0.0) || !opts.wafer_depth.is_finite() {
        return Err(format!(
            "--wafer-depth: bowl depth must be non-negative and finite, got {}",
            opts.wafer_depth
        ));
    }
    if !(opts.rho > 0.0) || !opts.rho.is_finite() {
        return Err(format!(
            "--rho: correlation distance must be positive and finite, got {}",
            opts.rho
        ));
    }
    if opts.grid == 0 {
        return Err("--grid: the correlation grid needs at least one cell per side".to_string());
    }
    Ok(opts)
}

impl FleetOptions {
    fn config(&self) -> FleetConfig {
        FleetConfig {
            chips: self.chips,
            profile: self.profile.clone(),
            seed: self.seed,
            budget: self.budget,
            wafer: if self.wafer_depth > 0.0 {
                SystematicPattern::Bowl {
                    depth: self.wafer_depth,
                    center: (0.5, 0.5),
                }
            } else {
                SystematicPattern::None
            },
            threads: self.threads,
            shards: self.shards,
            spares: self.spares,
        }
    }
}

/// Streams a sampled chip population through a mission profile.
fn fleet(design_arg: &str, opts: &FleetOptions) -> Result<(), String> {
    // The design argument is a bundled benchmark name or a chip-spec path.
    let design = match Benchmark::parse(design_arg) {
        Ok(bench) => DesignSource::Benchmark(bench),
        Err(_) => {
            let json = std::fs::read_to_string(design_arg)
                .map_err(|e| format!("reading {design_arg}: {e}"))?;
            DesignSource::Chip(
                statobd::num::json::from_str::<ChipSpec>(&json)
                    .map_err(|e| format!("parsing {design_arg}: {e}"))?,
            )
        }
    };
    // The fleet never queries the engine; the closed-form selection keeps
    // the session build light.
    let mut aspec = match design {
        DesignSource::Benchmark(b) => AnalysisSpec::benchmark(b),
        DesignSource::Chip(c) => AnalysisSpec::chip(c),
    };
    aspec.grid_side = opts.grid;
    aspec.model.kernel = statobd::variation::CorrelationKernel::Exponential {
        rel_distance: opts.rho,
    };
    aspec.engine = EngineKind::StClosed.default_spec();
    aspec.threads = opts.threads;
    let session = Session::build(&aspec).map_err(|e| e.to_string())?;
    let tech = session.spec().tech.tech();

    let config = opts.config();
    let report = run_fleet(session.analysis(), &tech, &config).map_err(|e| e.to_string())?;
    if opts.json {
        println!("{}", statobd::num::json::to_string_pretty(&report));
        return Ok(());
    }

    let a = &report.aggregates;
    let years = |t: f64| t / 3.156e7;
    println!(
        "fleet: {} chips through '{}' ({})",
        a.chips,
        a.profile,
        opts.profile.description()
    );
    if opts.spares > 0 {
        println!(
            "  redundancy: one group over all blocks, {} spare(s) (chip fails only past {} block failures)",
            opts.spares, opts.spares
        );
    }
    println!(
        "  {} threads, {} shards, {:.2} s  [{:.0} chips/s, {} workspace(s)]",
        report.threads, report.shards, report.run_s, report.chips_per_s, report.workspaces_created
    );
    println!(
        "  {}: {} chips/tile, {} lane tile(s), scalar tail {} chip(s)",
        report.lanes,
        report.lane_width,
        report.lane_tiles,
        a.chips - report.lane_tiles * report.lane_width
    );
    println!(
        "budget P = {:.1e}: {} chips over budget at mission end ({:.3}%)",
        a.budget,
        a.exceed_budget,
        100.0 * a.exceed_budget as f64 / a.chips as f64
    );
    if a.censored_low + a.censored_high > 0 {
        println!(
            "  lifetime censoring: {} below {:.0e} s, {} beyond {:.0e} s",
            a.censored_low,
            statobd::FLEET_LIFE_BRACKET_S.0,
            a.censored_high,
            statobd::FLEET_LIFE_BRACKET_S.1
        );
    }
    println!("\nweakest block across the fleet:");
    for (name, count) in a.block_names.iter().zip(&a.weakest_counts) {
        println!(
            "  {name:<14} {count:>10}  ({:.2}%)",
            100.0 * *count as f64 / a.chips as f64
        );
    }
    println!(
        "\n{:>8}  {:>12}  {:>10}  {:>12}  {:>10}",
        "quantile", "life (s)", "life (yr)", "P(mission)", "FIT"
    );
    for (i, q) in a.quantile_levels.iter().enumerate() {
        println!(
            "{q:>8}  {:>12.4e}  {:>10.2}  {:>12.4e}  {:>10.3}",
            a.lifetime_quantiles_s[i],
            years(a.lifetime_quantiles_s[i]),
            a.p_mission_quantiles[i],
            a.fit_quantiles[i]
        );
    }
    Ok(())
}

#[derive(Debug, Default)]
struct ServeOptions {
    socket: Option<String>,
    cache_dir: Option<String>,
    no_cache: bool,
    max_sessions: Option<usize>,
}

fn parse_serve_options(args: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--socket" => opts.socket = Some(value("--socket")?),
            "--cache-dir" => opts.cache_dir = Some(value("--cache-dir")?),
            "--no-cache" | "--quick" => opts.no_cache = true,
            "--max-sessions" => {
                opts.max_sessions = Some(
                    value("--max-sessions")?
                        .parse()
                        .map_err(|e| format!("--max-sessions: {e}"))?,
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.max_sessions == Some(0) {
        return Err("--max-sessions: the server needs room for at least one session".to_string());
    }
    Ok(opts)
}

fn serve_cmd(opts: &ServeOptions) -> Result<(), String> {
    let mut config = ServeConfig::default();
    if let Some(n) = opts.max_sessions {
        config.max_sessions = n;
    }
    config.cache = if opts.no_cache {
        None
    } else if let Some(dir) = &opts.cache_dir {
        Some(ArtifactCache::new(dir))
    } else {
        // Serving without any cache root (e.g. no $HOME) is fine: every
        // open is just a cold build.
        ArtifactCache::default_root().map(ArtifactCache::new)
    };
    let socket = opts.socket.as_ref().map(std::path::Path::new);
    statobd::serve(config, socket).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "template" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            template(path)
        }
        "analyze" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match parse_options(&args[2..]) {
                Ok(opts) => std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {path}: {e}"))
                    .and_then(|json| {
                        statobd::num::json::from_str::<ChipSpec>(&json)
                            .map_err(|e| format!("parsing {path}: {e}"))
                    })
                    .and_then(|spec| report(DesignSource::Chip(spec), &opts)),
                Err(e) => Err(e),
            }
        }
        "serve" => match parse_serve_options(&args[1..]) {
            Ok(opts) => serve_cmd(&opts),
            Err(e) => Err(e),
        },
        "thermal" => {
            let (Some(fp), Some(pm)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            match parse_thermal_options(&args[3..]) {
                Ok(opts) => thermal(fp, pm, &opts),
                Err(e) => Err(e),
            }
        }
        "manage" => match (args.get(1).map(String::as_str), args.get(2)) {
            (Some("template"), Some(path)) => manage_template(path),
            (Some(spec), Some(schedule)) => match parse_manage_options(&args[3..]) {
                Ok(opts) => manage(spec, schedule, &opts),
                Err(e) => Err(e),
            },
            _ => return usage(),
        },
        "fleet" => {
            let Some(design) = args.get(1) else {
                return usage();
            };
            match parse_fleet_options(&args[2..]) {
                Ok(opts) => fleet(design, &opts),
                Err(e) => Err(e),
            }
        }
        "bench" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            match Benchmark::parse(name).map_err(|e| e.to_string()) {
                Ok(bench) => match parse_options(&args[2..]) {
                    Ok(opts) => report(DesignSource::Benchmark(bench), &opts),
                    Err(e) => Err(e),
                },
                Err(e) => Err(e),
            }
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_options_accepts_sane_flags() {
        let opts = parse_options(&args(&[
            "--rho",
            "0.4",
            "--grid",
            "12",
            "--l0",
            "8",
            "--mc",
            "50",
            "--curve",
            "5",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(opts.grid, 12);
        assert_eq!(opts.l0, 8);
        assert_eq!(opts.mc_chips, Some(50));
        assert_eq!(opts.curve_points, Some(5));
        assert_eq!(opts.threads, Some(2));
        assert!((opts.rho - 0.4).abs() < 1e-12);
    }

    #[test]
    fn parse_options_rejects_degenerate_values_at_parse_time() {
        // Each of these used to parse fine and fail (or mislead) much
        // later, deep inside the analysis.
        for (bad, needle) in [
            (vec!["--l0", "0"], "--l0"),
            (vec!["--grid", "0"], "--grid"),
            (vec!["--rho", "0"], "--rho"),
            (vec!["--rho", "-0.5"], "--rho"),
            (vec!["--rho", "nan"], "--rho"),
            (vec!["--mc", "0"], "--mc"),
            (vec!["--curve", "0"], "--curve"),
            (vec!["--threads", "0"], "--threads"),
            (vec!["--target", "0"], "--target"),
            (vec!["--target", "1.5"], "--target"),
        ] {
            let err = parse_options(&args(&bad)).unwrap_err();
            assert!(
                err.contains(needle),
                "rejection for {bad:?} should mention {needle}: {err}"
            );
        }
    }

    #[test]
    fn parse_options_rejects_unknown_and_dangling_flags() {
        assert!(parse_options(&args(&["--frobnicate"])).is_err());
        assert!(parse_options(&args(&["--rho"])).is_err());
    }

    #[test]
    fn parse_fleet_options_accepts_sane_flags() {
        let opts = parse_fleet_options(&args(&[
            "--chips",
            "5000",
            "--profile",
            "AUTOMOTIVE",
            "--seed",
            "7",
            "--budget",
            "1e-5",
            "--wafer-depth",
            "0",
            "--threads",
            "2",
            "--shards",
            "5",
            "--json",
        ]))
        .unwrap();
        assert_eq!(opts.chips, 5000);
        assert_eq!(opts.profile.name(), "automotive");
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.threads, Some(2));
        assert_eq!(opts.shards, Some(5));
        assert!(opts.json);
        assert_eq!(opts.config().wafer, SystematicPattern::None);
    }

    #[test]
    fn parse_fleet_options_rejects_degenerate_values_at_parse_time() {
        for (bad, needle) in [
            (vec!["--chips", "0"], "--chips"),
            (vec!["--shards", "0"], "--shards"),
            (vec!["--threads", "0"], "--threads"),
            (vec!["--budget", "0"], "--budget"),
            (vec!["--budget", "1"], "--budget"),
            (vec!["--wafer-depth", "-1"], "--wafer-depth"),
            (vec!["--rho", "0"], "--rho"),
            (vec!["--grid", "0"], "--grid"),
            (vec!["--profile"], "--profile"),
            (vec!["--frobnicate"], "--frobnicate"),
        ] {
            let err = parse_fleet_options(&args(&bad)).unwrap_err();
            assert!(
                err.contains(needle),
                "rejection for {bad:?} should mention {needle}: {err}"
            );
        }
    }

    #[test]
    fn parse_fleet_options_suggests_profile_names() {
        let err = parse_fleet_options(&args(&["--profile", "datacentre"])).unwrap_err();
        assert!(err.contains("did you mean 'datacenter'"), "{err}");
        assert!(err.contains("htol"), "menu missing from: {err}");
    }

    #[test]
    fn parse_thermal_options_rejects_zero_grid() {
        assert!(parse_thermal_options(&args(&["--grid", "0"])).is_err());
        assert!(parse_thermal_options(&args(&["--grid", "32"])).is_ok());
    }

    #[test]
    fn parse_manage_options_validates_like_analyze() {
        let opts =
            parse_manage_options(&args(&["--checkpoint", "state.json", "--grid", "10"])).unwrap();
        assert_eq!(opts.checkpoint.as_deref(), Some("state.json"));
        assert_eq!(opts.grid, 10);
        for bad in [
            vec!["--l0", "0"],
            vec!["--grid", "0"],
            vec!["--rho", "0"],
            vec!["--threads", "0"],
            vec!["--unknown"],
        ] {
            assert!(
                parse_manage_options(&args(&bad)).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }
}
