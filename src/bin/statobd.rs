//! `statobd` — command-line front end for the statistical OBD reliability
//! analysis.
//!
//! ```text
//! statobd template <out.json>          write an example chip spec
//! statobd analyze  <spec.json> [opts]  analyze a chip spec
//! statobd bench    <C1..C6|MC16>       analyze a bundled benchmark design
//! statobd thermal  <floorplan.json> <power.json>
//!                                      solve the steady-state thermal map
//!
//! options for analyze/bench:
//!   --rho <f>        relative correlation distance   (default 0.5)
//!   --grid <n>       correlation grid side           (default 25)
//!   --l0 <n>         integration sub-domains         (default 10)
//!   --target <f>     failure-probability target      (default 1e-6)
//!   --mc <n>         also run Monte-Carlo with n chips
//!   --tables <path>  export hybrid lookup tables as JSON
//! ```

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{
    effective_weibull_slope, fit_rate, params, solve_lifetime, ChipAnalysis, ChipSpec, GuardBand,
    GuardBandConfig, HybridConfig, HybridTables, MonteCarlo, MonteCarloConfig, StFast,
    StFastConfig,
};
use statobd::device::ClosedFormTech;
use statobd::thermal::{kelvin_to_celsius, Floorplan, PowerModel, ThermalConfig, ThermalSolver};
use statobd::variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};
use std::process::ExitCode;

struct Options {
    rho: f64,
    grid: usize,
    l0: usize,
    target: f64,
    mc_chips: Option<usize>,
    tables_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            rho: params::DEFAULT_CORRELATION_DISTANCE,
            grid: params::DEFAULT_GRID_SIDE,
            l0: params::DEFAULT_L0,
            target: params::ONE_PER_MILLION,
            mc_chips: None,
            tables_out: None,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  statobd template <out.json>\n  statobd analyze <spec.json> [--rho f] [--grid n] [--l0 n] [--target f] [--mc n] [--tables path]\n  statobd bench <C1|C2|C3|C4|C5|C6|MC16> [same options]\n  statobd thermal <floorplan.json> <power.json>"
    );
    ExitCode::FAILURE
}

fn thermal(fp_path: &str, pm_path: &str) -> Result<(), String> {
    let fp: Floorplan = serde_json::from_str(
        &std::fs::read_to_string(fp_path).map_err(|e| format!("reading {fp_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {fp_path}: {e}"))?;
    let pm: PowerModel = serde_json::from_str(
        &std::fs::read_to_string(pm_path).map_err(|e| format!("reading {pm_path}: {e}"))?,
    )
    .map_err(|e| format!("parsing {pm_path}: {e}"))?;
    let solver = ThermalSolver::new(ThermalConfig::default());
    let map = solver.solve(&fp, &pm).map_err(|e| e.to_string())?;
    println!("{}", map.ascii_render(48));
    println!(
        "die: min {:.1} C, mean {:.1} C, max {:.1} C",
        kelvin_to_celsius(map.min_k()),
        kelvin_to_celsius(map.mean_k()),
        kelvin_to_celsius(map.max_k())
    );
    println!("\n{:<14} {:>9} {:>9} {:>9}", "block", "min C", "mean C", "max C");
    for b in fp.blocks() {
        let s = map.block_stats(b.rect());
        println!(
            "{:<14} {:>9.1} {:>9.1} {:>9.1}",
            b.name(),
            kelvin_to_celsius(s.min_k),
            kelvin_to_celsius(s.mean_k),
            kelvin_to_celsius(s.max_k)
        );
    }
    Ok(())
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--rho" => opts.rho = value("--rho")?.parse().map_err(|e| format!("--rho: {e}"))?,
            "--grid" => {
                opts.grid = value("--grid")?
                    .parse()
                    .map_err(|e| format!("--grid: {e}"))?
            }
            "--l0" => opts.l0 = value("--l0")?.parse().map_err(|e| format!("--l0: {e}"))?,
            "--target" => {
                opts.target = value("--target")?
                    .parse()
                    .map_err(|e| format!("--target: {e}"))?
            }
            "--mc" => {
                opts.mc_chips = Some(value("--mc")?.parse().map_err(|e| format!("--mc: {e}"))?)
            }
            "--tables" => opts.tables_out = Some(value("--tables")?),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn template(path: &str) -> Result<(), String> {
    let mut spec = ChipSpec::new();
    spec.add_block(
        statobd::core::BlockSpec::new(
            "core",
            60_000.0,
            60_000,
            368.15,
            1.2,
            vec![(0, 0.5), (1, 0.5)],
        )
        .map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    spec.add_block(
        statobd::core::BlockSpec::new("cache", 140_000.0, 140_000, 341.15, 1.2, vec![(12, 1.0)])
            .map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let json = serde_json::to_string_pretty(&spec).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| e.to_string())?;
    println!("wrote example spec to {path}");
    println!(
        "grid indices refer to a {0}x{0} correlation grid (row-major)",
        25
    );
    Ok(())
}

fn report(spec: ChipSpec, opts: &Options) -> Result<(), String> {
    let grid = GridSpec::square_unit(opts.grid).map_err(|e| e.to_string())?;
    let model = ThicknessModelBuilder::new()
        .grid(grid)
        .nominal(params::NOMINAL_THICKNESS_NM)
        .budget(VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM).map_err(|e| e.to_string())?)
        .kernel(CorrelationKernel::Exponential {
            rel_distance: opts.rho,
        })
        .build()
        .map_err(|e| e.to_string())?;
    analyze_with_model(spec, model, opts)
}

fn analyze_with_model(
    spec: ChipSpec,
    model: statobd::variation::ThicknessModel,
    opts: &Options,
) -> Result<(), String> {
    let tech = ClosedFormTech::nominal_45nm();
    let analysis = ChipAnalysis::new(spec, model, &tech).map_err(|e| e.to_string())?;
    println!(
        "design: {} blocks, {} devices, worst block temperature {:.1} C",
        analysis.n_blocks(),
        analysis.spec().total_devices(),
        analysis.spec().max_temperature_k().unwrap_or(0.0) - 273.15
    );

    let bracket = (1e4, 1e13);
    let years = |t: f64| t / 3.156e7;

    let mut fast = StFast::new(
        &analysis,
        StFastConfig {
            l0: opts.l0,
            ..Default::default()
        },
    );
    let start = std::time::Instant::now();
    let t_fast = solve_lifetime(&mut fast, opts.target, bracket).map_err(|e| e.to_string())?;
    println!(
        "st_fast lifetime @ P={:.1e}: {:.3e} s ({:.2} years)  [{:.1} ms]",
        opts.target,
        t_fast,
        years(t_fast),
        start.elapsed().as_secs_f64() * 1e3
    );

    let fit = fit_rate(&mut fast, t_fast).map_err(|e| e.to_string())?;
    let slope = effective_weibull_slope(&mut fast, t_fast).map_err(|e| e.to_string())?;
    println!(
        "at that lifetime: FIT rate {fit:.2} failures/1e9 device-hours, effective Weibull slope {slope:.2}"
    );

    let guard = GuardBand::new(&analysis, GuardBandConfig::default()).map_err(|e| e.to_string())?;
    let t_guard = guard.lifetime(opts.target).map_err(|e| e.to_string())?;
    println!(
        "guard-band corner:            {:.3e} s ({:.2} years)  [{:.0}% pessimistic]",
        t_guard,
        years(t_guard),
        100.0 * (1.0 - t_guard / t_fast)
    );

    if let Some(chips) = opts.mc_chips {
        let start = std::time::Instant::now();
        let mut mc = MonteCarlo::build(
            &analysis,
            MonteCarloConfig {
                n_chips: chips,
                ..Default::default()
            },
        )
        .map_err(|e| e.to_string())?;
        let t_mc = solve_lifetime(&mut mc, opts.target, bracket).map_err(|e| e.to_string())?;
        println!(
            "Monte-Carlo ({chips} chips):     {:.3e} s ({:.2} years)  [{:.1} s; st_fast error {:.2}%]",
            t_mc,
            years(t_mc),
            start.elapsed().as_secs_f64(),
            100.0 * ((t_fast - t_mc) / t_mc).abs()
        );
    }

    if let Some(path) = &opts.tables_out {
        let tables =
            HybridTables::build(&analysis, HybridConfig::default()).map_err(|e| e.to_string())?;
        std::fs::write(path, tables.to_json().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        println!("hybrid lookup tables written to {path}");
    }

    println!("\nper-block contributions at the st_fast lifetime:");
    for (j, block) in analysis.blocks().iter().enumerate() {
        let p = fast
            .block_failure_probability(j, t_fast)
            .map_err(|e| e.to_string())?;
        println!(
            "  {:<12} {:>7.1} C  P_j = {:.3e}",
            block.spec().name(),
            block.spec().temperature_k() - 273.15,
            p
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "template" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            template(path)
        }
        "analyze" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match parse_options(&args[2..]) {
                Ok(opts) => std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {path}: {e}"))
                    .and_then(|json| {
                        serde_json::from_str::<ChipSpec>(&json)
                            .map_err(|e| format!("parsing {path}: {e}"))
                    })
                    .and_then(|spec| report(spec, &opts)),
                Err(e) => Err(e),
            }
        }
        "thermal" => {
            let (Some(fp), Some(pm)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            thermal(fp, pm)
        }
        "bench" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let bench = match name.as_str() {
                "C1" => Benchmark::C1,
                "C2" => Benchmark::C2,
                "C3" => Benchmark::C3,
                "C4" => Benchmark::C4,
                "C5" => Benchmark::C5,
                "C6" => Benchmark::C6,
                "MC16" => Benchmark::ManyCore16,
                other => {
                    eprintln!("unknown benchmark {other}");
                    return usage();
                }
            };
            match parse_options(&args[2..]) {
                Ok(opts) => {
                    let config = DesignConfig {
                        correlation_grid_side: opts.grid,
                        ..DesignConfig::default()
                    };
                    build_design(bench, &config)
                        .map_err(|e| e.to_string())
                        .and_then(|built| {
                            let model = ThicknessModelBuilder::new()
                                .grid(built.grid)
                                .nominal(params::NOMINAL_THICKNESS_NM)
                                .budget(
                                    VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM)
                                        .map_err(|e| e.to_string())?,
                                )
                                .kernel(CorrelationKernel::Exponential {
                                    rel_distance: opts.rho,
                                })
                                .build()
                                .map_err(|e| e.to_string())?;
                            analyze_with_model(built.spec, model, &opts)
                        })
                }
                Err(e) => Err(e),
            }
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
