//! The content-addressed model-artifact cache.
//!
//! Compiling a reliability model is the expensive half of the pipeline:
//! the covariance eigendecomposition, the per-block BLOD moment
//! characterization and (for the hybrid engine) the `(γ, b)` lookup
//! tables. Queries against the compiled model are sub-microsecond. The
//! cache persists the compiled half keyed by
//! [`AnalysisSpec::spec_hash`], so a warm
//! [`Session::open`](crate::Session::open) skips the eigendecomposition
//! and table construction entirely and answers queries bit-identically to
//! a cold build.
//!
//! # On-disk format
//!
//! One two-line file per spec at `<root>/<hash>/artifact.json`: a header
//! object on the first line and the payload object on the second, both
//! compact (single-line) JSON:
//!
//! ```text
//! {"format_version":2,"spec_hash":"<fnv1a-64 hex of the canonical spec>",
//!  "spec":{...canonical spec echo...},"checksum":"<fnv1a-64 hex>"}
//! {"analysis":{...},"tables":{...}}
//! ```
//!
//! The checksum covers the payload line exactly as stored, so validating
//! it is one hash pass over raw bytes — no re-serialization. Large float
//! arrays inside the payload (the model eigenbasis, BLOD moments, hybrid
//! tables) use the packed bit-exact encoding of
//! [`statobd_num::json::pack_f64s`], which is what keeps a warm load an
//! order of magnitude cheaper than a cold build.
//!
//! The load path re-validates everything it can: format version, the
//! requested spec's hash against the stored one, the stored spec echo
//! against the requested spec's canonical JSON (defense against hash
//! collisions), and the payload checksum (detects truncation and bit
//! rot). Any mismatch is a structured [`Error::Artifact`] — never a
//! silently wrong model.
//!
//! The default root is `$STATOBD_CACHE`, falling back to
//! `$HOME/.cache/statobd`.

use crate::error::{Error, Result};
use crate::spec::AnalysisSpec;
use statobd_core::{ChipAnalysis, HybridTables};
use statobd_num::hash::fnv1a_hex;
use statobd_num::json::{FromJson, Json, ToJson};
use std::path::{Path, PathBuf};

/// The artifact format version; bump on any layout change so stale caches
/// are rejected cleanly instead of misparsed. Version 2 introduced the
/// two-line header/payload layout and packed float arrays.
pub const FORMAT_VERSION: u64 = 2;

/// Environment variable overriding the default cache root.
pub const CACHE_ENV: &str = "STATOBD_CACHE";

/// A compiled reliability model: everything expensive, nothing queryable
/// state. The spec that produced it is stored alongside, not inside.
#[derive(Debug)]
pub struct CompiledModel {
    /// The characterized chip (thickness eigenbasis + per-block BLOD
    /// moments).
    pub analysis: ChipAnalysis,
    /// The hybrid `(γ, b)` lookup tables, present only when the spec's
    /// engine is `hybrid`.
    pub tables: Option<HybridTables>,
}

/// A content-addressed on-disk cache of [`CompiledModel`]s.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    root: PathBuf,
}

impl ArtifactCache {
    /// A cache rooted at `root` (created lazily on first save).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ArtifactCache { root: root.into() }
    }

    /// The default root: `$STATOBD_CACHE`, else `$HOME/.cache/statobd`,
    /// else `None` when neither variable is set.
    pub fn default_root() -> Option<PathBuf> {
        if let Some(dir) = std::env::var_os(CACHE_ENV) {
            if !dir.is_empty() {
                return Some(PathBuf::from(dir));
            }
        }
        std::env::var_os("HOME")
            .filter(|h| !h.is_empty())
            .map(|home| PathBuf::from(home).join(".cache").join("statobd"))
    }

    /// Opens the default cache.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when neither `STATOBD_CACHE` nor `HOME` is
    /// set.
    pub fn open_default() -> Result<Self> {
        Self::default_root().map(ArtifactCache::new).ok_or_else(|| {
            Error::Io("no cache root: neither STATOBD_CACHE nor HOME is set".to_string())
        })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The artifact file path for a spec hash.
    pub fn artifact_path(&self, spec_hash: &str) -> PathBuf {
        self.root.join(spec_hash).join("artifact.json")
    }

    /// Whether an artifact file exists for `spec` (without validating it).
    ///
    /// # Errors
    ///
    /// Propagates spec canonicalization failure.
    pub fn contains(&self, spec: &AnalysisSpec) -> Result<bool> {
        Ok(self.artifact_path(&spec.spec_hash()?).exists())
    }

    /// Persists a compiled model for `spec`, returning the artifact path.
    /// The write is atomic (temp file + rename), so a concurrent loader
    /// never observes a half-written artifact.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on filesystem failure and propagates
    /// serialization failure.
    pub fn save(&self, spec: &AnalysisSpec, model: &CompiledModel) -> Result<PathBuf> {
        let hash = spec.spec_hash()?;
        let payload_line = payload_json(model).to_compact();
        let checksum = fnv1a_hex(payload_line.as_bytes());
        let header = Json::Object(vec![
            (
                "format_version".to_string(),
                Json::Number(FORMAT_VERSION as f64),
            ),
            ("spec_hash".to_string(), Json::String(hash.clone())),
            ("spec".to_string(), spec.canonical()?.to_json()),
            ("checksum".to_string(), Json::String(checksum)),
        ]);
        let mut text = header.to_compact();
        text.reserve(payload_line.len() + 2);
        text.push('\n');
        text.push_str(&payload_line);
        text.push('\n');

        let path = self.artifact_path(&hash);
        let dir = path.parent().expect("artifact path has a parent");
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Io(format!("creating {}: {e}", dir.display())))?;
        let tmp = dir.join(format!("artifact.json.tmp.{}", std::process::id()));
        std::fs::write(&tmp, text)
            .map_err(|e| Error::Io(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| Error::Io(format!("renaming {}: {e}", tmp.display())))?;
        Ok(path)
    }

    /// Loads and validates the compiled model for `spec`.
    ///
    /// Returns `Ok(None)` when no artifact exists.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Artifact`] when an artifact exists but fails any
    /// validation step (version, hash, spec echo, checksum, payload
    /// structure), and [`Error::Io`] on filesystem failure.
    pub fn load(&self, spec: &AnalysisSpec) -> Result<Option<CompiledModel>> {
        let hash = spec.spec_hash()?;
        let path = self.artifact_path(&hash);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::Io(format!("reading {}: {e}", path.display()))),
        };
        let bad = |detail: String| Error::Artifact(format!("{}: {detail}", path.display()));

        // Two lines: compact header, compact payload. The header is tiny,
        // so version/hash/spec-echo validation never touches the payload;
        // the checksum is one hash pass over the payload bytes as stored.
        let (header_line, rest) = text
            .split_once('\n')
            .ok_or_else(|| bad("not a two-line artifact (pre-v2 format?)".to_string()))?;
        let payload_line = rest.strip_suffix('\n').unwrap_or(rest);
        let header = Json::parse(header_line)
            .map_err(|e| bad(format!("unparseable header (pre-v2 format?): {e}")))?;
        let version = header
            .get("format_version")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("missing format_version".to_string()))?;
        if version != FORMAT_VERSION as f64 {
            return Err(bad(format!(
                "format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let stored_hash = header
            .get("spec_hash")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing spec_hash".to_string()))?;
        if stored_hash != hash {
            return Err(bad(format!(
                "spec hash mismatch: stored {stored_hash}, requested {hash}"
            )));
        }
        // Defense in depth against a (64-bit) hash collision: the stored
        // canonical spec must match the requested one verbatim.
        let stored_spec = header
            .get("spec")
            .ok_or_else(|| bad("missing spec echo".to_string()))?;
        if stored_spec.to_compact() != spec.canonical_json()? {
            return Err(bad("spec echo differs from the requested spec".to_string()));
        }
        let checksum = header
            .get("checksum")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing checksum".to_string()))?;
        let actual = fnv1a_hex(payload_line.as_bytes());
        if actual != checksum {
            return Err(bad(format!(
                "payload checksum mismatch: stored {checksum}, computed {actual}"
            )));
        }
        let payload =
            Json::parse(payload_line).map_err(|e| bad(format!("unparseable payload: {e}")))?;
        payload_from_json(&payload)
            .map(Some)
            .map_err(|e| bad(format!("payload: {e}")))
    }

    /// Removes the artifact for `spec`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on filesystem failure other than the
    /// artifact not existing.
    pub fn remove(&self, spec: &AnalysisSpec) -> Result<()> {
        let dir = self.root.join(spec.spec_hash()?);
        match std::fs::remove_dir_all(&dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Error::Io(format!("removing {}: {e}", dir.display()))),
        }
    }
}

/// Serializes a compiled model to the artifact payload object.
fn payload_json(model: &CompiledModel) -> Json {
    let mut members = vec![("analysis".to_string(), model.analysis.to_json())];
    if let Some(tables) = &model.tables {
        members.push(("tables".to_string(), tables.to_json_value()));
    }
    Json::Object(members)
}

/// Decodes the artifact payload object.
fn payload_from_json(payload: &Json) -> Result<CompiledModel> {
    let analysis = payload
        .get("analysis")
        .ok_or_else(|| Error::Artifact("missing analysis".to_string()))?;
    let analysis = ChipAnalysis::from_json(analysis)?;
    let tables = match payload.get("tables") {
        Some(tables) => Some(HybridTables::from_json_value(tables)?),
        None => None,
    };
    Ok(CompiledModel { analysis, tables })
}
