//! The facade error type: one enum wrapping every substrate failure plus
//! the facade's own spec/artifact diagnostics, so [`crate::Session`] and
//! [`crate::serve`] callers handle a single error type.

use statobd_circuits::CircuitError;
use statobd_core::CoreError;
use statobd_device::DeviceError;
use statobd_manager::ManagerError;
use statobd_num::json::JsonError;
use statobd_thermal::ThermalError;
use statobd_variation::VariationError;

/// Errors from the facade pipeline (spec → build/load → query).
#[derive(Debug)]
pub enum Error {
    /// The analysis spec itself is invalid.
    Spec(String),
    /// A cached artifact failed validation (version, hash, checksum or
    /// payload structure).
    Artifact(String),
    /// JSON parsing or structural validation failed.
    Json(JsonError),
    /// Filesystem access failed (path included in the message).
    Io(String),
    /// The chip-level reliability engines failed.
    Core(CoreError),
    /// The benchmark construction pipeline failed.
    Circuit(CircuitError),
    /// The variation-model construction failed.
    Variation(VariationError),
    /// The thermal substrate failed.
    Thermal(ThermalError),
    /// The device/technology model rejected its parameters.
    Device(DeviceError),
    /// The dynamic reliability manager failed.
    Manager(ManagerError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Spec(detail) => write!(f, "invalid spec: {detail}"),
            Error::Artifact(detail) => write!(f, "invalid artifact: {detail}"),
            Error::Json(e) => write!(f, "json: {e}"),
            Error::Io(detail) => write!(f, "io: {detail}"),
            Error::Core(e) => write!(f, "{e}"),
            Error::Circuit(e) => write!(f, "{e}"),
            Error::Variation(e) => write!(f, "{e}"),
            Error::Thermal(e) => write!(f, "{e}"),
            Error::Device(e) => write!(f, "{e}"),
            Error::Manager(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Circuit(e) => Some(e),
            Error::Variation(e) => Some(e),
            Error::Thermal(e) => Some(e),
            Error::Device(e) => Some(e),
            Error::Manager(e) => Some(e),
            Error::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<CircuitError> for Error {
    fn from(e: CircuitError) -> Self {
        Error::Circuit(e)
    }
}

impl From<VariationError> for Error {
    fn from(e: VariationError) -> Self {
        Error::Variation(e)
    }
}

impl From<ThermalError> for Error {
    fn from(e: ThermalError) -> Self {
        Error::Thermal(e)
    }
}

impl From<DeviceError> for Error {
    fn from(e: DeviceError) -> Self {
        Error::Device(e)
    }
}

impl From<ManagerError> for Error {
    fn from(e: ManagerError) -> Self {
        Error::Manager(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Error::Json(e)
    }
}

impl From<statobd_num::NumError> for Error {
    fn from(e: statobd_num::NumError) -> Self {
        Error::Core(CoreError::from(e))
    }
}

/// Convenience result alias for the facade.
pub type Result<T> = std::result::Result<T, Error>;
