//! Fleet-scale population simulation: millions of chip instances streamed
//! through a mission profile into constant-memory aggregate statistics.
//!
//! The paper's point is that reliability is a *population* property:
//! process variation makes every die different, so FIT budgets and
//! burn-in decisions are made over distributions, not a single chip. This
//! module samples a fleet of chip instances — wafer position × inter-die
//! principal components (via [`FieldSampler`]) on top of the compiled
//! intra-die model — evaluates each against a [`MissionProfile`], and
//! reduces the population to aggregate statistics through a sharded,
//! constant-memory streaming reducer.
//!
//! # Determinism architecture
//!
//! Three properties combine to make fleet aggregates *bit-identical* at
//! any thread count and independent of the shard layout:
//!
//! 1. **Counter-based RNG streams.** Chip `i` draws from
//!    `base.substream(i)` ([`Xoshiro256pp::substream`]), a pure function
//!    of `(seed, i)` — so a chip's draws never depend on which thread or
//!    shard evaluates it.
//! 2. **Exact-commutative shard accumulators.** Every compared aggregate
//!    is either a `u64` count ([`Histogram1d`]-backed
//!    [`QuantileSketch`]es, exceedance and weakest-block counters) or an
//!    exact `min`/`max` fold; integer addition and f64 min/max are exact
//!    and commutative, so any partitioning of the chip range merges to
//!    the same bits.
//! 3. **Serial index-order reduction.** Shards are evaluated via
//!    [`run_indexed`] (results gathered in shard order) and merged
//!    serially — and because of (2) even the shard *count* cannot change
//!    the merged aggregates.
//!
//! Quantiles are extracted deterministically from the merged counts, so
//! the whole [`FleetAggregates`] value is reproducible bit-for-bit.
//!
//! # Lane tiling
//!
//! The hot path evaluates chips in **lane tiles** of the active
//! `num::simd` width `W` (8 on AVX-512F, 4 on AVX2), lane dimension
//! across chips: each lane still consumes its own `substream(chip)` in
//! the documented draw order (the sampling stays per-lane scalar — the
//! polar method is rejection-based), but the `(u, v)` dot products, the
//! mission-end failure terms and each of the 52 lifetime-bisection steps
//! run `W` chips at once through the lane kernels, with per-lane lo/hi
//! selects and censoring masks. Lane-tile boundaries are absolute
//! multiples of `W` inside the fixed [`TILE_CHIPS`] work tiles
//! (`TILE_CHIPS % 8 == 0`), so a chip's route — and therefore its bits —
//! is a pure function of `(chip, chips, W)`, never of the shard layout:
//! the bit-identity guarantees above hold per fixed width. Width 1 and
//! the ragged tail at `chips` route through the scalar reference path
//! [`CompiledFleet::evaluate_chip`]; tiled and scalar outcomes agree to
//! ≤ 1e-12 relative per chip (enforced by `tests/fleet_consistency.rs`).
//!
//! Redundancy-grouped runs ([`FleetConfig::spares`] > 0, or an analysis
//! carrying a non-trivial [`Composition`]) force the scalar route for
//! *every* chip — the fused lane kernels hard-code the weakest-link
//! sum — so grouped aggregates are additionally bit-identical across
//! lane widths, not just per fixed width.
//!
//! # Constant-memory guarantee
//!
//! The hot path is allocation-free per chip: each shard allocates one
//! reusable [`Workspace`] (principal-component and per-block scratch
//! buffers) up front and every chip reuses it. The number of workspaces
//! actually created is reported in
//! [`FleetReport::workspaces_created`] and asserted (≤ shard count) by
//! the `fleet` bench binary.
//!
//! [`FieldSampler`]: statobd_variation::FieldSampler
//! [`MissionProfile`]: statobd_manager::MissionProfile
//! [`Xoshiro256pp::substream`]: statobd_num::rng::Xoshiro256pp::substream
//! [`Histogram1d`]: statobd_num::hist::Histogram1d
//! [`QuantileSketch`]: statobd_num::stats::QuantileSketch
//! [`run_indexed`]: statobd_num::parallel::run_indexed

use crate::error::{Error, Result};
use statobd_core::{
    conditional_block_failure, params, ChipAnalysis, Composition, CompositionAccumulator,
    GCoefficients,
};
use statobd_device::ObdTechnology;
use statobd_manager::MissionProfile;
use statobd_num::impl_json_struct;
use statobd_num::parallel::{resolve_threads, run_indexed};
use statobd_num::rng::{Rng, Xoshiro256pp};
use statobd_num::simd::{self, LaneWidth};
use statobd_num::stats::QuantileSketch;
use statobd_variation::{FieldSampler, SystematicPattern, ThicknessModel};
use std::sync::atomic::{AtomicU64, Ordering};

/// Chips per work tile. Shards own contiguous tile ranges; the tile size
/// is a fixed constant so the chip → shard assignment depends only on the
/// shard count — and per-chip results depend on neither (substream RNG).
/// A multiple of every lane width (8, 4, 1), so lane tiles never straddle
/// a work-tile boundary and their start positions are absolute multiples
/// of the width regardless of the shard layout.
const TILE_CHIPS: u64 = 256;

/// Quantile levels reported for the lifetime / FIT / mission-probability
/// distributions.
pub const QUANTILE_LEVELS: [f64; 8] = [0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999];

/// Lifetime solve bracket (seconds): generous enough for any physical
/// fleet member; chips whose budget-crossing falls outside are counted
/// as censored at the edge.
pub const LIFE_BRACKET_S: (f64, f64) = (1e2, 1e16);

/// Bisection iterations for the per-chip lifetime solve on `x = ln t`.
/// 52 halvings of the ~32-wide bracket reach f64 resolution.
const LIFE_BISECTIONS: u32 = 52;

/// Log₁₀-seconds layout of the lifetime quantile sketch (0.05 decades per
/// bin).
const LIFE_SKETCH: (f64, f64, usize) = (2.0, 16.0, 280);

/// Log₁₀ layout of the mission failure-probability sketch.
const P_SKETCH: (f64, f64, usize) = (-30.0, 0.0, 240);

/// Configuration of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of chip instances to sample (10⁵–10⁷ is the target regime).
    pub chips: u64,
    /// The mission profile every chip is evaluated against.
    pub profile: MissionProfile,
    /// Root seed of the per-chip substream family.
    pub seed: u64,
    /// Mission-end failure-probability budget: chips above it count as
    /// exceedances, and the per-chip lifetime is the age at which the
    /// chip's failure probability reaches it.
    pub budget: f64,
    /// Wafer-level systematic thickness pattern, sampled at a uniform
    /// wafer position per chip; the offset shifts the die-mean oxide
    /// thickness. [`SystematicPattern::None`] disables wafer variation.
    pub wafer: SystematicPattern,
    /// Worker threads (`None` = `STATOBD_THREADS`, then all cores).
    pub threads: Option<usize>,
    /// Shard count (`None` = the resolved thread count). Aggregates are
    /// bit-identical for any value; this knob exists for testing that
    /// claim and for tuning reduction granularity.
    pub shards: Option<usize>,
    /// Spare budget for redundancy-aware composition: `0` inherits the
    /// analysis's own [`Composition`]; `s > 0` overrides it with a
    /// single k-out-of-n group spanning every block that tolerates `s`
    /// block failures before the chip fails. Grouped runs route every
    /// chip through the scalar reference path (the lane-tiled kernels
    /// are weakest-link only), so aggregates stay bit-identical at any
    /// lane width as well as any thread/shard layout.
    pub spares: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            chips: 100_000,
            profile: MissionProfile::datacenter(),
            seed: 42,
            budget: params::ONE_PER_MILLION,
            wafer: SystematicPattern::Bowl {
                depth: 0.02,
                center: (0.5, 0.5),
            },
            threads: None,
            shards: None,
            spares: 0,
        }
    }
}

impl FleetConfig {
    /// Validates the scalar knobs (the profile validates at compile time
    /// against the chip's block count).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Spec`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.chips == 0 {
            return Err(Error::Spec(
                "chips: the fleet needs at least one chip".to_string(),
            ));
        }
        if self.shards == Some(0) {
            return Err(Error::Spec("shards: need at least one shard".to_string()));
        }
        if self.threads == Some(0) {
            return Err(Error::Spec(
                "threads: need at least one worker thread".to_string(),
            ));
        }
        if !(self.budget > 0.0 && self.budget < 1.0) {
            return Err(Error::Spec(format!(
                "budget: failure-probability budget must be in (0, 1), got {}",
                self.budget
            )));
        }
        Ok(())
    }
}

/// Per-block mission constants, precomputed once per run.
///
/// The damage identity makes this possible: a block's failure probability
/// depends on its stress history only through `γ = ln ξ` with
/// `ξ = Σ Δt/α(T, V)` — which is *chip-independent* (temperatures and
/// voltages come from the spec and profile, not the thickness draw). So
/// one serial pass over the profile reduces every mission to a handful of
/// per-block constants, and the per-chip hot path never touches the
/// technology model.
#[derive(Debug, Clone)]
struct BlockMission {
    /// `g`-kernel coefficients divided by the thickness moments: at
    /// mission end, `ln g = γ_mission·b_eff·u + ½·γ_mission²·b_eff²·v`.
    coeff_mission: GCoefficients,
    /// `ln(ξ_mission / D)`: under steady mission repetition the block's
    /// effective age is `ξ(t) = t·ξ_mission/D`, so `γ(t) = ln_rate + ln t`.
    ln_rate: f64,
    /// Time-weighted effective thickness slope `b` over the mission.
    b_eff: f64,
    /// Block area `A_j`.
    area: f64,
}

/// A fleet compiled against one chip analysis: per-block mission
/// constants plus everything the per-chip evaluation needs.
#[derive(Debug)]
struct CompiledFleet<'a> {
    analysis: &'a ChipAnalysis,
    blocks: Vec<BlockMission>,
    /// Flat `(ln_rate, area, x_small, x_sat)` quad per block — the
    /// parameter layout of the fused [`simd::ln_surv_tile_sum`]
    /// bisection kernel, with the regime-screen thresholds precomputed
    /// once per compile.
    block_params: Vec<f64>,
    base_rng: Xoshiro256pp,
    wafer: SystematicPattern,
    budget: f64,
    /// `ln(1 − budget)`: the log-survival threshold of the lifetime solve.
    ln1p_neg_budget: f64,
    /// How block failures compose into chip failure: the analysis's own
    /// composition, or the [`FleetConfig::spares`] override. Non-trivial
    /// groups force the scalar dispatch (see [`CompiledFleet::width`]).
    composition: Composition,
}

/// Per-shard scratch buffers, allocated once and reused by every chip the
/// shard evaluates (the constant-memory guarantee).
#[derive(Debug)]
struct Workspace<'a> {
    /// The shard's thickness-field sampler, hoisted out of the per-chip
    /// loop and [`FieldSampler::reset`] per chip — so the hot path runs
    /// no constructor at all.
    sampler: FieldSampler<'a>,
    /// Principal-component draw of the current chip (scalar path).
    z: Vec<f64>,
    /// Per-block `b_eff·u` of the current chip (scalar path).
    bu: Vec<f64>,
    /// Per-block `b_eff²·v` of the current chip (scalar path).
    bbv: Vec<f64>,
    /// SoA principal-component tile: `z_tile[k·W + w]` is component `k`
    /// of the tile's lane-`w` chip.
    z_tile: Vec<f64>,
    /// Per-`[block][lane]` `b_eff·u` of the current tile.
    tile_bu: Vec<f64>,
    /// Per-`[block][lane]` `b_eff²·v` of the current tile.
    tile_bbv: Vec<f64>,
    /// The chip-level composition accumulator, reset per chip (and per
    /// bisection step) — the hot path never allocates group state.
    chip_acc: CompositionAccumulator,
}

impl<'a> Workspace<'a> {
    fn new(
        model: &'a ThicknessModel,
        n_components: usize,
        n_blocks: usize,
        lanes: usize,
        composition: &Composition,
        created: &AtomicU64,
    ) -> Self {
        created.fetch_add(1, Ordering::Relaxed);
        Workspace {
            sampler: FieldSampler::new(model),
            z: vec![0.0; n_components],
            bu: vec![0.0; n_blocks],
            bbv: vec![0.0; n_blocks],
            z_tile: vec![0.0; n_components * lanes],
            tile_bu: vec![0.0; n_blocks * lanes],
            tile_bbv: vec![0.0; n_blocks * lanes],
            chip_acc: composition.accumulator(n_blocks),
        }
    }
}

/// The outcome of one chip's mission evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipOutcome {
    /// Chip failure probability at mission end, composed through the
    /// chip's [`Composition`] (weakest-link, or k-out-of-n redundancy
    /// groups with spares).
    pub p_mission: f64,
    /// Index of the block with the largest mission-end failure
    /// probability (ties resolve to the lowest index; see
    /// [`update_weakest`] for the full tie/NaN rule).
    pub weakest_block: usize,
    /// Age (seconds) at which the chip's failure probability reaches the
    /// budget, under steady mission repetition; clamped to the solve
    /// bracket when censored.
    pub lifetime_s: f64,
    /// The chip already exceeds the budget at the bracket's low edge.
    pub censored_low: bool,
    /// The chip never reaches the budget inside the bracket.
    pub censored_high: bool,
}

/// One shard's streaming accumulators. Every field is exact-commutative
/// under merge (integer counts, f64 min/max), which is what makes the
/// reduction independent of the shard layout.
#[derive(Debug)]
struct ShardAcc {
    chips: u64,
    exceed_budget: u64,
    censored_low: u64,
    censored_high: u64,
    weakest: Vec<u64>,
    life_sketch: QuantileSketch,
    p_sketch: QuantileSketch,
    lifetime_min_s: f64,
    lifetime_max_s: f64,
    p_min: f64,
    p_max: f64,
}

impl ShardAcc {
    fn new(n_blocks: usize) -> Result<Self> {
        Ok(ShardAcc {
            chips: 0,
            exceed_budget: 0,
            censored_low: 0,
            censored_high: 0,
            weakest: vec![0; n_blocks],
            life_sketch: QuantileSketch::new(LIFE_SKETCH.0, LIFE_SKETCH.1, LIFE_SKETCH.2)?,
            p_sketch: QuantileSketch::new(P_SKETCH.0, P_SKETCH.1, P_SKETCH.2)?,
            lifetime_min_s: f64::INFINITY,
            lifetime_max_s: f64::NEG_INFINITY,
            p_min: f64::INFINITY,
            p_max: f64::NEG_INFINITY,
        })
    }

    fn absorb(&mut self, outcome: &ChipOutcome, budget: f64) {
        self.chips += 1;
        if outcome.p_mission > budget {
            self.exceed_budget += 1;
        }
        self.censored_low += u64::from(outcome.censored_low);
        self.censored_high += u64::from(outcome.censored_high);
        self.weakest[outcome.weakest_block] += 1;
        self.life_sketch.add(outcome.lifetime_s.log10());
        // Sub-normal-proof: a fully underflowed p lands in the sketch's
        // below-range mass and reports as the (clamped) minimum.
        self.p_sketch
            .add(outcome.p_mission.max(f64::MIN_POSITIVE).log10());
        self.lifetime_min_s = self.lifetime_min_s.min(outcome.lifetime_s);
        self.lifetime_max_s = self.lifetime_max_s.max(outcome.lifetime_s);
        self.p_min = self.p_min.min(outcome.p_mission);
        self.p_max = self.p_max.max(outcome.p_mission);
    }

    fn merge(&mut self, other: &ShardAcc) -> Result<()> {
        self.chips += other.chips;
        self.exceed_budget += other.exceed_budget;
        self.censored_low += other.censored_low;
        self.censored_high += other.censored_high;
        for (w, &o) in self.weakest.iter_mut().zip(&other.weakest) {
            *w += o;
        }
        self.life_sketch.merge(&other.life_sketch)?;
        self.p_sketch.merge(&other.p_sketch)?;
        self.lifetime_min_s = self.lifetime_min_s.min(other.lifetime_min_s);
        self.lifetime_max_s = self.lifetime_max_s.max(other.lifetime_max_s);
        self.p_min = self.p_min.min(other.p_min);
        self.p_max = self.p_max.max(other.p_max);
        Ok(())
    }
}

/// The deterministic aggregate statistics of one fleet run.
///
/// Every field is a pure function of `(analysis, tech, chips, profile,
/// seed, budget, wafer)` — bit-identical at any thread count and for any
/// shard layout. The bench binary and the consistency tests compare the
/// compact-JSON rendering of this struct across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAggregates {
    /// Fleet size.
    pub chips: u64,
    /// Mission profile name.
    pub profile: String,
    /// Root RNG seed.
    pub seed: u64,
    /// Failure-probability budget.
    pub budget: f64,
    /// Mission duration (seconds).
    pub mission_s: f64,
    /// Chips whose mission-end failure probability exceeds the budget.
    pub exceed_budget: u64,
    /// Chips already over budget at the bracket's low edge (10² s).
    pub censored_low: u64,
    /// Chips that never reach the budget inside the bracket (10¹⁶ s).
    pub censored_high: u64,
    /// Block names, in chip block order.
    pub block_names: Vec<String>,
    /// Per-block count of chips for which that block is the weakest.
    pub weakest_counts: Vec<u64>,
    /// The quantile levels the distributions are reported at.
    pub quantile_levels: Vec<f64>,
    /// Budget-lifetime quantiles (seconds) at `quantile_levels`.
    pub lifetime_quantiles_s: Vec<f64>,
    /// Mission-end failure-probability quantiles at `quantile_levels`.
    pub p_mission_quantiles: Vec<f64>,
    /// Mission-average FIT quantiles (failures per 10⁹ chip-hours)
    /// at `quantile_levels` — `p_q · 10⁹ / mission_hours`.
    pub fit_quantiles: Vec<f64>,
    /// Exact minimum budget-lifetime (seconds).
    pub lifetime_min_s: f64,
    /// Exact maximum budget-lifetime (seconds).
    pub lifetime_max_s: f64,
    /// Exact minimum mission-end failure probability.
    pub p_mission_min: f64,
    /// Exact maximum mission-end failure probability.
    pub p_mission_max: f64,
}

impl_json_struct!(FleetAggregates {
    chips,
    profile,
    seed,
    budget,
    mission_s,
    exceed_budget,
    censored_low,
    censored_high,
    block_names,
    weakest_counts,
    quantile_levels,
    lifetime_quantiles_s,
    p_mission_quantiles,
    fit_quantiles,
    lifetime_min_s,
    lifetime_max_s,
    p_mission_min,
    p_mission_max,
});

/// A fleet run's full report: the deterministic aggregates plus run
/// metadata (thread/shard layout, wall time, throughput) that is *not*
/// part of the bit-compared surface.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The deterministic aggregate statistics.
    pub aggregates: FleetAggregates,
    /// Resolved worker-thread count.
    pub threads: u64,
    /// Resolved shard count.
    pub shards: u64,
    /// SIMD lane dispatch active during the run, e.g.
    /// `"8 lanes (avx512f, default)"` (see [`simd::dispatch_label`]).
    pub lanes: String,
    /// Chips evaluated per lane tile (1 = the scalar reference path).
    pub lane_width: u64,
    /// Full lane tiles evaluated through the tiled path; the ragged tail
    /// at the fleet end and width-1 runs go through the scalar path.
    pub lane_tiles: u64,
    /// Wall time of the evaluation+reduction (seconds).
    pub run_s: f64,
    /// Headline throughput: chips evaluated per second.
    pub chips_per_s: f64,
    /// Workspaces allocated during the run — the constant-memory check:
    /// must never exceed the shard count.
    pub workspaces_created: u64,
}

impl_json_struct!(FleetReport {
    aggregates,
    threads,
    shards,
    lanes,
    lane_width,
    lane_tiles,
    run_s,
    chips_per_s,
    workspaces_created,
});

/// Compiles the per-block mission constants.
fn compile_fleet<'a>(
    analysis: &'a ChipAnalysis,
    tech: &dyn ObdTechnology,
    config: &FleetConfig,
) -> Result<CompiledFleet<'a>> {
    config.validate()?;
    let spec = analysis.spec();
    let mission_s = config.profile.mission_s();
    // Resolve and validate every phase against this design up front so a
    // bad profile/design pairing fails with a named phase, not NaNs.
    for phase_spec in config.profile.phases() {
        phase_spec.resolve(spec).validate(spec.n_blocks())?;
    }
    let blocks: Vec<BlockMission> = analysis
        .blocks()
        .iter()
        .map(|block| {
            let t_spec = block.spec().temperature_k();
            let mut xi = 0.0;
            let mut t_weighted = 0.0;
            for phase in config.profile.phases() {
                let t_k = t_spec + phase.dt_k;
                xi += phase.duration_s / tech.alpha(t_k, phase.vdd_v);
                t_weighted += phase.duration_s * t_k;
            }
            let b_eff = tech.b(t_weighted / mission_s);
            let gamma_mission = xi.ln();
            BlockMission {
                coeff_mission: GCoefficients::from_gamma(gamma_mission, b_eff),
                ln_rate: (xi / mission_s).ln(),
                b_eff,
                area: block.spec().area(),
            }
        })
        .collect();
    let block_params = blocks
        .iter()
        .flat_map(|m| {
            [
                m.ln_rate,
                m.area,
                simd::failure_poly_threshold(m.area),
                simd::failure_sat_threshold(m.area),
            ]
        })
        .collect();
    let composition = if config.spares > 0 {
        let c = Composition::uniform_spares(analysis.n_blocks(), config.spares);
        c.validate(analysis.n_blocks())?;
        c
    } else {
        analysis.composition().clone()
    };
    Ok(CompiledFleet {
        analysis,
        blocks,
        block_params,
        base_rng: Xoshiro256pp::seed_from_u64(config.seed),
        wafer: config.wafer,
        budget: config.budget,
        ln1p_neg_budget: (-config.budget).ln_1p(),
        composition,
    })
}

/// Updates the running weakest-block argmax with block `j`'s mission-end
/// failure probability `p` — the single definition shared by the scalar
/// and lane-tiled paths.
///
/// The rule, made explicit: the strict `>` against a `−∞` seed means
/// **ties resolve to the lowest block index** (a later equal `p` never
/// displaces the incumbent), and a **NaN `p` never wins** (every
/// comparison against NaN is false) — so a chip whose blocks all produce
/// NaN deterministically reports block 0, the seed incumbent.
#[inline]
fn update_weakest(j: usize, p: f64, weakest_block: &mut usize, weakest_p: &mut f64) {
    if p > *weakest_p {
        *weakest_p = p;
        *weakest_block = j;
    }
}

impl CompiledFleet<'_> {
    /// The lane dispatch this fleet runs at: the active `num::simd`
    /// width under weakest-link composition, forced to the scalar
    /// reference path ([`LaneWidth::W1`]) when redundancy groups are in
    /// play — the fused bisection/failure-term kernels hard-code the
    /// weakest-link sum, and forcing one route keeps grouped aggregates
    /// bit-identical at every build's active width.
    fn width(&self) -> LaneWidth {
        if self.composition.is_weakest_link() {
            simd::active_width()
        } else {
            LaneWidth::W1
        }
    }

    /// Evaluates chip `chip` into `ws`, allocation-free — the scalar
    /// reference path (lane width 1 and the ragged tail tile).
    fn evaluate_chip(&self, chip: u64, ws: &mut Workspace<'_>) -> ChipOutcome {
        let mut rng = self.base_rng.substream(chip);
        // Draw order is part of the contract (the consistency test
        // replays it): wafer position first, then the principal
        // components. The shard sampler is reset per chip — draw-for-draw
        // identical to a fresh sampler, with no per-chip constructor.
        let x = rng.gen_range(0.0..1.0);
        let y = rng.gen_range(0.0..1.0);
        let offset = self.wafer.offset(x, y);
        ws.sampler.reset();
        ws.sampler.sample_z_into(&mut rng, &mut ws.z);

        // Mission-end failure probability — composed through the chip's
        // redundancy structure (the weakest-link accumulator variant
        // reproduces the historical `Σ ln(1 − p)` bits verbatim) — and
        // the per-block (b·u, b²·v) cache for the lifetime solve. The
        // accumulators and scratch live in disjoint workspace fields.
        let chip_acc = &mut ws.chip_acc;
        let (bu, bbv) = (&mut ws.bu, &mut ws.bbv);
        chip_acc.reset();
        let mut weakest_block = 0usize;
        let mut weakest_p = f64::NEG_INFINITY;
        for (j, (block, mission)) in self.analysis.blocks().iter().zip(&self.blocks).enumerate() {
            let (u, v) = block.moments().uv_given_z(&ws.z);
            // A uniform die-mean thickness shift moves the block mean
            // one-for-one and leaves the within-block spread unchanged.
            let u = u + offset;
            bu[j] = mission.b_eff * u;
            bbv[j] = mission.b_eff * mission.b_eff * v;
            let p = conditional_block_failure(mission.area, mission.coeff_mission.g(u, v));
            chip_acc.absorb(j, p);
            update_weakest(j, p, &mut weakest_block, &mut weakest_p);
        }
        let p_mission = chip_acc.failure_probability();

        // Budget lifetime under steady mission repetition:
        // γ_j(t) = ln_rate_j + ln t, so on x = ln t the chip log-survival
        // ln S(x) = Σ_group ln S_group(x) is monotone decreasing (more
        // time never helps any block); bisect for ln S(x) = ln(1 − budget).
        // Weakest-link degenerates to the historical Σ_j ln(1 − p_j(x))
        // with the same accumulation order and bits.
        let mut ln_surv = |x: f64| {
            chip_acc.reset();
            for (j, mission) in self.blocks.iter().enumerate() {
                let gamma = mission.ln_rate + x;
                let ln_g = gamma * bu[j] + 0.5 * gamma * gamma * bbv[j];
                let p = -(-mission.area * ln_g.exp()).exp_m1();
                chip_acc.absorb(j, p);
            }
            chip_acc.ln_survival()
        };
        let (mut lo, mut hi) = (LIFE_BRACKET_S.0.ln(), LIFE_BRACKET_S.1.ln());
        let mut censored_low = false;
        let mut censored_high = false;
        let lifetime_s = if ln_surv(lo) <= self.ln1p_neg_budget {
            censored_low = true;
            LIFE_BRACKET_S.0
        } else if ln_surv(hi) > self.ln1p_neg_budget {
            censored_high = true;
            LIFE_BRACKET_S.1
        } else {
            for _ in 0..LIFE_BISECTIONS {
                let mid = 0.5 * (lo + hi);
                if ln_surv(mid) <= self.ln1p_neg_budget {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            (0.5 * (lo + hi)).exp()
        };
        ChipOutcome {
            p_mission,
            weakest_block,
            lifetime_s,
            censored_low,
            censored_high,
        }
    }

    /// Evaluates the chip range `[chip_lo, chip_hi)` through the active
    /// lane dispatch, feeding each outcome to `sink` in chip order and
    /// returning the number of full lane tiles evaluated.
    ///
    /// Width 1 routes every chip through the scalar reference path
    /// ([`CompiledFleet::evaluate_chip`]) — bit-identical to the
    /// pre-tiling code by construction. At widths 4/8 full `W`-chip tiles
    /// go through [`CompiledFleet::evaluate_tile`]; the ragged tail
    /// (fewer than `W` chips at the range end) falls back to the scalar
    /// path. Callers pass work-tile ranges aligned to [`TILE_CHIPS`], so
    /// tails only occur at the fleet end and tile membership is a pure
    /// function of `(chip, chips, W)`.
    fn evaluate_range(
        &self,
        chip_lo: u64,
        chip_hi: u64,
        width: LaneWidth,
        ws: &mut Workspace<'_>,
        sink: &mut impl FnMut(ChipOutcome),
    ) -> u64 {
        match width {
            LaneWidth::W1 => {
                for chip in chip_lo..chip_hi {
                    sink(self.evaluate_chip(chip, ws));
                }
                0
            }
            LaneWidth::W4 => self.evaluate_range_tiled::<4>(chip_lo, chip_hi, ws, sink),
            LaneWidth::W8 => self.evaluate_range_tiled::<8>(chip_lo, chip_hi, ws, sink),
        }
    }

    fn evaluate_range_tiled<const W: usize>(
        &self,
        chip_lo: u64,
        chip_hi: u64,
        ws: &mut Workspace<'_>,
        sink: &mut impl FnMut(ChipOutcome),
    ) -> u64 {
        let n = chip_hi.saturating_sub(chip_lo);
        let full = n - n % W as u64;
        let mut tiles = 0;
        let mut chip = chip_lo;
        while chip < chip_lo + full {
            for outcome in self.evaluate_tile::<W>(chip, ws) {
                sink(outcome);
            }
            tiles += 1;
            chip += W as u64;
        }
        for chip in chip_lo + full..chip_hi {
            sink(self.evaluate_chip(chip, ws));
        }
        tiles
    }

    /// Evaluates the `W` chips `chip0..chip0 + W` as one lane tile:
    /// per-lane scalar sampling (the substream draw-order contract), then
    /// `(u, v)` dot products, mission-end failure terms and the
    /// lane-parallel masked lifetime bisection across all `W` chips at
    /// once. Agrees with [`CompiledFleet::evaluate_chip`] to ≤ 1e-12
    /// relative per chip (the lane kernels' error budget).
    fn evaluate_tile<const W: usize>(
        &self,
        chip0: u64,
        ws: &mut Workspace<'_>,
    ) -> [ChipOutcome; W] {
        // The fused lane kernels hard-code the weakest-link composition;
        // grouped runs are routed to width 1 by [`CompiledFleet::width`].
        debug_assert!(self.composition.is_weakest_link());
        // Sampling stays per-lane scalar — the polar method is
        // rejection-based, so each lane consumes exactly the substream
        // draws its chip would consume on the scalar path.
        let mut offsets = [0.0; W];
        for (w, offset) in offsets.iter_mut().enumerate() {
            let mut rng = self.base_rng.substream(chip0 + w as u64);
            let x = rng.gen_range(0.0..1.0);
            let y = rng.gen_range(0.0..1.0);
            *offset = self.wafer.offset(x, y);
            ws.sampler.reset();
            ws.sampler.sample_z_lane(&mut rng, &mut ws.z_tile, W, w);
        }

        // Mission end: (u, v) lane dots per block, the failure term for
        // all W chips through the fused kernel, per-lane weakest link.
        let mut u = [0.0; W];
        let mut v = [0.0; W];
        let mut args = [0.0; W];
        let mut p = [0.0; W];
        let mut ln_survival = [0.0; W];
        let mut weakest_p = [f64::NEG_INFINITY; W];
        let mut weakest_block = [0usize; W];
        for (j, (block, mission)) in self.analysis.blocks().iter().zip(&self.blocks).enumerate() {
            block
                .moments()
                .uv_given_z_tile::<W>(&ws.z_tile, &mut u, &mut v);
            for w in 0..W {
                let uw = u[w] + offsets[w];
                ws.tile_bu[j * W + w] = mission.b_eff * uw;
                ws.tile_bbv[j * W + w] = mission.b_eff * mission.b_eff * v[w];
                args[w] = mission.coeff_mission.s1 * uw + mission.coeff_mission.s2 * v[w];
            }
            simd::failure_term_slice(&args, mission.area, &mut p);
            for w in 0..W {
                // Same composition as WeakestLink::absorb; the argmax
                // applies [`update_weakest`]'s documented tie/NaN rule,
                // exactly like the scalar path.
                ln_survival[w] += (-p[w].clamp(0.0, 1.0)).ln_1p();
                update_weakest(j, p[w], &mut weakest_block[w], &mut weakest_p[w]);
            }
        }

        // Censoring masks from the bracket edges, with the scalar path's
        // precedence: a low-censored lane never reports high censoring.
        let target = self.ln1p_neg_budget;
        let lo_edge = [LIFE_BRACKET_S.0.ln(); W];
        let hi_edge = [LIFE_BRACKET_S.1.ln(); W];
        let mut s = [0.0; W];
        self.ln_surv_tile::<W>(&lo_edge, ws, &mut s);
        let censored_low = simd::lane_le::<W>(&s, target);
        self.ln_surv_tile::<W>(&hi_edge, ws, &mut s);
        let reaches_budget = simd::lane_le::<W>(&s, target);
        let mut active = [false; W];
        let mut censored_high = [false; W];
        for w in 0..W {
            censored_high[w] = !censored_low[w] && !reaches_budget[w];
            active[w] = !censored_low[w] && !censored_high[w];
        }

        // Lane-parallel masked bisection: every step evaluates ln S for
        // all W chips at once; per-lane selects move each lane's own
        // bracket. Censored lanes ride along harmlessly (their bracket
        // converges somewhere, but the censored edge wins below); if the
        // whole tile is censored the 52 steps are skipped. The whole
        // solve is one dispatched kernel call so the brackets stay in
        // registers across steps — see [`simd::ln_surv_bisect`].
        let mut lo = lo_edge;
        let mut hi = hi_edge;
        if simd::lane_any::<W>(&active) {
            let n = self.blocks.len() * W;
            simd::ln_surv_bisect::<W>(
                &mut lo,
                &mut hi,
                target,
                LIFE_BISECTIONS,
                &self.block_params,
                &ws.tile_bu[..n],
                &ws.tile_bbv[..n],
            );
        }

        let mut out = [ChipOutcome {
            p_mission: 0.0,
            weakest_block: 0,
            lifetime_s: 0.0,
            censored_low: false,
            censored_high: false,
        }; W];
        for w in 0..W {
            let lifetime_s = if censored_low[w] {
                LIFE_BRACKET_S.0
            } else if censored_high[w] {
                LIFE_BRACKET_S.1
            } else {
                (0.5 * (lo[w] + hi[w])).exp()
            };
            out[w] = ChipOutcome {
                p_mission: -ln_survival[w].exp_m1(),
                weakest_block: weakest_block[w],
                lifetime_s,
                censored_low: censored_low[w],
                censored_high: censored_high[w],
            };
        }
        out
    }

    /// The tile log-survival `s[w] = ln S_w(x[w])` at per-lane ages
    /// `x = ln t`, through the fused lane `exp`/`exp_m1`/`ln_1p` kernel
    /// over the `[block][lane]` scratch — the lane-width form of the
    /// scalar path's `ln_surv` closure, same op order per element and
    /// block-sequential per-lane sums (the scalar accumulation order),
    /// so lane and scalar ln S differ only by the kernels' elementwise
    /// rounding. One dispatched call per bisection step; see
    /// [`simd::ln_surv_tile_sum`] for why fusion matters on the
    /// `n_blocks·W`-element tiles this produces.
    fn ln_surv_tile<const W: usize>(&self, x: &[f64; W], ws: &mut Workspace<'_>, s: &mut [f64; W]) {
        let n = self.blocks.len() * W;
        simd::ln_surv_tile_sum::<W>(
            x,
            &self.block_params,
            &ws.tile_bu[..n],
            &ws.tile_bbv[..n],
            s,
        );
    }
}

/// Runs a fleet: samples `config.chips` chip instances, evaluates each
/// against the mission profile, and reduces to [`FleetAggregates`]
/// through the sharded constant-memory reducer.
///
/// # Errors
///
/// Returns [`Error::Spec`] for a degenerate configuration and propagates
/// profile-resolution failures.
pub fn run_fleet(
    analysis: &ChipAnalysis,
    tech: &dyn ObdTechnology,
    config: &FleetConfig,
) -> Result<FleetReport> {
    let start = std::time::Instant::now();
    let compiled = compile_fleet(analysis, tech, config)?;
    let threads = resolve_threads(config.threads);
    let n_tiles = config.chips.div_ceil(TILE_CHIPS);
    let shards = config
        .shards
        .unwrap_or(threads)
        .max(1)
        .min(n_tiles.max(1) as usize);
    let n_blocks = analysis.n_blocks();
    let model = analysis.model();
    let n_components = model.n_components();
    let workspaces_created = AtomicU64::new(0);
    let lane_tiles = AtomicU64::new(0);
    // Captured once so every shard runs the same dispatch even if a
    // concurrent force_width lands mid-run (and so grouped runs hold
    // the scalar route everywhere).
    let width = compiled.width();

    // Shard s owns the contiguous tile range [s·T/S, (s+1)·T/S).
    let shard_results: Vec<Result<ShardAcc>> = run_indexed(shards, threads, |s| {
        let mut acc = ShardAcc::new(n_blocks)?;
        let mut ws = Workspace::new(
            model,
            n_components,
            n_blocks,
            width.lanes(),
            &compiled.composition,
            &workspaces_created,
        );
        let tile_lo = n_tiles * s as u64 / shards as u64;
        let tile_hi = n_tiles * (s as u64 + 1) / shards as u64;
        let mut shard_lane_tiles = 0;
        for tile in tile_lo..tile_hi {
            let chip_lo = tile * TILE_CHIPS;
            let chip_hi = (chip_lo + TILE_CHIPS).min(config.chips);
            shard_lane_tiles +=
                compiled.evaluate_range(chip_lo, chip_hi, width, &mut ws, &mut |outcome| {
                    acc.absorb(&outcome, compiled.budget);
                });
        }
        lane_tiles.fetch_add(shard_lane_tiles, Ordering::Relaxed);
        Ok(acc)
    });

    // Serial merge in shard order. (Order is irrelevant for the result —
    // the accumulators are exact-commutative — but keeping it fixed makes
    // that claim testable rather than assumed.)
    let mut merged = ShardAcc::new(n_blocks)?;
    for shard in shard_results {
        merged.merge(&shard?)?;
    }
    debug_assert_eq!(merged.chips, config.chips);

    let mission_s = config.profile.mission_s();
    let mission_hours = config.profile.mission_hours();
    let mut lifetime_quantiles_s = Vec::with_capacity(QUANTILE_LEVELS.len());
    let mut p_mission_quantiles = Vec::with_capacity(QUANTILE_LEVELS.len());
    let mut fit_quantiles = Vec::with_capacity(QUANTILE_LEVELS.len());
    for &q in &QUANTILE_LEVELS {
        lifetime_quantiles_s.push(10f64.powf(merged.life_sketch.quantile(q).map_err(Error::from)?));
        let p_q = 10f64.powf(merged.p_sketch.quantile(q).map_err(Error::from)?);
        p_mission_quantiles.push(p_q);
        fit_quantiles.push(p_q * 1e9 / mission_hours);
    }
    let aggregates = FleetAggregates {
        chips: config.chips,
        profile: config.profile.name().to_string(),
        seed: config.seed,
        budget: config.budget,
        mission_s,
        exceed_budget: merged.exceed_budget,
        censored_low: merged.censored_low,
        censored_high: merged.censored_high,
        block_names: analysis
            .spec()
            .blocks()
            .iter()
            .map(|b| b.name().to_string())
            .collect(),
        weakest_counts: merged.weakest,
        quantile_levels: QUANTILE_LEVELS.to_vec(),
        lifetime_quantiles_s,
        p_mission_quantiles,
        fit_quantiles,
        lifetime_min_s: merged.lifetime_min_s,
        lifetime_max_s: merged.lifetime_max_s,
        p_mission_min: merged.p_min,
        p_mission_max: merged.p_max,
    };
    let run_s = start.elapsed().as_secs_f64();
    Ok(FleetReport {
        aggregates,
        threads: threads as u64,
        shards: shards as u64,
        lanes: simd::dispatch_label(),
        lane_width: width.lanes() as u64,
        lane_tiles: lane_tiles.load(Ordering::Relaxed),
        run_s,
        chips_per_s: config.chips as f64 / run_s.max(1e-12),
        workspaces_created: workspaces_created.load(Ordering::Relaxed),
    })
}

/// Evaluates the first `n` chips of the fleet serially, returning each
/// chip's individual outcome — the cross-check surface for the
/// consistency tests (`tests/fleet_consistency.rs`), which re-derive the
/// same outcomes through the public per-instance APIs.
///
/// Chips route through the same lane-tiled dispatch as [`run_fleet`], so
/// outcomes match the streaming run bit for bit whenever `n` equals
/// `config.chips` or is a multiple of the active lane width (otherwise
/// the last few chips take the scalar tail here but a lane tile there —
/// still within the 1e-12 cross-path gate).
///
/// # Errors
///
/// Same failure modes as [`run_fleet`].
pub fn chip_outcomes(
    analysis: &ChipAnalysis,
    tech: &dyn ObdTechnology,
    config: &FleetConfig,
    n: u64,
) -> Result<Vec<ChipOutcome>> {
    let compiled = compile_fleet(analysis, tech, config)?;
    let counter = AtomicU64::new(0);
    let width = compiled.width();
    let mut ws = Workspace::new(
        analysis.model(),
        analysis.model().n_components(),
        analysis.n_blocks(),
        width.lanes(),
        &compiled.composition,
        &counter,
    );
    let n = n.min(config.chips);
    let mut outcomes = Vec::with_capacity(n as usize);
    for tile in 0..n.div_ceil(TILE_CHIPS) {
        let chip_lo = tile * TILE_CHIPS;
        let chip_hi = (chip_lo + TILE_CHIPS).min(n);
        compiled.evaluate_range(chip_lo, chip_hi, width, &mut ws, &mut |outcome| {
            outcomes.push(outcome);
        });
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AnalysisSpec;
    use crate::Session;
    use statobd_core::{BlockSpec, ChipSpec};
    use statobd_num::json;

    fn tiny_analysis() -> Session {
        let mut chip = ChipSpec::new();
        chip.add_block(
            BlockSpec::new("core", 4e4, 40_000, 368.15, 1.2, vec![(0, 0.5), (6, 0.5)]).unwrap(),
        )
        .unwrap();
        chip.add_block(BlockSpec::new("cache", 6e4, 60_000, 341.15, 1.2, vec![(12, 1.0)]).unwrap())
            .unwrap();
        Session::build(&AnalysisSpec::chip(chip).with_grid_side(5)).unwrap()
    }

    fn small_config(chips: u64) -> FleetConfig {
        FleetConfig {
            chips,
            threads: Some(1),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        for (mutate, needle) in [
            (
                Box::new(|c: &mut FleetConfig| c.chips = 0) as Box<dyn Fn(&mut FleetConfig)>,
                "chips",
            ),
            (Box::new(|c: &mut FleetConfig| c.shards = Some(0)), "shards"),
            (
                Box::new(|c: &mut FleetConfig| c.threads = Some(0)),
                "threads",
            ),
            (Box::new(|c: &mut FleetConfig| c.budget = 0.0), "budget"),
            (Box::new(|c: &mut FleetConfig| c.budget = 1.5), "budget"),
        ] {
            let mut bad = FleetConfig::default();
            mutate(&mut bad);
            let err = bad.validate().unwrap_err().to_string();
            assert!(err.contains(needle), "expected '{needle}' in: {err}");
        }
        assert!(FleetConfig::default().validate().is_ok());
    }

    #[test]
    fn weakest_block_rule_ties_low_and_nan_never_wins() {
        // Ties resolve to the lowest index: an equal later p loses.
        let (mut block, mut p) = (0usize, f64::NEG_INFINITY);
        for (j, pj) in [0.3, 0.5, 0.5, 0.1].iter().enumerate() {
            update_weakest(j, *pj, &mut block, &mut p);
        }
        assert_eq!((block, p), (1, 0.5));
        // NaN never displaces a real value...
        update_weakest(4, f64::NAN, &mut block, &mut p);
        assert_eq!((block, p), (1, 0.5));
        // ...and an all-NaN chip deterministically reports block 0.
        let (mut block, mut p) = (0usize, f64::NEG_INFINITY);
        for j in 0..3 {
            update_weakest(j, f64::NAN, &mut block, &mut p);
        }
        assert_eq!(block, 0);
        // Zero still beats the −∞ seed.
        update_weakest(2, 0.0, &mut block, &mut p);
        assert_eq!((block, p), (2, 0.0));
    }

    #[test]
    fn spares_lower_failure_and_stay_layout_independent() {
        let session = tiny_analysis();
        let tech = session.spec().tech.tech();
        let base = FleetConfig {
            chips: 1200,
            ..FleetConfig::default()
        };
        let wl = run_fleet(
            session.analysis(),
            &tech,
            &FleetConfig {
                threads: Some(1),
                ..base.clone()
            },
        )
        .unwrap();
        let mut reference: Option<String> = None;
        for (threads, shards) in [(1, None), (2, Some(1)), (2, Some(3)), (4, Some(7))] {
            let config = FleetConfig {
                spares: 1,
                threads: Some(threads),
                shards,
                ..base.clone()
            };
            let report = run_fleet(session.analysis(), &tech, &config).unwrap();
            // Grouped runs hold the scalar dispatch, making the
            // aggregates width-independent too.
            assert_eq!(report.lane_width, 1, "grouped runs force the scalar path");
            assert_eq!(report.lane_tiles, 0);
            let rendered = json::to_string(&report.aggregates);
            match &reference {
                None => reference = Some(rendered),
                Some(r) => assert_eq!(r, &rendered, "threads={threads} shards={shards:?} diverged"),
            }
            // One spare over two blocks: the chip survives any single
            // block failure, so every outcome weakly improves.
            let a = &report.aggregates;
            assert!(a.p_mission_max <= wl.aggregates.p_mission_max);
            assert!(a.exceed_budget <= wl.aggregates.exceed_budget);
            assert!(a.lifetime_min_s >= wl.aggregates.lifetime_min_s);
        }
        // And the improvement is real, not a no-op: the median mission
        // probability collapses (both blocks must fail).
        let grouped: FleetAggregates =
            json::from_str(reference.as_deref().unwrap()).unwrap();
        assert!(
            grouped.p_mission_quantiles[3] < 1e-3 * wl.aggregates.p_mission_quantiles[3],
            "grouped median {:.3e} vs weakest-link median {:.3e}",
            grouped.p_mission_quantiles[3],
            wl.aggregates.p_mission_quantiles[3]
        );
        // An over-budget spare spec is a structured error.
        assert!(run_fleet(
            session.analysis(),
            &tech,
            &FleetConfig {
                spares: 2,
                ..base
            }
        )
        .is_err());
    }

    #[test]
    fn aggregates_are_shard_and_thread_independent() {
        let session = tiny_analysis();
        let tech = session.spec().tech.tech();
        let mut reference: Option<String> = None;
        for (threads, shards) in [(1, None), (2, Some(1)), (2, Some(3)), (4, Some(7))] {
            let config = FleetConfig {
                chips: 1500,
                threads: Some(threads),
                shards,
                ..FleetConfig::default()
            };
            let report = run_fleet(session.analysis(), &tech, &config).unwrap();
            assert!(report.workspaces_created <= report.shards);
            let rendered = json::to_string(&report.aggregates);
            match &reference {
                None => reference = Some(rendered),
                Some(r) => assert_eq!(r, &rendered, "threads={threads} shards={shards:?} diverged"),
            }
        }
    }

    #[test]
    fn aggregates_account_for_every_chip() {
        let session = tiny_analysis();
        let tech = session.spec().tech.tech();
        let config = small_config(777);
        let report = run_fleet(session.analysis(), &tech, &config).unwrap();
        let a = &report.aggregates;
        assert_eq!(a.weakest_counts.iter().sum::<u64>(), a.chips);
        assert_eq!(a.chips, 777);
        assert!(a.lifetime_min_s <= a.lifetime_quantiles_s[0]);
        assert!(a.lifetime_max_s >= *a.lifetime_quantiles_s.last().unwrap());
        assert!(
            a.lifetime_quantiles_s.windows(2).all(|w| w[0] <= w[1]),
            "lifetime quantiles must be monotone: {:?}",
            a.lifetime_quantiles_s
        );
        assert!(
            a.p_mission_quantiles.windows(2).all(|w| w[0] <= w[1]),
            "p quantiles must be monotone"
        );
        // FIT is a fixed monotone transform of the p quantiles.
        for (fit, p) in a.fit_quantiles.iter().zip(&a.p_mission_quantiles) {
            assert!((fit - p * 1e9 / (a.mission_s / 3600.0)).abs() <= fit.abs() * 1e-12);
        }
    }

    #[test]
    fn outcomes_match_streaming_aggregates() {
        let session = tiny_analysis();
        let tech = session.spec().tech.tech();
        let config = small_config(256);
        let outcomes = chip_outcomes(session.analysis(), &tech, &config, 256).unwrap();
        let report = run_fleet(session.analysis(), &tech, &config).unwrap();
        let exceed = outcomes
            .iter()
            .filter(|o| o.p_mission > config.budget)
            .count() as u64;
        assert_eq!(report.aggregates.exceed_budget, exceed);
        let p_max = outcomes
            .iter()
            .map(|o| o.p_mission)
            .fold(f64::MIN, f64::max);
        assert_eq!(report.aggregates.p_mission_max.to_bits(), p_max.to_bits());
    }

    #[test]
    fn harsher_missions_fail_more() {
        let session = tiny_analysis();
        let tech = session.spec().tech.tech();
        let field = run_fleet(
            session.analysis(),
            &tech,
            &FleetConfig {
                profile: MissionProfile::datacenter(),
                ..small_config(400)
            },
        )
        .unwrap();
        let stress = run_fleet(
            session.analysis(),
            &tech,
            &FleetConfig {
                profile: MissionProfile::htol(),
                ..small_config(400)
            },
        )
        .unwrap();
        // HTOL packs hot, high-voltage stress into 1000 h: the median
        // budget-lifetime under repeated stress must be far shorter than
        // under the datacenter duty cycle.
        assert!(
            stress.aggregates.lifetime_quantiles_s[3] < field.aggregates.lifetime_quantiles_s[3],
            "HTOL {:?} vs datacenter {:?}",
            stress.aggregates.lifetime_quantiles_s[3],
            field.aggregates.lifetime_quantiles_s[3]
        );
    }

    /// Width 1 must route through [`CompiledFleet::evaluate_chip`]
    /// verbatim — the scalar libm path, not a 1-lane instance of the
    /// tiled kernels (whose `exp`/`exp_m1`/`ln_1p` cores round
    /// differently in the last ulp). Routing W1 through
    /// `evaluate_tile::<1>` would silently break the historical bits.
    #[test]
    fn width_1_dispatch_is_bit_identical_to_scalar_reference() {
        let session = tiny_analysis();
        let tech = session.spec().tech.tech();
        let config = small_config(37);
        let compiled = compile_fleet(session.analysis(), &tech, &config).unwrap();
        let model = session.analysis().model();
        let counter = AtomicU64::new(0);
        let n_blocks = session.analysis().n_blocks();
        let mut ws = Workspace::new(
            model,
            model.n_components(),
            n_blocks,
            1,
            &Composition::WeakestLink,
            &counter,
        );
        let mut w1 = Vec::new();
        let tiles = compiled.evaluate_range(0, 37, LaneWidth::W1, &mut ws, &mut |o| w1.push(o));
        assert_eq!(tiles, 0, "width 1 reports no lane tiles");
        assert_eq!(w1.len(), 37);
        for (chip, t) in w1.iter().enumerate() {
            let s = compiled.evaluate_chip(chip as u64, &mut ws);
            assert_eq!(
                t.p_mission.to_bits(),
                s.p_mission.to_bits(),
                "chip {chip} p"
            );
            assert_eq!(
                t.lifetime_s.to_bits(),
                s.lifetime_s.to_bits(),
                "chip {chip} lifetime"
            );
            assert_eq!(
                (t.weakest_block, t.censored_low, t.censored_high),
                (s.weakest_block, s.censored_low, s.censored_high),
                "chip {chip} discrete outcome"
            );
        }
    }

    /// The ragged tail below one lane width must fall back to the scalar
    /// path and report zero tiles; full tiles are counted.
    #[test]
    fn tiled_range_counts_tiles_and_covers_ragged_tail() {
        let session = tiny_analysis();
        let tech = session.spec().tech.tech();
        let config = small_config(19);
        let compiled = compile_fleet(session.analysis(), &tech, &config).unwrap();
        let model = session.analysis().model();
        let counter = AtomicU64::new(0);
        let n_blocks = session.analysis().n_blocks();
        let mut ws = Workspace::new(
            model,
            model.n_components(),
            n_blocks,
            8,
            &Composition::WeakestLink,
            &counter,
        );
        let mut seen = 0u64;
        let tiles = compiled.evaluate_range(0, 19, LaneWidth::W8, &mut ws, &mut |_| seen += 1);
        assert_eq!(tiles, 2, "19 chips = 2 full width-8 tiles + tail of 3");
        assert_eq!(seen, 19, "every chip reported exactly once");
    }

    #[test]
    fn report_json_round_trips() {
        let session = tiny_analysis();
        let tech = session.spec().tech.tech();
        let report = run_fleet(session.analysis(), &tech, &small_config(64)).unwrap();
        let back: FleetReport = json::from_str(&json::to_string_pretty(&report)).unwrap();
        assert_eq!(back, report);
    }
}
