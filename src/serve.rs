//! `statobd serve` — a line-delimited JSON query server over hot
//! sessions.
//!
//! The build/serve split: compiling a model costs seconds to minutes,
//! queries cost microseconds. The server keeps an LRU map of compiled
//! [`Session`]s (optionally backed by the [`ArtifactCache`], so even the
//! first `open` of a previously seen spec is a cheap deserialization) and
//! answers one JSON request per line on stdin/stdout or a unix socket.
//!
//! # Protocol
//!
//! One JSON object per line in, one per line out. Every request carries an
//! `op`; every reply carries `"ok"` and echoes the request's `id` when
//! present. Errors are structured replies (`{"ok": false, "error": ...}`)
//! — a bad request never kills the server.
//!
//! | op | request fields | reply fields |
//! |---|---|---|
//! | `open` | `session`, `spec` | `source`, `build_s`, `spec_hash` |
//! | `p_at` | `session`, `t_s` | `p` |
//! | `sweep` | `session`, `t_lo_s`, `t_hi_s`, `points` | `curve` = `[[t, p], ...]` |
//! | `lifetime` | `session`, `target` | `t_s`, `years` |
//! | `manage_step` | `session`, `dt_s`, `vdd_v`, `temps_k` *or* `dt_k` | `p_now`, `p_projected`, `level`, `capped`, `vdd_v` |
//! | `fleet` | `session`, opt. `chips`, `profile`, `seed`, `budget`, `shards` | `aggregates`, `threads`, `shards`, `lanes`, `lane_width`, `lane_tiles`, `run_s`, `chips_per_s`, `workspaces_created` |
//! | `stats` | `session` | `stats`, `lanes` (SIMD lane dispatch label) |
//! | `close` | `session` | `closed` |
//! | `shutdown` | — | — (server exits after replying) |
//!
//! # Example exchange
//!
//! ```text
//! → {"id": 1, "op": "open", "session": "c1", "spec": {"design": "C1"}}
//! ← {"id": 1, "ok": true, "session": "c1", "source": "cache", "build_s": 0.18, "spec_hash": "..."}
//! → {"id": 2, "op": "p_at", "session": "c1", "t_s": 3.156e8}
//! ← {"id": 2, "ok": true, "p": 3.4e-7}
//! ```

use crate::artifact::ArtifactCache;
use crate::error::{Error, Result};
use crate::fleet::{run_fleet, FleetConfig};
use crate::session::Session;
use crate::spec::AnalysisSpec;
use statobd_manager::{MissionProfile, StepReport};
use statobd_num::json::{FromJson, Json, ToJson};
use std::io::{BufRead, Write};

/// Server configuration.
#[derive(Debug)]
pub struct ServeConfig {
    /// Maximum number of hot sessions; the least recently used is evicted
    /// when an `open` would exceed it.
    pub max_sessions: usize,
    /// Artifact cache backing `open` (`None` = always build cold, never
    /// persist).
    pub cache: Option<ArtifactCache>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 4,
            cache: None,
        }
    }
}

/// The server state: configuration plus the LRU session map (front =
/// most recently used).
#[derive(Debug)]
struct Server {
    config: ServeConfig,
    sessions: Vec<(String, Session)>,
}

/// What handling one request produced.
struct Reply {
    json: Json,
    shutdown: bool,
}

impl Server {
    fn new(config: ServeConfig) -> Self {
        Server {
            config,
            sessions: Vec::new(),
        }
    }

    /// Handles one request line; never fails — malformed input becomes an
    /// error reply.
    fn handle(&mut self, line: &str) -> Reply {
        let (id, result) = match Json::parse(line) {
            Ok(request) => {
                let id = request.get("id").cloned();
                (id, self.dispatch(&request))
            }
            Err(e) => (None, Err(Error::Spec(format!("unparseable request: {e}")))),
        };
        match result {
            Ok(Reply { json, shutdown }) => {
                let mut members = vec![("ok".to_string(), Json::Bool(true))];
                if let Some(id) = id {
                    members.insert(0, ("id".to_string(), id));
                }
                if let Json::Object(fields) = json {
                    members.extend(fields);
                }
                Reply {
                    json: Json::Object(members),
                    shutdown,
                }
            }
            Err(e) => {
                let mut members = vec![
                    ("ok".to_string(), Json::Bool(false)),
                    ("error".to_string(), Json::String(e.to_string())),
                ];
                if let Some(id) = id {
                    members.insert(0, ("id".to_string(), id));
                }
                Reply {
                    json: Json::Object(members),
                    shutdown: false,
                }
            }
        }
    }

    fn dispatch(&mut self, request: &Json) -> Result<Reply> {
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::Spec("request needs a string 'op'".to_string()))?;
        let ok = |json: Json| {
            Ok(Reply {
                json,
                shutdown: false,
            })
        };
        match op {
            "open" => ok(self.op_open(request)?),
            "p_at" => {
                let t_s = num_field(request, "t_s")?;
                let p = self.session(request)?.p_at(t_s)?;
                ok(object(vec![("p", Json::Number(p))]))
            }
            "sweep" => {
                let t_lo = num_field(request, "t_lo_s")?;
                let t_hi = num_field(request, "t_hi_s")?;
                let points = num_field(request, "points")? as usize;
                let curve = self.session(request)?.sweep(t_lo, t_hi, points)?;
                let rows = curve
                    .into_iter()
                    .map(|(t, p)| Json::Array(vec![Json::Number(t), Json::Number(p)]))
                    .collect();
                ok(object(vec![("curve", Json::Array(rows))]))
            }
            "lifetime" => {
                let target = num_field(request, "target")?;
                let t_s = self.session(request)?.lifetime(target)?;
                ok(object(vec![
                    ("t_s", Json::Number(t_s)),
                    ("years", Json::Number(t_s / 3.156e7)),
                ]))
            }
            "manage_step" => {
                let dt_s = num_field(request, "dt_s")?;
                let vdd_v = num_field(request, "vdd_v")?;
                let session = self.session(request)?;
                let report = match request.get("temps_k") {
                    Some(temps) => {
                        let temps = Vec::<f64>::from_json(temps).map_err(Error::from)?;
                        session.manage_step(dt_s, &temps, vdd_v)?
                    }
                    None => {
                        let dt_k = request.get("dt_k").and_then(Json::as_f64).unwrap_or(0.0);
                        session.manage_step_uniform(dt_s, dt_k, vdd_v)?
                    }
                };
                ok(report_json(&report))
            }
            "fleet" => {
                let defaults = FleetConfig::default();
                let chips = match request.get("chips") {
                    Some(v) => u64::from_json(v).map_err(Error::from)?,
                    None => defaults.chips,
                };
                let profile = match request.get("profile") {
                    Some(v) => {
                        let name = String::from_json(v).map_err(Error::from)?;
                        MissionProfile::named(&name)?
                    }
                    None => defaults.profile,
                };
                let seed = match request.get("seed") {
                    Some(v) => u64::from_json(v).map_err(Error::from)?,
                    None => defaults.seed,
                };
                let budget = match request.get("budget") {
                    Some(v) => f64::from_json(v).map_err(Error::from)?,
                    None => defaults.budget,
                };
                let shards = match request.get("shards") {
                    Some(v) => Some(usize::from_json(v).map_err(Error::from)?),
                    None => None,
                };
                let spares = match request.get("spares") {
                    Some(v) => usize::from_json(v).map_err(Error::from)?,
                    None => defaults.spares,
                };
                let session = self.session(request)?;
                let config = FleetConfig {
                    chips,
                    profile,
                    seed,
                    budget,
                    wafer: defaults.wafer,
                    threads: session.spec().threads,
                    shards,
                    spares,
                };
                let tech = session.spec().tech.tech();
                let report = run_fleet(session.analysis(), &tech, &config)?;
                ok(report.to_json())
            }
            "stats" => {
                let stats = self.session(request)?.stats().clone();
                ok(object(vec![
                    ("stats", stats.to_json()),
                    ("lanes", Json::String(statobd_num::simd::dispatch_label())),
                ]))
            }
            "close" => {
                let name = name_field(request)?;
                let before = self.sessions.len();
                self.sessions.retain(|(n, _)| n != &name);
                ok(object(vec![(
                    "closed",
                    Json::Bool(self.sessions.len() < before),
                )]))
            }
            "shutdown" => Ok(Reply {
                json: object(vec![]),
                shutdown: true,
            }),
            other => Err(Error::Spec(format!(
                "unknown op '{other}' (one of: open, p_at, sweep, lifetime, manage_step, \
                 fleet, stats, close, shutdown)"
            ))),
        }
    }

    fn op_open(&mut self, request: &Json) -> Result<Json> {
        let name = name_field(request)?;
        let spec_json = request
            .get("spec")
            .ok_or_else(|| Error::Spec("open needs a 'spec' object".to_string()))?;
        let spec = AnalysisSpec::from_json(spec_json).map_err(Error::from)?;
        let session = match &self.config.cache {
            Some(cache) => Session::open(&spec, cache)?,
            None => Session::build(&spec)?,
        };
        let stats = session.stats();
        let reply = object(vec![
            ("session", Json::String(name.clone())),
            ("source", stats.source.to_json()),
            ("build_s", Json::Number(stats.build_s)),
            ("spec_hash", Json::String(stats.spec_hash.clone())),
        ]);
        self.sessions.retain(|(n, _)| n != &name);
        self.sessions.insert(0, (name, session));
        // Evict the least recently used sessions beyond capacity.
        self.sessions.truncate(self.config.max_sessions.max(1));
        Ok(reply)
    }

    /// Looks up the request's session and marks it most recently used.
    fn session(&mut self, request: &Json) -> Result<&mut Session> {
        let name = name_field(request)?;
        let idx = self
            .sessions
            .iter()
            .position(|(n, _)| n == &name)
            .ok_or_else(|| {
                Error::Spec(format!(
                    "no open session '{name}' (use the 'open' op first)"
                ))
            })?;
        let entry = self.sessions.remove(idx);
        self.sessions.insert(0, entry);
        Ok(&mut self.sessions[0].1)
    }
}

fn object(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn name_field(request: &Json) -> Result<String> {
    request
        .get("session")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| Error::Spec("request needs a string 'session'".to_string()))
}

fn num_field(request: &Json, name: &str) -> Result<f64> {
    request
        .get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| Error::Spec(format!("request needs a number '{name}'")))
}

fn report_json(report: &StepReport) -> Json {
    object(vec![
        ("p_now", Json::Number(report.p_now)),
        ("p_projected", Json::Number(report.p_projected)),
        ("level", Json::Number(report.level as f64)),
        ("capped", Json::Bool(report.capped)),
        ("vdd_v", Json::Number(report.vdd_v)),
    ])
}

/// Runs the serve loop over arbitrary line streams: one JSON request per
/// line in, one JSON reply per line out (flushed per reply). Returns on
/// EOF or after a `shutdown` op.
///
/// # Errors
///
/// Returns [`Error::Io`] only for transport failures; per-request
/// problems become `{"ok": false}` replies.
pub fn serve_lines<R: BufRead, W: Write>(
    reader: R,
    mut writer: W,
    config: ServeConfig,
) -> Result<()> {
    let mut server = Server::new(config);
    for line in reader.lines() {
        let line = line.map_err(|e| Error::Io(format!("reading request: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = server.handle(&line);
        writeln!(writer, "{}", reply.json.to_compact())
            .and_then(|()| writer.flush())
            .map_err(|e| Error::Io(format!("writing reply: {e}")))?;
        if reply.shutdown {
            break;
        }
    }
    Ok(())
}

/// Runs the server on stdin/stdout, or on a unix socket when `socket` is
/// given. Socket connections are served sequentially against one shared
/// session map, so sessions stay hot across client reconnects; the server
/// exits when a client sends `shutdown`.
///
/// # Errors
///
/// Returns [`Error::Io`] for transport failures, and [`Error::Spec`] for
/// a socket path on a platform without unix sockets.
pub fn serve(config: ServeConfig, socket: Option<&std::path::Path>) -> Result<()> {
    match socket {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_lines(stdin.lock(), stdout.lock(), config)
        }
        Some(path) => serve_socket(config, path),
    }
}

#[cfg(unix)]
fn serve_socket(config: ServeConfig, path: &std::path::Path) -> Result<()> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would make bind fail.
    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(Error::Io(format!("removing {}: {e}", path.display()))),
    }
    let listener = UnixListener::bind(path)
        .map_err(|e| Error::Io(format!("binding {}: {e}", path.display())))?;
    let mut server = Server::new(config);
    'accept: for stream in listener.incoming() {
        let stream = stream.map_err(|e| Error::Io(format!("accepting connection: {e}")))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| Error::Io(format!("cloning stream: {e}")))?;
        let reader = std::io::BufReader::new(stream);
        for line in reader.lines() {
            // A dropped client connection ends this session's loop but
            // not the server.
            let Ok(line) = line else { continue 'accept };
            if line.trim().is_empty() {
                continue;
            }
            let reply = server.handle(&line);
            if writeln!(writer, "{}", reply.json.to_compact())
                .and_then(|()| writer.flush())
                .is_err()
            {
                continue 'accept;
            }
            if reply.shutdown {
                break 'accept;
            }
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(_config: ServeConfig, _path: &std::path::Path) -> Result<()> {
    Err(Error::Spec(
        "--socket needs unix domain sockets, unavailable on this platform".to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use statobd_core::{BlockSpec, ChipSpec};

    fn tiny_spec_json() -> String {
        let mut chip = ChipSpec::new();
        chip.add_block(BlockSpec::new("core", 1e5, 100_000, 368.15, 1.2, vec![(0, 1.0)]).unwrap())
            .unwrap();
        let spec = AnalysisSpec::chip(chip)
            .with_grid_side(4)
            .with_engine(statobd_core::EngineKind::StClosed);
        spec.to_json().to_compact()
    }

    fn run(requests: &[String]) -> Vec<Json> {
        let input = requests.join("\n");
        let mut out = Vec::new();
        serve_lines(input.as_bytes(), &mut out, ServeConfig::default()).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn open_query_shutdown_round_trip() {
        let spec = tiny_spec_json();
        let replies = run(&[
            format!(r#"{{"id": 1, "op": "open", "session": "s", "spec": {spec}}}"#),
            r#"{"id": 2, "op": "lifetime", "session": "s", "target": 1e-6}"#.to_string(),
            r#"{"id": 3, "op": "p_at", "session": "s", "t_s": 3.156e8}"#.to_string(),
            r#"{"id": 4, "op": "sweep", "session": "s", "t_lo_s": 1e7, "t_hi_s": 1e9, "points": 3}"#
                .to_string(),
            r#"{"id": 5, "op": "stats", "session": "s"}"#.to_string(),
            r#"{"id": 6, "op": "shutdown"}"#.to_string(),
        ]);
        assert_eq!(replies.len(), 6);
        for (i, reply) in replies.iter().enumerate() {
            assert_eq!(
                reply.get("ok").and_then(Json::as_bool),
                Some(true),
                "reply {i}: {}",
                reply.to_compact()
            );
            assert_eq!(reply.get("id").and_then(Json::as_f64), Some((i + 1) as f64));
        }
        assert_eq!(
            replies[0].get("source").and_then(Json::as_str),
            Some("cold")
        );
        assert!(replies[1].get("t_s").and_then(Json::as_f64).unwrap() > 0.0);
        assert_eq!(
            replies[3]
                .get("curve")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            3
        );
        let queries = replies[4]
            .get("stats")
            .and_then(|s| s.get("queries"))
            .and_then(Json::as_f64);
        assert_eq!(queries, Some(5.0), "lifetime + p_at + 3 sweep points");
        let lanes = replies[4].get("lanes").and_then(Json::as_str).unwrap();
        assert!(
            lanes.contains("lane"),
            "stats reply self-describes the SIMD dispatch, got {lanes:?}"
        );
    }

    #[test]
    fn fleet_op_returns_deterministic_aggregates() {
        let spec = tiny_spec_json();
        let replies = run(&[
            format!(r#"{{"op": "open", "session": "s", "spec": {spec}}}"#),
            r#"{"op": "fleet", "session": "s", "chips": 600, "profile": "htol", "seed": 9}"#
                .to_string(),
            r#"{"op": "fleet", "session": "s", "chips": 600, "profile": "htol", "seed": 9, "shards": 4}"#
                .to_string(),
            r#"{"op": "fleet", "session": "s", "profile": "weekend_warrior"}"#.to_string(),
        ]);
        assert_eq!(replies[1].get("ok").and_then(Json::as_bool), Some(true));
        let agg = replies[1].get("aggregates").expect("aggregates field");
        assert_eq!(agg.get("chips").and_then(Json::as_f64), Some(600.0));
        assert_eq!(
            agg.get("profile").and_then(Json::as_str),
            Some("htol"),
            "{}",
            replies[1].to_compact()
        );
        // The reply self-describes the lane-tiled dispatch.
        assert!(
            replies[1]
                .get("lanes")
                .and_then(Json::as_str)
                .is_some_and(|l| !l.is_empty()),
            "fleet reply carries the lane dispatch label"
        );
        let lane_width = replies[1]
            .get("lane_width")
            .and_then(Json::as_f64)
            .expect("lane_width field");
        let lane_tiles = replies[1]
            .get("lane_tiles")
            .and_then(Json::as_f64)
            .expect("lane_tiles field");
        assert!(
            lane_tiles * lane_width <= 600.0,
            "tiles cover at most the fleet: {lane_tiles} x {lane_width}"
        );
        // A different shard count must not change the aggregates.
        assert_eq!(
            agg.to_compact(),
            replies[2].get("aggregates").unwrap().to_compact()
        );
        // Unknown profiles fail with a did-you-mean, not a dead server.
        assert_eq!(replies[3].get("ok").and_then(Json::as_bool), Some(false));
        assert!(replies[3]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("did you mean"));
    }

    #[test]
    fn errors_are_structured_replies_not_exits() {
        let spec = tiny_spec_json();
        let replies = run(&[
            "not json at all".to_string(),
            r#"{"op": "p_at", "session": "nope", "t_s": 1.0}"#.to_string(),
            r#"{"op": "frobnicate"}"#.to_string(),
            r#"{"op": "open", "session": "s", "spec": {"design": "C9"}}"#.to_string(),
            // The server must still work after four failures.
            format!(r#"{{"op": "open", "session": "s", "spec": {spec}}}"#),
        ]);
        assert_eq!(replies.len(), 5);
        for reply in &replies[..4] {
            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
            assert!(reply.get("error").and_then(Json::as_str).is_some());
        }
        assert_eq!(replies[4].get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_session() {
        let spec = tiny_spec_json();
        let input: Vec<String> = vec![
            format!(r#"{{"op": "open", "session": "a", "spec": {spec}}}"#),
            format!(r#"{{"op": "open", "session": "b", "spec": {spec}}}"#),
            // Touch "a" so "b" becomes the eviction candidate.
            r#"{"op": "p_at", "session": "a", "t_s": 1e8}"#.to_string(),
            format!(r#"{{"op": "open", "session": "c", "spec": {spec}}}"#),
            r#"{"op": "p_at", "session": "b", "t_s": 1e8}"#.to_string(),
            r#"{"op": "p_at", "session": "a", "t_s": 1e8}"#.to_string(),
        ];
        let joined = input.join("\n");
        let mut out = Vec::new();
        serve_lines(
            joined.as_bytes(),
            &mut out,
            ServeConfig {
                max_sessions: 2,
                cache: None,
            },
        )
        .unwrap();
        let replies: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        // "b" was evicted by opening "c"; "a" survived.
        assert_eq!(replies[4].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(replies[5].get("ok").and_then(Json::as_bool), Some(true));
    }
}
