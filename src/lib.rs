//! # statobd — statistical full-chip gate-oxide breakdown reliability
//!
//! Facade crate re-exporting the `statobd` workspace: a Rust implementation
//! of process-variation and temperature-aware full-chip oxide-breakdown
//! (OBD) reliability analysis (Zhuo, Chopra, Sylvester, Blaauw — DATE 2010
//! / IEEE TCAD 2011).
//!
//! See the individual crates for details:
//!
//! * [`num`] — numerical foundations (linear algebra, special functions,
//!   distributions, quadrature, statistics),
//! * [`variation`] — oxide-thickness variation modeling (grid spatial
//!   correlation, PCA canonical form),
//! * [`thermal`] — floorplan, power model and steady-state thermal solver,
//! * [`device`] — device-level Weibull OBD model and degradation simulator,
//! * [`core`] — the statistical chip-level reliability engines, all built
//!   through the unified [`core::build_engine`] factory,
//! * [`manager`] — runtime dynamic reliability management on the hybrid
//!   tables: effective-age damage accumulation, budget-driven DVFS
//!   throttling and checkpointable monitoring,
//! * [`circuits`] — the C1–C6 benchmark designs from the paper.
//!
//! The workspace is **hermetic**: it builds offline with the standard
//! library only (no external crates), including its RNG
//! ([`num::rng`]), JSON ([`num::json`]) and scoped-thread parallelism
//! ([`num::parallel`]). Parallel engines take an explicit thread count
//! (CLI `--threads`), honor the `STATOBD_THREADS` environment variable,
//! and return bit-identical results at any thread count.
//!
//! # Example
//!
//! Statistical 1-fault-per-million lifetime of a bundled benchmark design,
//! with the full substrate pipeline (floorplan → power → thermal → BLOD →
//! analytic integration) behind one call each:
//!
//! ```
//! use statobd::circuits::{build_design, Benchmark, DesignConfig};
//! use statobd::core::{build_engine, params, solve_lifetime, ChipAnalysis, EngineKind};
//! use statobd::device::ClosedFormTech;
//! use statobd::thermal::ThermalConfig;
//! use statobd::variation::{CorrelationKernel, ThicknessModelBuilder, VarianceBudget};
//!
//! // Small configuration so the doctest stays fast.
//! let config = DesignConfig {
//!     correlation_grid_side: 6,
//!     thermal: ThermalConfig { nx: 16, ny: 16, ..ThermalConfig::default() },
//!     ..DesignConfig::default()
//! };
//! let built = build_design(Benchmark::C1, &config)?;
//! let model = ThicknessModelBuilder::new()
//!     .grid(built.grid)
//!     .nominal(params::NOMINAL_THICKNESS_NM)
//!     .budget(VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM)?)
//!     .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
//!     .build()?;
//! let analysis = ChipAnalysis::new(built.spec, model, &ClosedFormTech::nominal_45nm())?;
//! let mut engine = build_engine(&analysis, &EngineKind::StFast.default_spec())?;
//! let t = solve_lifetime(engine.as_mut(), params::ONE_PER_MILLION, (1e5, 1e12))?;
//! assert!(t > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use statobd_circuits as circuits;
pub use statobd_core as core;
pub use statobd_device as device;
pub use statobd_manager as manager;
pub use statobd_num as num;
pub use statobd_thermal as thermal;
pub use statobd_variation as variation;
