//! # statobd — statistical full-chip gate-oxide breakdown reliability
//!
//! Facade crate re-exporting the `statobd` workspace: a Rust implementation
//! of process-variation and temperature-aware full-chip oxide-breakdown
//! (OBD) reliability analysis (Zhuo, Chopra, Sylvester, Blaauw — DATE 2010
//! / IEEE TCAD 2011).
//!
//! See the individual crates for details:
//!
//! * [`num`] — numerical foundations (linear algebra, special functions,
//!   distributions, quadrature, statistics),
//! * [`variation`] — oxide-thickness variation modeling (grid spatial
//!   correlation, PCA canonical form),
//! * [`thermal`] — floorplan, power model and steady-state thermal solver,
//! * [`device`] — device-level Weibull OBD model and degradation simulator,
//! * [`core`] — the statistical chip-level reliability engines, all built
//!   through the unified [`core::build_engine`] factory,
//! * [`manager`] — runtime dynamic reliability management on the hybrid
//!   tables: effective-age damage accumulation, budget-driven DVFS
//!   throttling and checkpointable monitoring,
//! * [`circuits`] — the C1–C6 benchmark designs from the paper.
//!
//! The workspace is **hermetic**: it builds offline with the standard
//! library only (no external crates), including its RNG
//! ([`num::rng`]), JSON ([`num::json`]) and scoped-thread parallelism
//! ([`num::parallel`]). Parallel engines take an explicit thread count
//! (CLI `--threads`), honor the `STATOBD_THREADS` environment variable,
//! and return bit-identical results at any thread count.
//!
//! # Example
//!
//! The facade API: describe the whole analysis as one declarative
//! [`AnalysisSpec`], compile it into a [`Session`], query it. (The
//! substrate pipeline — floorplan → power → thermal → BLOD → analytic
//! integration — runs behind [`Session::build`]; see [`Session::open`]
//! for the content-addressed artifact cache that skips recompilation.)
//!
//! ```
//! use statobd::{AnalysisSpec, Session};
//! use statobd::circuits::Benchmark;
//! use statobd::core::params;
//!
//! // Small configuration so the doctest stays fast.
//! let mut spec = AnalysisSpec::benchmark(Benchmark::C1).with_grid_side(6);
//! spec.thermal.nx = 16;
//! spec.thermal.ny = 16;
//! let mut session = Session::build(&spec)?;
//! let t = session.lifetime(params::ONE_PER_MILLION)?;
//! assert!(t > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use statobd_circuits as circuits;
pub use statobd_core as core;
pub use statobd_device as device;
pub use statobd_manager as manager;
pub use statobd_num as num;
pub use statobd_thermal as thermal;
pub use statobd_variation as variation;

mod artifact;
mod error;
mod fleet;
mod serve;
mod session;
mod spec;

pub use artifact::{ArtifactCache, CompiledModel, CACHE_ENV, FORMAT_VERSION};
pub use error::{Error, Result};
pub use fleet::{
    chip_outcomes, run_fleet, ChipOutcome, FleetAggregates, FleetConfig, FleetReport,
    LIFE_BRACKET_S as FLEET_LIFE_BRACKET_S, QUANTILE_LEVELS,
};
pub use serve::{serve, serve_lines, ServeConfig};
pub use session::{
    Session, SessionSource, SessionStats, DEFAULT_SERVICE_LIFE_S, LIFETIME_BRACKET_S,
};
pub use spec::{AnalysisSpec, DesignSource, ModelSpec, TechSpec};

// Convenience re-exports of the types an `AnalysisSpec` is assembled
// from, so facade users rarely need the substrate crates directly.
pub use statobd_core::{EngineKind, EngineSpec};
