//! Statistical full-chip gate-oxide breakdown (OBD) reliability analysis.
//!
//! This crate implements the paper's contribution: design-time estimation
//! of the chip-level OBD reliability function across the ensemble of all
//! manufactured chips, accounting for
//!
//! * die-to-die (global), spatially correlated intra-die and independent
//!   oxide-thickness variation (via [`statobd_variation::ThicknessModel`]),
//! * across-die temperature variation (per-block worst-case temperature
//!   and voltage driving the Weibull parameters `α_j`, `b_j`).
//!
//! # The analysis pipeline
//!
//! 1. A [`ChipSpec`] partitions the design into temperature-uniform
//!    blocks, each with device count, normalized gate area, operating
//!    point, and its device distribution over the correlation grids.
//! 2. [`ChipAnalysis`] characterizes each block's **BLOD** (block-level
//!    oxide-thickness distribution): the sample mean `u_j` (Gaussian,
//!    eq. 22) and sample variance `v_j` (quadratic form in the principal
//!    components, eq. 24, approximated as a shifted χ² via Yuan–Bentler,
//!    eqs. 29–30).
//! 3. A reliability *engine* evaluates the ensemble failure probability
//!    `P(t) = 1 − R_c(t)`:
//!    * [`StFast`] — N numerically evaluated double integrals over the
//!      marginal product `f_u·f_v` (paper Sec. IV-D, its main method),
//!    * [`StMc`] — joint PDF of `(u_j, v_j)` constructed numerically from
//!      Monte-Carlo samples of the principal components (the paper's
//!      `st_MC` variant),
//!    * [`StClosed`] — fully closed-form first-order evaluation using the
//!      Gaussian/χ² moment-generating functions (an extension this crate
//!      adds; used as an ablation),
//!    * [`HybridTables`] — precomputed `(ln(t/α), b)` look-up tables with
//!      bilinear interpolation (paper Sec. IV-E),
//!    * [`GuardBand`] — the traditional minimum-thickness worst-temperature
//!      corner (eqs. 33–34),
//!    * [`MonteCarlo`] — the reference per-device Monte-Carlo simulation.
//!
//!    Every engine is built through the unified [`build_engine`] factory
//!    from an [`EngineKind`] selection / [`EngineSpec`] configuration.
//! 4. [`solve_lifetime`] inverts `P(t)` for n-faults-per-million targets
//!    (eq. 32).
//!
//! # Example
//!
//! ```
//! use statobd_core::*;
//! use statobd_variation::*;
//! use statobd_device::ClosedFormTech;
//!
//! // Process model (Table II) over a 5x5 correlation grid.
//! let model = ThicknessModelBuilder::new()
//!     .grid(GridSpec::square_unit(5)?)
//!     .nominal(params::NOMINAL_THICKNESS_NM)
//!     .budget(VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM)?)
//!     .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
//!     .build()?;
//!
//! // A two-block chip: a hot core and a cool cache.
//! let mut spec = ChipSpec::new();
//! spec.add_block(BlockSpec::new("core", 30_000.0, 30_000, 368.15, 1.2,
//!     vec![(0, 0.5), (1, 0.5)])?)?;
//! spec.add_block(BlockSpec::new("cache", 50_000.0, 50_000, 341.15, 1.2,
//!     vec![(12, 1.0)])?)?;
//!
//! let analysis = ChipAnalysis::new(spec, model, &ClosedFormTech::nominal_45nm())?;
//! let mut engine = build_engine(&analysis, &EngineKind::StFast.default_spec())?;
//! let t = solve_lifetime(engine.as_mut(), 1e-6, (1e6, 1e12))?;
//! assert!(t > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod blod;
mod chip;
mod engines;
mod gfun;
mod lifetime;
pub mod params;

pub use blod::{uv_from_grid_base, BlodMoments, MeanDist, VarianceDist};
pub use chip::{AnalysisBlock, BlockSpec, ChipAnalysis, ChipSpec};
pub use engines::guard::{GuardBand, GuardBandConfig};
pub use engines::hybrid::{HybridConfig, HybridTables};
pub use engines::monte_carlo::{MonteCarlo, MonteCarloConfig};
pub use engines::st_closed::StClosed;
pub use engines::st_fast::{StFast, StFastConfig, VarianceMethod};
pub use engines::st_mc::{StMc, StMcConfig};
pub use engines::composition::{Composition, CompositionAccumulator, RedundancyGroup};
pub use engines::{
    build_engine, compose_weakest_link, edit_distance, EngineKind, EngineSpec, ReliabilityEngine,
    WeakestLink,
};
pub use gfun::{conditional_block_failure, g_function, GCoefficients};
pub use lifetime::{
    burn_in_failure_probability, effective_weibull_slope, failure_rate_curve, fit_rate,
    solve_lifetime, solve_lifetime_after_burn_in,
};

use statobd_num::NumError;

/// Errors produced by the reliability analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A chip-specification or configuration parameter was invalid.
    InvalidParameter {
        /// Description of the offending parameter.
        detail: String,
    },
    /// The chip specification references grids outside the process model.
    GridMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A root solve failed to bracket or converge.
    SolveFailed {
        /// Description of the failure.
        detail: String,
    },
    /// An underlying numerical routine failed.
    Numerical(NumError),
    /// An underlying variation-model operation failed.
    Variation(statobd_variation::VariationError),
    /// An underlying device-model operation failed.
    Device(statobd_device::DeviceError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidParameter { detail } => write!(f, "invalid parameter: {detail}"),
            CoreError::GridMismatch { detail } => write!(f, "grid mismatch: {detail}"),
            CoreError::SolveFailed { detail } => write!(f, "solve failed: {detail}"),
            CoreError::Numerical(e) => write!(f, "numerical failure: {e}"),
            CoreError::Variation(e) => write!(f, "variation model failure: {e}"),
            CoreError::Device(e) => write!(f, "device model failure: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numerical(e) => Some(e),
            CoreError::Variation(e) => Some(e),
            CoreError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for CoreError {
    fn from(e: NumError) -> Self {
        CoreError::Numerical(e)
    }
}

impl From<statobd_variation::VariationError> for CoreError {
    fn from(e: statobd_variation::VariationError) -> Self {
        CoreError::Variation(e)
    }
}

impl From<statobd_device::DeviceError> for CoreError {
    fn from(e: statobd_device::DeviceError) -> Self {
        CoreError::Device(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
