//! The closed-form conditional reliability kernel (paper eq. 17).
//!
//! For a block at time `t` with Weibull parameters `(α, b)`, define
//! `γ = ln(t/α)`. The BLOD-integrated hazard of the block is
//!
//! ```text
//! g(u, v) = exp( γ·b·u + γ²·b²·v/2 )                    (eq. 17)
//! ```
//!
//! and the block's conditional failure probability is
//! `1 − exp(−A·g) = −expm1(−A·g)` — evaluated with `expm1` so the
//! 10⁻⁶-scale probabilities the lifetime criteria require survive f64
//! cancellation (see DESIGN.md).

/// Time-dependent coefficients of the `g` kernel for one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GCoefficients {
    /// `s₁ = γ·b` — the coefficient of `u`.
    pub s1: f64,
    /// `s₂ = γ²·b²/2` — the coefficient of `v`.
    pub s2: f64,
}

impl GCoefficients {
    /// Computes the coefficients for time `t_s` and block parameters
    /// `(alpha_s, b_per_nm)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for non-positive `t_s` or `alpha_s`.
    pub fn at(t_s: f64, alpha_s: f64, b_per_nm: f64) -> Self {
        debug_assert!(t_s > 0.0 && alpha_s > 0.0, "invalid time or alpha");
        Self::from_gamma((t_s / alpha_s).ln(), b_per_nm)
    }

    /// Computes the coefficients directly from `γ = ln(t/α)`.
    ///
    /// Callers that track degradation as an effective age `ξ = Σ Δt/α(T,V)`
    /// (the damage identity — a chip's failure probability depends on its
    /// stress history only through `γ = ln ξ`) land here without
    /// reconstructing a fictitious `(t, α)` pair. Bit-identical to
    /// [`GCoefficients::at`] for `γ = ln(t/α)`.
    pub fn from_gamma(gamma: f64, b_per_nm: f64) -> Self {
        let gb = gamma * b_per_nm;
        GCoefficients {
            s1: gb,
            s2: 0.5 * gb * gb,
        }
    }

    /// Evaluates `g(u, v) = exp(s₁·u + s₂·v)`.
    pub fn g(&self, u: f64, v: f64) -> f64 {
        (self.s1 * u + self.s2 * v).exp()
    }

    /// Evaluates `ln g(u, v)`.
    pub fn ln_g(&self, u: f64, v: f64) -> f64 {
        self.s1 * u + self.s2 * v
    }
}

/// `g(u, v)` for time `t` and block parameters `(α, b)` — paper eq. 17.
///
/// # Example
///
/// ```
/// use statobd_core::g_function;
///
/// // At t = α the kernel is exp(0) = 1 regardless of (u, v).
/// let g = g_function(1.0e16, 1.0e16, 0.65, 2.2, 0.001);
/// assert!((g - 1.0).abs() < 1e-12);
/// ```
pub fn g_function(t_s: f64, alpha_s: f64, b_per_nm: f64, u: f64, v: f64) -> f64 {
    GCoefficients::at(t_s, alpha_s, b_per_nm).g(u, v)
}

/// Conditional block failure probability `1 − exp(−A·g)`, evaluated
/// cancellation-free.
pub fn conditional_block_failure(area: f64, g: f64) -> f64 {
    -(-area * g).exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;
    use statobd_num::quad::{integrate_1d, QuadRule};
    use statobd_num::special::norm_pdf;

    #[test]
    fn g_matches_gaussian_integral_identity() {
        // Eq. 17 is the Gaussian MGF identity:
        //   ∫ φ((x−u)/√v)/√v (t/α)^{bx} dx = e^{γbu + γ²b²v/2}.
        // Verify numerically.
        let (t, alpha, b) = (1e12_f64, 1e16_f64, 0.65);
        let (u, v) = (2.2_f64, 0.0009_f64);
        let gamma = (t / alpha).ln();
        let sd = v.sqrt();
        let numeric = integrate_1d(
            QuadRule::GaussLegendre,
            200,
            u - 12.0 * sd,
            u + 12.0 * sd,
            |x| norm_pdf((x - u) / sd) / sd * (gamma * b * x).exp(),
        )
        .unwrap();
        let closed = g_function(t, alpha, b, u, v);
        assert!(
            ((numeric - closed) / closed).abs() < 1e-9,
            "numeric {numeric} vs closed {closed}"
        );
    }

    #[test]
    fn g_decreases_with_thickness_before_alpha() {
        // For t < α (γ < 0), thicker mean oxide → smaller g → more
        // reliable.
        let c = GCoefficients::at(1e10, 1e16, 0.65);
        assert!(c.s1 < 0.0);
        assert!(c.g(2.3, 1e-4) < c.g(2.1, 1e-4));
    }

    #[test]
    fn g_increases_with_blod_variance() {
        // s₂ ≥ 0 always: within-block spread always hurts reliability.
        let c = GCoefficients::at(1e10, 1e16, 0.65);
        assert!(c.s2 > 0.0);
        assert!(c.g(2.2, 2e-3) > c.g(2.2, 1e-3));
    }

    #[test]
    fn conditional_failure_small_probability_accuracy() {
        // For A·g = 1e-9 the naive 1 − exp(−x) loses 7 digits; expm1 keeps
        // full precision.
        let p = conditional_block_failure(1e5, 1e-14);
        assert!((p - 1e-9).abs() / 1e-9 < 1e-9);
    }

    #[test]
    fn conditional_failure_saturates_at_one() {
        assert!((conditional_block_failure(1e5, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_gamma_matches_at_bitwise() {
        for (t, alpha, b) in [(1e10, 1e16, 0.65), (3e9, 2e16, 0.6), (1e16, 1e16, 0.7)] {
            let via_at = GCoefficients::at(t, alpha, b);
            let via_gamma = GCoefficients::from_gamma((t / alpha).ln(), b);
            assert_eq!(via_at.s1.to_bits(), via_gamma.s1.to_bits());
            assert_eq!(via_at.s2.to_bits(), via_gamma.s2.to_bits());
        }
    }

    #[test]
    fn ln_g_consistency() {
        let c = GCoefficients::at(3e9, 2e16, 0.6);
        let (u, v) = (2.25, 5e-4);
        assert!((c.ln_g(u, v).exp() - c.g(u, v)).abs() < 1e-12 * c.g(u, v));
    }
}
