//! Lifetime solving (paper eq. 32): inverting the ensemble failure
//! probability for the n-faults-per-million-parts criteria.

use crate::engines::ReliabilityEngine;
use crate::{CoreError, Result};

/// Solves `P(t) = p_target` for `t` by bracket expansion plus a
/// multi-section search on `ln t`.
///
/// `bracket = (t_lo, t_hi)` is the initial search interval (seconds); it
/// is expanded geometrically (up to 60 ×4 steps each way) if the root
/// lies outside. All probes go through
/// [`ReliabilityEngine::failure_probabilities`] in batches sized by the
/// engine's [`ReliabilityEngine::sweep_batch_hint`], so engines with a
/// large per-call fixed cost (Monte-Carlo histogram sweeps) or an internal
/// thread fan-out answer several probes per round trip; for hint-1 engines
/// this degenerates to classic bisection.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for a non-positive bracket or a
///   target outside `(0, 1)`,
/// * [`CoreError::SolveFailed`] if no bracket contains the root (e.g. the
///   engine's probability saturates below the target),
/// * any engine evaluation error.
///
/// # Example
///
/// ```
/// use statobd_core::{solve_lifetime, ReliabilityEngine, Result};
///
/// // A toy engine: P(t) = 1 − exp(−(t/1e9)²).
/// #[derive(Debug)]
/// struct Toy;
/// impl ReliabilityEngine for Toy {
///     fn name(&self) -> &str { "toy" }
///     fn failure_probability(&mut self, t: f64) -> Result<f64> {
///         Ok(-(-(t / 1e9_f64).powi(2)).exp_m1())
///     }
/// }
/// let t = solve_lifetime(&mut Toy, 1e-6, (1.0, 1e12))?;
/// assert!((t - 1e6).abs() / 1e6 < 1e-6); // analytic root: 1e9·sqrt(1e-6)
/// # Ok::<(), statobd_core::CoreError>(())
/// ```
pub fn solve_lifetime<E: ReliabilityEngine + ?Sized>(
    engine: &mut E,
    p_target: f64,
    bracket: (f64, f64),
) -> Result<f64> {
    let (mut t_lo, mut t_hi) = bracket;
    if !(0.0 < p_target && p_target < 1.0) {
        return Err(CoreError::InvalidParameter {
            detail: format!("target probability must be in (0,1), got {p_target}"),
        });
    }
    if !(t_lo > 0.0) || !(t_hi > t_lo) {
        return Err(CoreError::InvalidParameter {
            detail: format!("invalid bracket ({t_lo}, {t_hi})"),
        });
    }

    // All probes go through the batched API; the engine's hint says how
    // many points per call it can absorb at little extra cost (1 = plain
    // bisection, which minimizes total evaluations for scalar engines).
    let k = engine.sweep_batch_hint().clamp(1, 32);

    // Expand until the bracket straddles the target, probing a geometric
    // ladder of up-to-`k` candidates per call (÷4 rungs downward, ×4
    // upward — the same ×4 steps and 60-expansion cap as the scalar
    // search). Every failing rung is itself a valid bound, so the
    // opposite side tightens for free.
    let mut probes_left = 61usize; // the original bound + 60 expansions
    let mut t = t_lo;
    loop {
        let rungs: Vec<f64> = (0..k.min(probes_left))
            .map(|i| t / 4f64.powi(i as i32))
            .collect();
        let ps = engine.failure_probabilities(&rungs)?;
        if let Some(i) = ps.iter().position(|&p| p <= p_target) {
            t_lo = rungs[i];
            if i > 0 {
                t_hi = t_hi.min(rungs[i - 1]);
            }
            break;
        }
        probes_left -= rungs.len();
        if probes_left == 0 {
            return Err(CoreError::SolveFailed {
                detail: format!(
                    "failure probability still {:.3e} > target {p_target:.3e} at t={:.3e}",
                    ps[ps.len() - 1],
                    rungs[rungs.len() - 1]
                ),
            });
        }
        t_hi = t_hi.min(rungs[rungs.len() - 1]);
        t = rungs[rungs.len() - 1] / 4.0;
    }
    let mut probes_left = 61usize;
    let mut t = t_hi;
    loop {
        let rungs: Vec<f64> = (0..k.min(probes_left))
            .map(|i| t * 4f64.powi(i as i32))
            .collect();
        let ps = engine.failure_probabilities(&rungs)?;
        if let Some(i) = ps.iter().position(|&p| p >= p_target) {
            t_hi = rungs[i];
            if i > 0 {
                t_lo = t_lo.max(rungs[i - 1]);
            }
            break;
        }
        probes_left -= rungs.len();
        if probes_left == 0 {
            return Err(CoreError::SolveFailed {
                detail: format!(
                    "failure probability only {:.3e} < target {p_target:.3e} at t={:.3e}",
                    ps[ps.len() - 1],
                    rungs[rungs.len() - 1]
                ),
            });
        }
        t_lo = t_lo.max(rungs[rungs.len() - 1]);
        t = rungs[rungs.len() - 1] * 4.0;
    }

    // Multi-section search on ln t: `k` equispaced interior points per
    // call shrink the bracket by (k+1)× per round (k = 1 is classic
    // bisection).
    let mut ln_lo = t_lo.ln();
    let mut ln_hi = t_hi.ln();
    for _ in 0..200 {
        if ln_hi - ln_lo < 1e-10 {
            break;
        }
        let step = (ln_hi - ln_lo) / (k as f64 + 1.0);
        let mids: Vec<f64> = (1..=k).map(|i| (ln_lo + step * i as f64).exp()).collect();
        let ps = engine.failure_probabilities(&mids)?;
        let idx = ps.iter().position(|&p| p >= p_target).unwrap_or(k);
        let new_hi = if idx == k {
            ln_hi
        } else {
            ln_lo + step * (idx + 1) as f64
        };
        ln_lo += step * idx as f64;
        ln_hi = new_hi;
    }
    Ok((0.5 * (ln_lo + ln_hi)).exp())
}

/// Evaluates the failure-rate curve `P(t)` at `n` log-spaced times over
/// `[t_lo, t_hi]` — the raw material for the paper's Fig. 10.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for a degenerate range or `n < 2`,
/// * any engine evaluation error.
pub fn failure_rate_curve<E: ReliabilityEngine + ?Sized>(
    engine: &mut E,
    t_lo: f64,
    t_hi: f64,
    n: usize,
) -> Result<Vec<(f64, f64)>> {
    if !(t_lo > 0.0) || !(t_hi > t_lo) || n < 2 {
        return Err(CoreError::InvalidParameter {
            detail: format!("invalid curve request: [{t_lo}, {t_hi}] with {n} points"),
        });
    }
    let ratio = (t_hi / t_lo).ln();
    let ts: Vec<f64> = (0..n)
        .map(|i| t_lo * (ratio * i as f64 / (n - 1) as f64).exp())
        .collect();
    // One batched call: engines amortize their per-sweep state (weight
    // tables, node sets) over the whole curve.
    let ps = engine.failure_probabilities(&ts)?;
    Ok(ts.into_iter().zip(ps).collect())
}

/// Post-burn-in failure probability: the probability a chip that survived
/// a burn-in of duration `t_burn_s` fails within the following
/// `t_service_s` of service,
///
/// ```text
/// P(T ≤ t_b + t_s | T > t_b) = (P(t_b + t_s) − P(t_b)) / (1 − P(t_b)).
/// ```
///
/// Because the ensemble mixes over process variation, the population
/// hazard at early times is dominated by thin-oxide outlier dies;
/// burn-in screens those out, which is why this conditional probability
/// can be lower than the fresh-chip `P(t_s)` even though each individual
/// die has an increasing (β > 1) hazard.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for non-positive durations,
/// * any engine evaluation error.
pub fn burn_in_failure_probability<E: ReliabilityEngine + ?Sized>(
    engine: &mut E,
    t_burn_s: f64,
    t_service_s: f64,
) -> Result<f64> {
    if !(t_burn_s > 0.0) || !(t_service_s > 0.0) {
        return Err(CoreError::InvalidParameter {
            detail: format!("durations must be positive, got ({t_burn_s}, {t_service_s})"),
        });
    }
    let ps = engine.failure_probabilities(&[t_burn_s, t_burn_s + t_service_s])?;
    let (p_burn, p_total) = (ps[0], ps[1]);
    Ok(((p_total - p_burn) / (1.0 - p_burn)).clamp(0.0, 1.0))
}

/// Service lifetime after burn-in: the largest `t_service` such that a
/// burn-in survivor's failure probability over `t_service` stays at or
/// below `p_target` (the burn-in-aware version of [`solve_lifetime`]).
///
/// # Errors
///
/// Same conditions as [`solve_lifetime`].
pub fn solve_lifetime_after_burn_in<E: ReliabilityEngine + ?Sized>(
    engine: &mut E,
    p_target: f64,
    t_burn_s: f64,
    bracket: (f64, f64),
) -> Result<f64> {
    if !(t_burn_s > 0.0) {
        return Err(CoreError::InvalidParameter {
            detail: format!("burn-in duration must be positive, got {t_burn_s}"),
        });
    }
    // Wrap the engine in the conditional transform and reuse the solver.
    struct BurnIn<'e, E: ?Sized> {
        inner: &'e mut E,
        t_burn: f64,
        p_burn: f64,
    }
    impl<E: ReliabilityEngine + ?Sized> ReliabilityEngine for BurnIn<'_, E> {
        fn name(&self) -> &str {
            "burn_in"
        }
        fn failure_probability(&mut self, t_s: f64) -> Result<f64> {
            let p_total = self.inner.failure_probability(self.t_burn + t_s)?;
            Ok(((p_total - self.p_burn) / (1.0 - self.p_burn)).clamp(0.0, 1.0))
        }
        fn failure_probabilities(&mut self, ts: &[f64]) -> Result<Vec<f64>> {
            let shifted: Vec<f64> = ts.iter().map(|&t| self.t_burn + t).collect();
            Ok(self
                .inner
                .failure_probabilities(&shifted)?
                .into_iter()
                .map(|p_total| ((p_total - self.p_burn) / (1.0 - self.p_burn)).clamp(0.0, 1.0))
                .collect())
        }
        fn sweep_batch_hint(&self) -> usize {
            self.inner.sweep_batch_hint()
        }
    }
    let p_burn = engine.failure_probability(t_burn_s)?;
    let mut wrapped = BurnIn {
        inner: engine,
        t_burn: t_burn_s,
        p_burn,
    };
    solve_lifetime(&mut wrapped, p_target, bracket)
}

/// Instantaneous FIT rate at time `t`: expected failures per 10⁹
/// device-hours of the *chip* population,
/// `FIT(t) = h(t)·3600·10⁹` with the hazard `h(t) = P'(t)/(1 − P(t))`
/// estimated by a centered log-spaced finite difference.
///
/// FIT is the unit qualification teams quote; a 1-ppm-at-10-years part is
/// roughly in the single-digit-FIT regime.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for a non-positive time,
/// * any engine evaluation error.
pub fn fit_rate<E: ReliabilityEngine + ?Sized>(engine: &mut E, t_s: f64) -> Result<f64> {
    if !(t_s > 0.0) {
        return Err(CoreError::InvalidParameter {
            detail: format!("time must be positive, got {t_s}"),
        });
    }
    let h = 0.01;
    let ps = engine.failure_probabilities(&[t_s * (1.0 - h), t_s * (1.0 + h), t_s])?;
    let (p_lo, p_hi, p_mid) = (ps[0], ps[1], ps[2]);
    let dp_dt = (p_hi - p_lo) / (2.0 * h * t_s);
    let hazard_per_s = dp_dt / (1.0 - p_mid).max(f64::MIN_POSITIVE);
    Ok(hazard_per_s * 3600.0 * 1e9)
}

/// Effective chip-level Weibull slope at time `t`:
/// `β_eff(t) = d ln(−ln(1−P)) / d ln t` (the slope on a Weibull
/// probability plot), estimated by a centered log-spaced finite
/// difference.
///
/// For a chip whose blocks share one `β = b·x` this equals that β; with
/// per-block temperatures (different `b_j`) and process variation the
/// population slope deviates — a compact summary of how "Weibull-like"
/// the chip-level failure law still is.
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for a non-positive time,
/// * [`CoreError::SolveFailed`] if `P(t)` is zero at the probe points
///   (too early to estimate a slope),
/// * any engine evaluation error.
pub fn effective_weibull_slope<E: ReliabilityEngine + ?Sized>(
    engine: &mut E,
    t_s: f64,
) -> Result<f64> {
    if !(t_s > 0.0) {
        return Err(CoreError::InvalidParameter {
            detail: format!("time must be positive, got {t_s}"),
        });
    }
    let ratio = 1.05;
    let ps = engine.failure_probabilities(&[t_s / ratio, t_s * ratio])?;
    let (p_lo, p_hi) = (ps[0], ps[1]);
    if !(p_lo > 0.0) || !(p_hi > 0.0) || p_hi >= 1.0 {
        return Err(CoreError::SolveFailed {
            detail: format!("failure probability out of range near t = {t_s:e}"),
        });
    }
    // Weibull-plot ordinate: ln(−ln(1−P)), computed via ln1p for accuracy
    // at the ppm scale.
    let w_lo = (-(-p_lo).ln_1p()).ln();
    let w_hi = (-(-p_hi).ln_1p()).ln();
    Ok((w_hi - w_lo) / (2.0 * ratio.ln()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// P(t) = 1 − exp(−(t/τ)^β) with closed-form quantiles.
    #[derive(Debug)]
    struct Weib {
        tau: f64,
        beta: f64,
    }

    impl ReliabilityEngine for Weib {
        fn name(&self) -> &str {
            "weib"
        }
        fn failure_probability(&mut self, t: f64) -> Result<f64> {
            Ok(-(-(t / self.tau).powf(self.beta)).exp_m1())
        }
    }

    #[test]
    fn recovers_analytic_quantiles() {
        let mut e = Weib {
            tau: 3e9,
            beta: 1.43,
        };
        for &p in &[1e-6, 1e-5, 1e-3] {
            let t = solve_lifetime(&mut e, p, (1.0, 1e12)).unwrap();
            let expected = 3e9 * (-(-p).ln_1p()).powf(1.0 / 1.43);
            assert!(
                ((t - expected) / expected).abs() < 1e-8,
                "p={p}: {t:.6e} vs {expected:.6e}"
            );
        }
    }

    #[test]
    fn bracket_expansion_works_both_ways() {
        let mut e = Weib {
            tau: 3e9,
            beta: 1.43,
        };
        // Bracket far above the root.
        let t = solve_lifetime(&mut e, 1e-6, (1e11, 1e12)).unwrap();
        let expected = 3e9 * (-(1.0f64 - 1e-6).ln()).powf(1.0 / 1.43);
        assert!(((t - expected) / expected).abs() < 1e-8);
        // Bracket far below the root.
        let t2 = solve_lifetime(&mut e, 1e-6, (1e-3, 1e-2)).unwrap();
        assert!(((t2 - expected) / expected).abs() < 1e-8);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let mut e = Weib {
            tau: 1e9,
            beta: 1.0,
        };
        assert!(solve_lifetime(&mut e, 0.0, (1.0, 1e12)).is_err());
        assert!(solve_lifetime(&mut e, 1.0, (1.0, 1e12)).is_err());
        assert!(solve_lifetime(&mut e, 0.5, (0.0, 1e12)).is_err());
        assert!(solve_lifetime(&mut e, 0.5, (1e12, 1.0)).is_err());
    }

    #[test]
    fn saturating_engine_reports_failure() {
        // An engine that never reaches the target.
        #[derive(Debug)]
        struct Flat;
        impl ReliabilityEngine for Flat {
            fn name(&self) -> &str {
                "flat"
            }
            fn failure_probability(&mut self, _t: f64) -> Result<f64> {
                Ok(1e-9)
            }
        }
        assert!(matches!(
            solve_lifetime(&mut Flat, 1e-3, (1.0, 10.0)),
            Err(CoreError::SolveFailed { .. })
        ));
    }

    #[test]
    fn curve_is_log_spaced_and_monotone() {
        let mut e = Weib {
            tau: 1e9,
            beta: 2.0,
        };
        let curve = failure_rate_curve(&mut e, 1e6, 1e10, 9).unwrap();
        assert_eq!(curve.len(), 9);
        assert!((curve[0].0 - 1e6).abs() < 1.0);
        assert!((curve[8].0 - 1e10).abs() < 1e4);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
            // Log spacing: constant ratio.
            let r = w[1].0 / w[0].0;
            assert!((r - 10f64.powf(0.5)).abs() < 1e-6);
        }
        assert!(failure_rate_curve(&mut e, 1e6, 1e5, 4).is_err());
        assert!(failure_rate_curve(&mut e, 1e6, 1e10, 1).is_err());
    }

    #[test]
    fn fit_rate_matches_weibull_hazard() {
        // Weibull hazard: h(t) = (β/τ)(t/τ)^{β−1}.
        let mut e = Weib {
            tau: 1e9,
            beta: 1.76,
        };
        let t = 2e8;
        let fit = fit_rate(&mut e, t).unwrap();
        let hazard = (1.76 / 1e9) * (t / 1e9_f64).powf(0.76);
        let expected = hazard * 3600.0 * 1e9;
        assert!(
            ((fit - expected) / expected).abs() < 1e-3,
            "fit {fit:e} vs {expected:e}"
        );
        assert!(fit_rate(&mut e, 0.0).is_err());
    }

    #[test]
    fn effective_slope_recovers_weibull_beta() {
        let mut e = Weib {
            tau: 3e9,
            beta: 1.76,
        };
        for &t in &[1e7, 1e8, 1e9] {
            let slope = effective_weibull_slope(&mut e, t).unwrap();
            assert!((slope - 1.76).abs() < 1e-6, "slope {slope} at t={t:e}");
        }
        assert!(effective_weibull_slope(&mut e, -1.0).is_err());
    }

    #[test]
    fn burn_in_conditional_probability_matches_formula() {
        let mut e = Weib {
            tau: 1e9,
            beta: 1.5,
        };
        let (tb, ts) = (1e7, 1e8);
        let p = burn_in_failure_probability(&mut e, tb, ts).unwrap();
        let p_b = e.failure_probability(tb).unwrap();
        let p_t = e.failure_probability(tb + ts).unwrap();
        let expected = (p_t - p_b) / (1.0 - p_b);
        assert!((p - expected).abs() < 1e-15);
        assert!(burn_in_failure_probability(&mut e, 0.0, 1e8).is_err());
        assert!(burn_in_failure_probability(&mut e, 1e7, 0.0).is_err());
    }

    #[test]
    fn burn_in_hurts_increasing_hazard_weibull() {
        // For a pure Weibull with β > 1 (no population mixture), burn-in
        // consumes life: the post-burn-in service lifetime is shorter.
        let mut e = Weib {
            tau: 1e10,
            beta: 1.76,
        };
        let fresh = solve_lifetime(&mut e, 1e-6, (1.0, 1e12)).unwrap();
        let after = solve_lifetime_after_burn_in(&mut e, 1e-6, fresh / 2.0, (1.0, 1e12)).unwrap();
        assert!(after < fresh);
    }

    #[test]
    fn burn_in_helps_mixture_population() {
        // A 2-component mixture: 0.1% weak parts (tau 1e6) in a strong
        // population (tau 1e10). Burning in past the weak parts' lives
        // extends the certified ppm service lifetime.
        #[derive(Debug)]
        struct Mixture;
        impl ReliabilityEngine for Mixture {
            fn name(&self) -> &str {
                "mixture"
            }
            fn failure_probability(&mut self, t: f64) -> Result<f64> {
                let weak = -(-(t / 1e6_f64).powf(1.76)).exp_m1();
                let strong = -(-(t / 1e10_f64).powf(1.76)).exp_m1();
                Ok(1e-3 * weak + (1.0 - 1e-3) * strong)
            }
        }
        let fresh = solve_lifetime(&mut Mixture, 1e-5, (1.0, 1e12)).unwrap();
        let after = solve_lifetime_after_burn_in(&mut Mixture, 1e-5, 5e6, (1.0, 1e12)).unwrap();
        assert!(
            after > 2.0 * fresh,
            "burn-in should screen the weak parts: fresh {fresh:e}, after {after:e}"
        );
    }
}
