//! Chip specifications and the per-block analysis context.
//!
//! A [`ChipSpec`] describes a design at the granularity the analysis
//! needs: temperature-uniform blocks with device counts, normalized areas,
//! operating points, and how each block's devices distribute over the
//! correlation grids. [`ChipAnalysis`] binds a spec to a process model and
//! technology and precomputes every block's BLOD moments and Weibull
//! parameters.

use crate::blod::BlodMoments;
use crate::engines::composition::Composition;
use crate::{CoreError, Result};
use statobd_device::ObdTechnology;
use statobd_num::impl_json_struct;
use statobd_variation::ThicknessModel;

/// One temperature-uniform functional block (the paper's "block").
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    name: String,
    /// Total normalized gate area `A_j` (minimum-device-area units).
    area: f64,
    /// Device count `m_j`.
    m_devices: u64,
    /// Block-level worst-case operating temperature (K).
    temperature_k: f64,
    /// Block supply voltage (V).
    voltage_v: f64,
    /// `(grid index, weight)` pairs: the fraction of the block's devices
    /// (and area) in each correlation grid. Weights must sum to 1.
    grid_weights: Vec<(usize, f64)>,
}

impl_json_struct!(BlockSpec {
    name,
    area,
    m_devices,
    temperature_k,
    voltage_v,
    grid_weights
});

impl BlockSpec {
    /// Creates a block specification.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for non-positive area,
    /// fewer than 2 devices, a non-physical operating point, or weights
    /// that are negative/empty/don't sum to 1 (tolerance `1e-6`).
    pub fn new(
        name: impl Into<String>,
        area: f64,
        m_devices: u64,
        temperature_k: f64,
        voltage_v: f64,
        grid_weights: Vec<(usize, f64)>,
    ) -> Result<Self> {
        let name = name.into();
        if name.is_empty() {
            return Err(CoreError::InvalidParameter {
                detail: "block name must be non-empty".to_string(),
            });
        }
        if !(area > 0.0) || !area.is_finite() {
            return Err(CoreError::InvalidParameter {
                detail: format!("block '{name}': area must be positive, got {area}"),
            });
        }
        if m_devices < 2 {
            return Err(CoreError::InvalidParameter {
                detail: format!("block '{name}': needs at least 2 devices, got {m_devices}"),
            });
        }
        if !(temperature_k > 0.0) || !(voltage_v > 0.0) {
            return Err(CoreError::InvalidParameter {
                detail: format!(
                    "block '{name}': operating point must be positive, got {temperature_k} K, {voltage_v} V"
                ),
            });
        }
        if grid_weights.is_empty() {
            return Err(CoreError::InvalidParameter {
                detail: format!("block '{name}': needs at least one grid weight"),
            });
        }
        if grid_weights.iter().any(|&(_, w)| w < 0.0 || !w.is_finite()) {
            return Err(CoreError::InvalidParameter {
                detail: format!("block '{name}': weights must be non-negative"),
            });
        }
        let sum: f64 = grid_weights.iter().map(|&(_, w)| w).sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(CoreError::InvalidParameter {
                detail: format!("block '{name}': grid weights sum to {sum}, expected 1"),
            });
        }
        Ok(BlockSpec {
            name,
            area,
            m_devices,
            temperature_k,
            voltage_v,
            grid_weights,
        })
    }

    /// The block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total normalized gate area `A_j`.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Device count `m_j`.
    pub fn m_devices(&self) -> u64 {
        self.m_devices
    }

    /// Block worst-case temperature (K).
    pub fn temperature_k(&self) -> f64 {
        self.temperature_k
    }

    /// Block supply voltage (V).
    pub fn voltage_v(&self) -> f64 {
        self.voltage_v
    }

    /// Device distribution over correlation grids.
    pub fn grid_weights(&self) -> &[(usize, f64)] {
        &self.grid_weights
    }

    /// Returns a copy with a different operating temperature (used for the
    /// temperature-unaware comparison mode).
    pub fn with_temperature(&self, temperature_k: f64) -> Self {
        BlockSpec {
            temperature_k,
            ..self.clone()
        }
    }
}

/// A chip specification: the set of temperature-uniform blocks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChipSpec {
    blocks: Vec<BlockSpec>,
}

impl_json_struct!(ChipSpec { blocks });

impl ChipSpec {
    /// Creates an empty specification.
    pub fn new() -> Self {
        ChipSpec { blocks: Vec::new() }
    }

    /// Adds a block.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on duplicate block names.
    pub fn add_block(&mut self, block: BlockSpec) -> Result<()> {
        if self.blocks.iter().any(|b| b.name() == block.name()) {
            return Err(CoreError::InvalidParameter {
                detail: format!("duplicate block name '{}'", block.name()),
            });
        }
        self.blocks.push(block);
        Ok(())
    }

    /// The blocks in insertion order.
    pub fn blocks(&self) -> &[BlockSpec] {
        &self.blocks
    }

    /// Number of blocks `N`.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total device count `m`.
    pub fn total_devices(&self) -> u64 {
        self.blocks.iter().map(|b| b.m_devices()).sum()
    }

    /// Total normalized area `A`.
    pub fn total_area(&self) -> f64 {
        self.blocks.iter().map(|b| b.area()).sum()
    }

    /// The hottest block temperature (K) — the traditional methods'
    /// "worst operating temperature".
    ///
    /// Returns `None` for an empty spec.
    pub fn max_temperature_k(&self) -> Option<f64> {
        self.blocks
            .iter()
            .map(|b| b.temperature_k())
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Returns a copy with every block at the chip's worst-case
    /// temperature (the "temperature-unaware" comparison mode of the
    /// paper's Fig. 10).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the spec is empty.
    pub fn with_uniform_worst_temperature(&self) -> Result<Self> {
        let worst = self
            .max_temperature_k()
            .ok_or_else(|| CoreError::InvalidParameter {
                detail: "cannot take worst temperature of an empty spec".to_string(),
            })?;
        Ok(ChipSpec {
            blocks: self
                .blocks
                .iter()
                .map(|b| b.with_temperature(worst))
                .collect(),
        })
    }
}

/// A block with its derived analysis quantities.
#[derive(Debug, Clone)]
pub struct AnalysisBlock {
    spec: BlockSpec,
    /// Weibull scale `α_j` (s) at the block operating point.
    alpha_s: f64,
    /// Weibull thickness coefficient `b_j` (1/nm) at the block temperature.
    b_per_nm: f64,
    /// The block's BLOD moments.
    moments: BlodMoments,
}

impl_json_struct!(AnalysisBlock {
    spec,
    alpha_s,
    b_per_nm,
    moments
});

impl AnalysisBlock {
    /// The underlying block specification.
    pub fn spec(&self) -> &BlockSpec {
        &self.spec
    }

    /// Weibull scale `α_j` (s).
    pub fn alpha_s(&self) -> f64 {
        self.alpha_s
    }

    /// Weibull thickness coefficient `b_j` (1/nm).
    pub fn b_per_nm(&self) -> f64 {
        self.b_per_nm
    }

    /// The BLOD moments.
    pub fn moments(&self) -> &BlodMoments {
        &self.moments
    }
}

/// A chip bound to a process model and technology, with all per-block
/// quantities precomputed — the input to every reliability engine.
#[derive(Debug, Clone)]
pub struct ChipAnalysis {
    spec: ChipSpec,
    model: ThicknessModel,
    blocks: Vec<AnalysisBlock>,
    /// How blocks compose into the chip-level failure probability;
    /// weakest-link unless [`with_composition`](Self::with_composition)
    /// installed redundancy groups.
    composition: Composition,
}

impl ChipAnalysis {
    /// Characterizes every block of `spec` against the process `model` and
    /// `tech` (paper step 1: eqs. 22/24 + Weibull parameters).
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for an empty spec,
    /// * [`CoreError::GridMismatch`] if a block references a grid outside
    ///   the model.
    pub fn new<T: ObdTechnology + ?Sized>(
        spec: ChipSpec,
        model: ThicknessModel,
        tech: &T,
    ) -> Result<Self> {
        if spec.n_blocks() == 0 {
            return Err(CoreError::InvalidParameter {
                detail: "chip spec has no blocks".to_string(),
            });
        }
        let n_grids = model.n_grids();
        let mut blocks = Vec::with_capacity(spec.n_blocks());
        for b in spec.blocks() {
            if let Some(&(g, _)) = b.grid_weights().iter().find(|&&(g, _)| g >= n_grids) {
                return Err(CoreError::GridMismatch {
                    detail: format!(
                        "block '{}' references grid {g} but the model has {n_grids} grids",
                        b.name()
                    ),
                });
            }
            let moments = BlodMoments::characterize(&model, b)?;
            blocks.push(AnalysisBlock {
                spec: b.clone(),
                alpha_s: tech.alpha(b.temperature_k(), b.voltage_v()),
                b_per_nm: tech.b(b.temperature_k()),
                moments,
            });
        }
        Ok(ChipAnalysis {
            spec,
            model,
            blocks,
            composition: Composition::WeakestLink,
        })
    }

    /// Reassembles an analysis from previously characterized parts — the
    /// artifact-cache load path, which must skip BLOD characterization
    /// (and hence every eigendecomposition) entirely.
    ///
    /// Validates the structural invariants: one analysis block per spec
    /// block with matching names, grid references inside the model, and
    /// BLOD component counts matching the model. The numerical content of
    /// the moments is trusted — it is whatever characterization produced
    /// at build time (the artifact layer checksums it).
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for an empty or inconsistent
    ///   block list,
    /// * [`CoreError::GridMismatch`] if a block references a grid outside
    ///   the model.
    pub fn from_parts(
        spec: ChipSpec,
        model: ThicknessModel,
        blocks: Vec<AnalysisBlock>,
    ) -> Result<Self> {
        if spec.n_blocks() == 0 {
            return Err(CoreError::InvalidParameter {
                detail: "chip spec has no blocks".to_string(),
            });
        }
        if blocks.len() != spec.n_blocks() {
            return Err(CoreError::InvalidParameter {
                detail: format!(
                    "{} analysis blocks for {} spec blocks",
                    blocks.len(),
                    spec.n_blocks()
                ),
            });
        }
        let n_grids = model.n_grids();
        let n_pc = model.n_components();
        for (s, a) in spec.blocks().iter().zip(&blocks) {
            if s.name() != a.spec.name() {
                return Err(CoreError::InvalidParameter {
                    detail: format!(
                        "analysis block '{}' does not match spec block '{}'",
                        a.spec.name(),
                        s.name()
                    ),
                });
            }
            if let Some(&(g, _)) = s.grid_weights().iter().find(|&&(g, _)| g >= n_grids) {
                return Err(CoreError::GridMismatch {
                    detail: format!(
                        "block '{}' references grid {g} but the model has {n_grids} grids",
                        s.name()
                    ),
                });
            }
            if a.moments.u_coeffs().len() != n_pc {
                return Err(CoreError::InvalidParameter {
                    detail: format!(
                        "block '{}' has {} BLOD components but the model has {}",
                        s.name(),
                        a.moments.u_coeffs().len(),
                        n_pc
                    ),
                });
            }
        }
        Ok(ChipAnalysis {
            spec,
            model,
            blocks,
            composition: Composition::WeakestLink,
        })
    }

    /// Installs a block composition (redundancy groups with spares),
    /// validated against this chip's block count. Every engine built over
    /// the analysis composes through it; the default is weakest-link.
    ///
    /// # Errors
    ///
    /// Propagates [`Composition::validate`] failures.
    pub fn with_composition(mut self, composition: Composition) -> Result<Self> {
        composition.validate(self.n_blocks())?;
        self.composition = composition;
        Ok(self)
    }

    /// How this chip's blocks compose into the chip-level failure
    /// probability.
    pub fn composition(&self) -> &Composition {
        &self.composition
    }

    /// The chip specification.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// The process model.
    pub fn model(&self) -> &ThicknessModel {
        &self.model
    }

    /// The analyzed blocks.
    pub fn blocks(&self) -> &[AnalysisBlock] {
        &self.blocks
    }

    /// Number of blocks `N`.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl statobd_num::json::ToJson for ChipAnalysis {
    fn to_json(&self) -> statobd_num::json::Json {
        use statobd_num::json::Json;
        let mut members = vec![
            ("spec".to_string(), self.spec.to_json()),
            ("model".to_string(), self.model.to_json()),
            ("blocks".to_string(), self.blocks.to_json()),
        ];
        // Weakest-link stays implicit so pre-composition artifacts and
        // their checksums keep rendering byte-identically.
        if !self.composition.is_weakest_link() {
            members.push(("composition".to_string(), self.composition.to_json()));
        }
        Json::Object(members)
    }
}

impl statobd_num::json::FromJson for ChipAnalysis {
    fn from_json(v: &statobd_num::json::Json) -> statobd_num::json::Result<Self> {
        use statobd_num::json::JsonError;
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| JsonError::new(format!("missing field '{k}' in ChipAnalysis")))
        };
        let analysis = ChipAnalysis::from_parts(
            ChipSpec::from_json(field("spec")?)?,
            ThicknessModel::from_json(field("model")?)?,
            Vec::<AnalysisBlock>::from_json(field("blocks")?)?,
        )
        .map_err(|e| JsonError::new(e.to_string()))?;
        match v.get("composition") {
            None => Ok(analysis),
            Some(c) => analysis
                .with_composition(Composition::from_json(c)?)
                .map_err(|e| JsonError::new(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statobd_device::ClosedFormTech;
    use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

    fn model(n: usize) -> ThicknessModel {
        ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(n).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap()
    }

    fn block(name: &str, t_k: f64, grids: Vec<(usize, f64)>) -> BlockSpec {
        BlockSpec::new(name, 10_000.0, 10_000, t_k, 1.2, grids).unwrap()
    }

    #[test]
    fn block_spec_validation() {
        assert!(BlockSpec::new("", 1.0, 10, 350.0, 1.2, vec![(0, 1.0)]).is_err());
        assert!(BlockSpec::new("b", 0.0, 10, 350.0, 1.2, vec![(0, 1.0)]).is_err());
        assert!(BlockSpec::new("b", 1.0, 1, 350.0, 1.2, vec![(0, 1.0)]).is_err());
        assert!(BlockSpec::new("b", 1.0, 10, -1.0, 1.2, vec![(0, 1.0)]).is_err());
        assert!(BlockSpec::new("b", 1.0, 10, 350.0, 1.2, vec![]).is_err());
        assert!(BlockSpec::new("b", 1.0, 10, 350.0, 1.2, vec![(0, 0.5)]).is_err());
        assert!(BlockSpec::new("b", 1.0, 10, 350.0, 1.2, vec![(0, -0.5), (1, 1.5)]).is_err());
        assert!(BlockSpec::new("b", 1.0, 10, 350.0, 1.2, vec![(0, 0.4), (1, 0.6)]).is_ok());
    }

    #[test]
    fn chip_spec_accounting() {
        let mut spec = ChipSpec::new();
        spec.add_block(block("a", 350.0, vec![(0, 1.0)])).unwrap();
        spec.add_block(block("b", 370.0, vec![(1, 1.0)])).unwrap();
        assert_eq!(spec.n_blocks(), 2);
        assert_eq!(spec.total_devices(), 20_000);
        assert_eq!(spec.total_area(), 20_000.0);
        assert_eq!(spec.max_temperature_k(), Some(370.0));
        // Duplicate name rejected.
        assert!(spec.add_block(block("a", 350.0, vec![(0, 1.0)])).is_err());
    }

    #[test]
    fn worst_temperature_mode_flattens() {
        let mut spec = ChipSpec::new();
        spec.add_block(block("a", 350.0, vec![(0, 1.0)])).unwrap();
        spec.add_block(block("b", 370.0, vec![(1, 1.0)])).unwrap();
        let flat = spec.with_uniform_worst_temperature().unwrap();
        assert!(flat.blocks().iter().all(|b| b.temperature_k() == 370.0));
        assert!(ChipSpec::new().with_uniform_worst_temperature().is_err());
    }

    #[test]
    fn analysis_binds_technology() {
        let mut spec = ChipSpec::new();
        spec.add_block(block("hot", 370.0, vec![(0, 1.0)])).unwrap();
        spec.add_block(block("cool", 340.0, vec![(1, 1.0)]))
            .unwrap();
        let tech = ClosedFormTech::nominal_45nm();
        let a = ChipAnalysis::new(spec, model(3), &tech).unwrap();
        assert_eq!(a.n_blocks(), 2);
        // Hotter block has shorter characteristic life and smaller b.
        assert!(a.blocks()[0].alpha_s() < a.blocks()[1].alpha_s());
        assert!(a.blocks()[0].b_per_nm() < a.blocks()[1].b_per_nm());
    }

    #[test]
    fn analysis_rejects_bad_grid_reference() {
        let mut spec = ChipSpec::new();
        spec.add_block(block("a", 350.0, vec![(99, 1.0)])).unwrap();
        let tech = ClosedFormTech::nominal_45nm();
        assert!(matches!(
            ChipAnalysis::new(spec, model(3), &tech),
            Err(CoreError::GridMismatch { .. })
        ));
    }

    #[test]
    fn analysis_rejects_empty_spec() {
        let tech = ClosedFormTech::nominal_45nm();
        assert!(ChipAnalysis::new(ChipSpec::new(), model(2), &tech).is_err());
    }

    #[test]
    fn analysis_json_round_trip_is_bit_exact() {
        let mut spec = ChipSpec::new();
        spec.add_block(block("hot", 370.0, vec![(0, 0.5), (1, 0.5)]))
            .unwrap();
        spec.add_block(block("cool", 340.0, vec![(8, 1.0)]))
            .unwrap();
        let tech = ClosedFormTech::nominal_45nm();
        let a = ChipAnalysis::new(spec, model(3), &tech).unwrap();
        let json = statobd_num::json::to_string(&a);
        let back: ChipAnalysis = statobd_num::json::from_str(&json).unwrap();
        assert_eq!(back.spec(), a.spec());
        for (x, y) in a.blocks().iter().zip(back.blocks()) {
            assert_eq!(x.alpha_s().to_bits(), y.alpha_s().to_bits());
            assert_eq!(x.b_per_nm().to_bits(), y.b_per_nm().to_bits());
            assert_eq!(
                x.moments().u_nominal().to_bits(),
                y.moments().u_nominal().to_bits()
            );
            assert_eq!(x.moments().u_coeffs(), y.moments().u_coeffs());
            assert_eq!(
                x.moments().chi2_scale().to_bits(),
                y.moments().chi2_scale().to_bits()
            );
        }
    }

    #[test]
    fn from_parts_rejects_inconsistencies() {
        let mut spec = ChipSpec::new();
        spec.add_block(block("a", 350.0, vec![(0, 1.0)])).unwrap();
        spec.add_block(block("b", 360.0, vec![(1, 1.0)])).unwrap();
        let tech = ClosedFormTech::nominal_45nm();
        let a = ChipAnalysis::new(spec.clone(), model(3), &tech).unwrap();

        // Block count mismatch.
        let short = a.blocks()[..1].to_vec();
        assert!(ChipAnalysis::from_parts(spec.clone(), model(3), short).is_err());
        // Name mismatch (blocks swapped).
        let swapped = vec![a.blocks()[1].clone(), a.blocks()[0].clone()];
        assert!(ChipAnalysis::from_parts(spec.clone(), model(3), swapped).is_err());
        // Component-count mismatch against a different model.
        let fresh = ChipAnalysis::new(spec.clone(), model(4), &tech).unwrap();
        assert!(ChipAnalysis::from_parts(spec.clone(), model(3), fresh.blocks().to_vec()).is_err());
        // Consistent parts round-trip.
        assert!(ChipAnalysis::from_parts(spec, model(3), a.blocks().to_vec()).is_ok());
    }

    #[test]
    fn json_round_trip_spec() {
        let mut spec = ChipSpec::new();
        spec.add_block(block("a", 350.0, vec![(0, 0.25), (1, 0.75)]))
            .unwrap();
        let json = statobd_num::json::to_string(&spec);
        let back: ChipSpec = statobd_num::json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
