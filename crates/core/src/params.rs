//! The experiment parameters of the paper's Table II.

/// Nominal oxide thickness `z₀` (nm).
pub const NOMINAL_THICKNESS_NM: f64 = 2.2;

/// Nominal supply voltage `VDD_nom` (V).
pub const NOMINAL_VDD_V: f64 = 1.2;

/// Total variation as `3σ_tot / z₀` (ITRS 2008).
pub const THREE_SIGMA_RATIO: f64 = 0.04;

/// Inter-die variance ratio `σ²_global / σ²_tot` (Reda–Nassif).
pub const FRAC_GLOBAL: f64 = 0.50;

/// Spatially correlated variance ratio `σ²_spa / σ²_tot`.
pub const FRAC_SPATIAL: f64 = 0.25;

/// Independent variance ratio `σ²_ind / σ²_tot`.
pub const FRAC_INDEPENDENT: f64 = 0.25;

/// The paper's default relative correlation distance (`ρ_dist`).
pub const DEFAULT_CORRELATION_DISTANCE: f64 = 0.5;

/// The paper's default correlation-grid resolution (25 × 25; Table V also
/// explores 10 × 10 and 20 × 20).
pub const DEFAULT_GRID_SIDE: usize = 25;

/// Default integration sub-domain count `l0` (the paper notes `l0 = 10`
/// is already sufficient).
pub const DEFAULT_L0: usize = 10;

/// Failure-probability target for the "1-fault-per-million-parts"
/// criterion.
pub const ONE_PER_MILLION: f64 = 1e-6;

/// Failure-probability target for the "10-faults-per-million-parts"
/// criterion.
pub const TEN_PER_MILLION: f64 = 1e-5;

/// Guard-band thickness margin: the traditional method assumes the
/// minimum thickness `u₀ − 3σ_tot`.
pub const GUARD_BAND_SIGMAS: f64 = 3.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_fractions_sum_to_one() {
        assert!((FRAC_GLOBAL + FRAC_SPATIAL + FRAC_INDEPENDENT - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sigma_total_matches_table_ii() {
        let sigma = NOMINAL_THICKNESS_NM * THREE_SIGMA_RATIO / 3.0;
        assert!((sigma - 0.029333333333333333).abs() < 1e-15);
    }
}
