//! Redundancy-aware chip composition: k-out-of-n block groups with
//! spares.
//!
//! The paper's chip-level reliability is pure weakest-link — the chip
//! dies with its first block. Repair-capable designs (in-field logic
//! repair, spare cache ways, cold-spare cores) tolerate the first
//! breakdowns: a *redundancy group* of `n` blocks with `s` spares
//! survives as long as at most `s` of its blocks have failed, and the
//! chip survives while every group does. [`Composition`] describes that
//! structure; [`CompositionAccumulator`] evaluates it from per-block
//! failure probabilities, in log-survival space, with the same relative
//! precision discipline as [`WeakestLink`](super::WeakestLink).
//!
//! # Numerical form
//!
//! For one group with per-block failure probabilities `p_1..p_n` and `s`
//! spares, the group failure probability is the Poisson-binomial tail
//! `Q = P(more than s blocks failed)`. The accumulator maintains the
//! dynamic program
//!
//! ```text
//! ln_at[m]  = ln P(exactly m of the absorbed blocks failed),  m ≤ s
//! ln_fail   = ln P(more than s of the absorbed blocks failed)
//! ```
//!
//! updated per block with `logaddexp` over *positive* mass terms only —
//! no cancellation anywhere, so `Q` keeps full relative precision even
//! when every `p_j ≤ 1e-12` leaves `Q` at the `p²` scale. The group's
//! log-survival is `ln(1 − Q) = ln_1p(−exp(ln_fail))`, and the chip
//! composes groups weakest-link style (survival multiplies).
//!
//! A group with zero spares *is* weakest-link over its blocks: the
//! accumulator then reduces to the plain `Σ ln_1p(−p_j)` running sum —
//! the bit-identical operation sequence of
//! [`WeakestLink::absorb`](super::WeakestLink::absorb) — which is what
//! keeps 1-out-of-1 degenerate configurations exactly on today's
//! numbers.

use super::WeakestLink;
use crate::{CoreError, Result};
use statobd_num::json::{FromJson, Json, JsonError, ToJson};

/// `ln(exp(a) + exp(b))` without overflow, with `−∞` as the exact
/// additive identity (zero probability mass).
fn logaddexp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// One redundancy group: a set of block indices that survives while at
/// most [`spares`](RedundancyGroup::spares) of them have failed
/// (`(n − s)`-out-of-`n` in reliability terms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundancyGroup {
    /// Indices into the chip's block list (order does not matter).
    pub blocks: Vec<usize>,
    /// How many block failures the group tolerates; must be strictly
    /// less than the group size.
    pub spares: usize,
}

impl RedundancyGroup {
    /// A group over `blocks` tolerating `spares` failures.
    pub fn new(blocks: Vec<usize>, spares: usize) -> Self {
        RedundancyGroup { blocks, spares }
    }
}

statobd_num::impl_json_struct!(RedundancyGroup { blocks, spares });

/// How a chip's blocks compose into the chip-level failure probability.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Composition {
    /// The paper's model: the chip fails with its first block
    /// (every block is its own 1-out-of-1 group). This variant routes
    /// through the plain [`WeakestLink`](super::WeakestLink) accumulator
    /// verbatim, so existing results stay bit-identical.
    #[default]
    WeakestLink,
    /// Redundancy groups with spares. Must partition the chip's blocks:
    /// every block in exactly one group.
    Groups(Vec<RedundancyGroup>),
}

impl Composition {
    /// A single group spanning blocks `0..n_blocks` with `spares`
    /// tolerated failures — the `--spares` CLI scenario.
    pub fn uniform_spares(n_blocks: usize, spares: usize) -> Self {
        Composition::Groups(vec![RedundancyGroup::new(
            (0..n_blocks).collect(),
            spares,
        )])
    }

    /// Whether this is the plain weakest-link composition.
    pub fn is_weakest_link(&self) -> bool {
        matches!(self, Composition::WeakestLink)
    }

    /// Validates the composition against a chip with `n_blocks` blocks:
    /// groups must be non-empty, reference only in-range blocks, cover
    /// every block exactly once, and tolerate strictly fewer failures
    /// than their size.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] naming the offending group.
    pub fn validate(&self, n_blocks: usize) -> Result<()> {
        let groups = match self {
            Composition::WeakestLink => return Ok(()),
            Composition::Groups(groups) => groups,
        };
        let bad = |detail: String| {
            Err(CoreError::InvalidParameter {
                detail: format!("composition: {detail}"),
            })
        };
        if groups.is_empty() {
            return bad("needs at least one redundancy group".to_string());
        }
        let mut owner = vec![usize::MAX; n_blocks];
        for (g, group) in groups.iter().enumerate() {
            if group.blocks.is_empty() {
                return bad(format!("group {g} has no blocks"));
            }
            if group.spares >= group.blocks.len() {
                return bad(format!(
                    "group {g} tolerates {} failures but only has {} block(s)",
                    group.spares,
                    group.blocks.len()
                ));
            }
            for &j in &group.blocks {
                if j >= n_blocks {
                    return bad(format!(
                        "group {g} references block {j}, chip has {n_blocks}"
                    ));
                }
                if owner[j] != usize::MAX {
                    return bad(format!(
                        "block {j} appears in groups {} and {g}",
                        owner[j]
                    ));
                }
                owner[j] = g;
            }
        }
        if let Some(j) = owner.iter().position(|&g| g == usize::MAX) {
            return bad(format!("block {j} belongs to no group"));
        }
        Ok(())
    }

    /// A reusable accumulator for a chip with `n_blocks` blocks. The
    /// composition must already be [`validate`](Composition::validate)d.
    pub fn accumulator(&self, n_blocks: usize) -> CompositionAccumulator {
        let inner = match self {
            Composition::WeakestLink => AccImpl::WeakestLink(WeakestLink::new()),
            Composition::Groups(groups) => {
                let mut group_of = vec![usize::MAX; n_blocks];
                let states = groups
                    .iter()
                    .enumerate()
                    .map(|(g, group)| {
                        for &j in &group.blocks {
                            group_of[j] = g;
                        }
                        GroupState::new(group.spares)
                    })
                    .collect();
                AccImpl::Groups { group_of, states }
            }
        };
        CompositionAccumulator { inner }
    }

    /// One-shot composition of per-block failure probabilities
    /// (`ps[j]` is block `j`'s).
    ///
    /// # Example
    ///
    /// ```
    /// use statobd_core::{compose_weakest_link, Composition};
    /// let ps = [0.1, 0.2, 0.3];
    /// // Weakest-link is the degenerate case...
    /// let wl = Composition::WeakestLink.compose(&ps);
    /// assert_eq!(wl, compose_weakest_link(ps));
    /// // ...while one spare across the chip tolerates the first failure.
    /// let spared = Composition::uniform_spares(3, 1).compose(&ps);
    /// assert!(spared < wl);
    /// ```
    pub fn compose(&self, ps: &[f64]) -> f64 {
        let mut acc = self.accumulator(ps.len());
        for (j, &p) in ps.iter().enumerate() {
            acc.absorb(j, p);
        }
        acc.failure_probability()
    }
}

impl ToJson for Composition {
    /// `"weakest_link"` for the default, `{"groups": [...]}` otherwise —
    /// the workspace's standard enum encoding.
    fn to_json(&self) -> Json {
        match self {
            Composition::WeakestLink => Json::String("weakest_link".to_string()),
            Composition::Groups(groups) => Json::Object(vec![(
                "groups".to_string(),
                Json::Array(groups.iter().map(ToJson::to_json).collect()),
            )]),
        }
    }
}

impl FromJson for Composition {
    fn from_json(v: &Json) -> statobd_num::json::Result<Self> {
        if let Some(name) = v.as_str() {
            return match name {
                "weakest_link" => Ok(Composition::WeakestLink),
                other => Err(JsonError::new(format!(
                    "composition: expected 'weakest_link' or a groups object, got '{other}'"
                ))),
            };
        }
        let groups = v.get("groups").and_then(Json::as_array).ok_or_else(|| {
            JsonError::new("composition: expected 'weakest_link' or {\"groups\": [...]}")
        })?;
        groups
            .iter()
            .map(RedundancyGroup::from_json)
            .collect::<statobd_num::json::Result<Vec<_>>>()
            .map(Composition::Groups)
    }

    /// An absent composition member means weakest-link, so documents
    /// written before redundancy groups existed keep parsing unchanged.
    fn from_missing() -> Option<Self> {
        Some(Composition::WeakestLink)
    }
}

/// Per-group dynamic-program state (see the module docs).
#[derive(Debug, Clone)]
struct GroupState {
    spares: usize,
    /// `ln P(exactly m absorbed blocks failed)` for `m = 0..=spares`.
    ln_at: Vec<f64>,
    /// `ln P(more than `spares` absorbed blocks failed)`.
    ln_fail: f64,
}

impl GroupState {
    fn new(spares: usize) -> Self {
        let mut ln_at = vec![f64::NEG_INFINITY; spares + 1];
        ln_at[0] = 0.0;
        GroupState {
            spares,
            ln_at,
            ln_fail: f64::NEG_INFINITY,
        }
    }

    fn reset(&mut self) {
        self.ln_at.fill(f64::NEG_INFINITY);
        self.ln_at[0] = 0.0;
        self.ln_fail = f64::NEG_INFINITY;
    }

    fn absorb(&mut self, p: f64) {
        if self.spares == 0 {
            // Weakest-link within the group: the bit-identical running
            // sum of `WeakestLink::absorb` (see `ln_survival`).
            self.ln_at[0] += (-p).ln_1p();
            return;
        }
        let lnp = p.ln();
        let ln1mp = (-p).ln_1p();
        // Mass leaving the tracked window never comes back: fold it into
        // the tail before the in-window shift overwrites `ln_at[spares]`.
        self.ln_fail = logaddexp(self.ln_fail, self.ln_at[self.spares] + lnp);
        for m in (1..=self.spares).rev() {
            self.ln_at[m] = logaddexp(self.ln_at[m] + ln1mp, self.ln_at[m - 1] + lnp);
        }
        self.ln_at[0] += ln1mp;
    }

    /// `ln P(group survives)` = `ln(1 − Q)` with `Q` the failure tail.
    fn ln_survival(&self) -> f64 {
        if self.spares == 0 {
            // `Σ ln_1p(−p_j)` directly — exactly `WeakestLink`'s state,
            // with full relative precision on the log scale.
            self.ln_at[0]
        } else {
            (-self.ln_fail.exp()).ln_1p()
        }
    }
}

#[derive(Debug, Clone)]
enum AccImpl {
    WeakestLink(WeakestLink),
    Groups {
        /// Block index → group index (dense; every block owned).
        group_of: Vec<usize>,
        states: Vec<GroupState>,
    },
}

/// A reusable accumulator evaluating one chip's [`Composition`] from
/// per-block failure probabilities.
///
/// Feed every block once via [`absorb`](CompositionAccumulator::absorb)
/// (any order), then read the chip-level result; [`reset`] makes the
/// accumulator reusable without reallocating — the fleet loop evaluates
/// millions of chips through one of these per shard.
#[derive(Debug, Clone)]
pub struct CompositionAccumulator {
    inner: AccImpl,
}

impl CompositionAccumulator {
    /// Absorbs block `block`'s failure probability.
    ///
    /// `p` is clamped to `[0, 1]`. A NaN is rejected loudly in debug
    /// builds and maps to certain failure (`p = 1`) in release builds,
    /// matching [`WeakestLink::absorb`](super::WeakestLink::absorb).
    pub fn absorb(&mut self, block: usize, p: f64) {
        match &mut self.inner {
            AccImpl::WeakestLink(acc) => acc.absorb(p),
            AccImpl::Groups { group_of, states } => {
                debug_assert!(
                    !p.is_nan(),
                    "CompositionAccumulator::absorb: NaN failure probability for block {block}"
                );
                let p = if p.is_nan() { 1.0 } else { p.clamp(0.0, 1.0) };
                states[group_of[block]].absorb(p);
            }
        }
    }

    /// The chip-level `ln P(chip survives)`: the sum of the group
    /// log-survivals, in group order.
    pub fn ln_survival(&self) -> f64 {
        match &self.inner {
            AccImpl::WeakestLink(acc) => acc.ln_survival(),
            AccImpl::Groups { states, .. } => {
                let mut total = 0.0;
                for state in states {
                    total += state.ln_survival();
                }
                total
            }
        }
    }

    /// The chip-level failure probability `−expm1(ln_survival)`.
    pub fn failure_probability(&self) -> f64 {
        -self.ln_survival().exp_m1()
    }

    /// Clears the absorbed state (no allocation).
    pub fn reset(&mut self) {
        match &mut self.inner {
            AccImpl::WeakestLink(acc) => *acc = WeakestLink::new(),
            AccImpl::Groups { states, .. } => {
                for state in states {
                    state.reset();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::compose_weakest_link;
    use statobd_num::rng::{Rng, Xoshiro256pp};

    /// Brute-force group survival: sum over every failure subset of size
    /// ≤ spares (exact reference, exponential in the group size).
    fn enumerate_survival(ps: &[f64], spares: usize) -> f64 {
        let n = ps.len();
        let mut survival = 0.0;
        for mask in 0u32..(1 << n) {
            if (mask.count_ones() as usize) > spares {
                continue;
            }
            let mut term = 1.0;
            for (j, &p) in ps.iter().enumerate() {
                term *= if mask & (1 << j) != 0 { p } else { 1.0 - p };
            }
            survival += term;
        }
        survival
    }

    #[test]
    fn singleton_zero_spare_groups_reduce_bitwise_to_weakest_link() {
        let ps = [0.1, 3.4e-7, 0.0, 0.95, 1e-13];
        let groups = Composition::Groups(
            (0..ps.len())
                .map(|j| RedundancyGroup::new(vec![j], 0))
                .collect(),
        );
        groups.validate(ps.len()).unwrap();
        let grouped = groups.compose(&ps);
        let weakest = compose_weakest_link(ps);
        assert_eq!(
            grouped.to_bits(),
            weakest.to_bits(),
            "{grouped:e} vs {weakest:e}"
        );
        // And the explicit WeakestLink variant delegates verbatim.
        let delegated = Composition::WeakestLink.compose(&ps);
        assert_eq!(delegated.to_bits(), weakest.to_bits());
    }

    #[test]
    fn n_out_of_n_reduces_to_the_all_fail_product() {
        // spares = n − 1: the group fails only when every block does.
        let ps = [0.3, 0.5, 0.8];
        let comp = Composition::uniform_spares(ps.len(), ps.len() - 1);
        let q = comp.compose(&ps);
        let product: f64 = ps.iter().product();
        assert!(
            ((q - product) / product).abs() < 1e-14,
            "{q:e} vs {product:e}"
        );
        // Also in the tiny-probability regime, on relative precision.
        let tiny = [2e-7, 5e-8, 1.5e-7];
        let q = Composition::uniform_spares(3, 2).compose(&tiny);
        let product: f64 = tiny.iter().product();
        assert!(
            ((q - product) / product).abs() < 1e-12,
            "{q:e} vs {product:e}"
        );
    }

    #[test]
    fn grouped_composition_matches_subset_enumeration() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for trial in 0..200 {
            let n = 2 + rng.gen_index(7);
            let spares = rng.gen_index(n);
            let scale = [1.0, 1e-3, 1e-6][trial % 3];
            let ps: Vec<f64> = (0..n).map(|_| scale * rng.gen_range(0.0..0.9)).collect();
            let comp = Composition::uniform_spares(n, spares);
            let got = comp.compose(&ps);
            let want = 1.0 - enumerate_survival(&ps, spares);
            let tol = 1e-12 * want.abs().max(1e-300) + 1e-15;
            assert!(
                (got - want).abs() <= tol.max(1e-9 * want.abs()),
                "trial {trial}: n={n} spares={spares} got {got:e} want {want:e}"
            );
        }
    }

    #[test]
    fn composition_is_monotone_in_each_per_block_probability() {
        let base = [0.02, 0.4, 1e-5, 0.7, 0.09];
        for spares in 0..base.len() {
            let comp = Composition::uniform_spares(base.len(), spares);
            let p0 = comp.compose(&base);
            for j in 0..base.len() {
                let mut bumped = base;
                bumped[j] = (bumped[j] * 1.5 + 1e-4).min(1.0);
                let p1 = comp.compose(&bumped);
                assert!(
                    p1 >= p0,
                    "spares={spares} block {j}: {p1:e} < {p0:e}"
                );
            }
        }
    }

    #[test]
    fn log_space_stays_stable_at_p_below_1e12() {
        // Two blocks at p = 1e-12, one spare: Q = p² exactly (to first
        // order in p³). A linear-space DP would return 0 or lose all
        // relative precision; the log-space tail keeps ~15 digits.
        let p = 1e-12;
        let q = Composition::uniform_spares(2, 1).compose(&[p, p]);
        let exact = p * p;
        assert!(
            ((q - exact) / exact).abs() < 1e-12,
            "{q:e} vs {exact:e}"
        );
        // 8 blocks at 1e-13, two spares: Q ≈ C(8,3) p³ = 56e-39.
        let p = 1e-13;
        let q = Composition::uniform_spares(8, 2).compose(&[p; 8]);
        let exact = 56.0 * p * p * p;
        assert!(
            ((q - exact) / exact).abs() < 1e-10,
            "{q:e} vs {exact:e}"
        );
    }

    #[test]
    fn accumulator_reset_reuses_cleanly() {
        let comp = Composition::uniform_spares(3, 1);
        let mut acc = comp.accumulator(3);
        let ps = [0.1, 0.2, 0.3];
        for (j, &p) in ps.iter().enumerate() {
            acc.absorb(j, p);
        }
        let first = acc.failure_probability();
        acc.reset();
        for (j, &p) in ps.iter().enumerate() {
            acc.absorb(j, p);
        }
        assert_eq!(first.to_bits(), acc.failure_probability().to_bits());
        assert_eq!(first.to_bits(), comp.compose(&ps).to_bits());
    }

    #[test]
    fn certain_failures_saturate_groups_exactly() {
        // One spare absorbs a single certain failure...
        let q = Composition::uniform_spares(3, 1).compose(&[1.0, 0.0, 0.0]);
        assert_eq!(q, 0.0);
        // ...but a second certain failure kills the group.
        let q = Composition::uniform_spares(3, 1).compose(&[1.0, 1.0, 0.0]);
        assert_eq!(q, 1.0);
        // Out-of-range inputs are clamped, never amplified.
        let q = Composition::uniform_spares(2, 1).compose(&[1.5, -0.5]);
        assert_eq!(q, 0.0);
    }

    #[test]
    fn validate_rejects_malformed_group_structures() {
        let cases: [(Composition, &str); 5] = [
            (Composition::Groups(vec![]), "at least one"),
            (
                Composition::Groups(vec![RedundancyGroup::new(vec![], 0)]),
                "no blocks",
            ),
            (
                Composition::Groups(vec![RedundancyGroup::new(vec![0, 1], 2)]),
                "tolerates",
            ),
            (
                Composition::Groups(vec![RedundancyGroup::new(vec![0, 5], 0)]),
                "references block 5",
            ),
            (
                Composition::Groups(vec![
                    RedundancyGroup::new(vec![0, 1], 0),
                    RedundancyGroup::new(vec![1], 0),
                ]),
                "appears in groups",
            ),
        ];
        for (comp, needle) in cases {
            let err = comp.validate(2).unwrap_err().to_string();
            assert!(err.contains(needle), "{comp:?}: {err}");
        }
        // A partial cover is rejected too.
        let partial = Composition::Groups(vec![RedundancyGroup::new(vec![0], 0)]);
        let err = partial.validate(2).unwrap_err().to_string();
        assert!(err.contains("belongs to no group"), "{err}");
        // And the good ones pass.
        Composition::WeakestLink.validate(3).unwrap();
        Composition::uniform_spares(3, 2).validate(3).unwrap();
        Composition::Groups(vec![
            RedundancyGroup::new(vec![0, 2], 1),
            RedundancyGroup::new(vec![1], 0),
        ])
        .validate(3)
        .unwrap();
    }

    #[test]
    fn composition_json_round_trips() {
        use statobd_num::json::{from_str, to_string};
        for comp in [
            Composition::WeakestLink,
            Composition::uniform_spares(4, 1),
            Composition::Groups(vec![
                RedundancyGroup::new(vec![0, 2], 1),
                RedundancyGroup::new(vec![1], 0),
            ]),
        ] {
            let back: Composition = from_str(&to_string(&comp)).unwrap();
            assert_eq!(back, comp);
        }
        assert!(from_str::<Composition>("\"strongest_link\"").is_err());
        assert!(from_str::<Composition>("{\"blocks\": []}").is_err());
    }
}
