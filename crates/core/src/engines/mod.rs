//! The reliability engines: different evaluators of the ensemble chip
//! failure probability `P(t) = 1 − R_c(t)`.

pub mod guard;
pub mod hybrid;
pub mod monte_carlo;
pub mod st_closed;
pub mod st_fast;
pub mod st_mc;

use crate::Result;

/// A chip-level reliability evaluator.
///
/// Engines expose the *failure probability* `P(t) = 1 − R_c(t)` rather
/// than `R_c(t)` because the quantities of interest (1- and 10-per-million
/// criteria) live at the `10⁻⁶` scale where `R` itself has no usable
/// precision.
///
/// `&mut self` allows engines to cache (the hybrid engine's tables, the
/// Monte-Carlo engine's chip samples).
pub trait ReliabilityEngine {
    /// A short identifier (`"st_fast"`, `"st_MC"`, `"hybrid"`, `"guard"`,
    /// `"MC"`, ...) matching the paper's method abbreviations.
    fn name(&self) -> &str;

    /// The ensemble failure probability at time `t_s` (seconds).
    ///
    /// # Errors
    ///
    /// Engine-specific numerical failures.
    fn failure_probability(&mut self, t_s: f64) -> Result<f64>;
}
