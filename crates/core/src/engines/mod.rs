//! The reliability engines: different evaluators of the ensemble chip
//! failure probability `P(t) = 1 − R_c(t)`, plus the unified
//! [`build_engine`] construction entry point.

pub mod composition;
pub mod guard;
pub mod hybrid;
pub mod monte_carlo;
pub mod st_closed;
pub mod st_fast;
pub mod st_mc;

use crate::chip::ChipAnalysis;
use crate::Result;
use guard::{GuardBand, GuardBandConfig};

/// Weakest-link accumulator: composes per-block failure probabilities
/// into the chip-level `P = 1 − Π_j (1 − p_j)` on log-survival,
///
/// ```text
/// P = −expm1( Σ_j ln(1 − p_j) )
/// ```
///
/// so the `10⁻⁶` regime keeps full relative precision (a naive product
/// of `1 − p_j` terms loses everything below the `1 − ...` cancellation,
/// and a plain sum `Σ_j p_j` is only the first-order expansion — it
/// overestimates and exceeds 1 once damage accumulates). Every analytic
/// engine and the runtime reliability manager compose through this one
/// accumulator, in block order, so their scalar and batched paths stay
/// bit-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeakestLink {
    /// Running `Σ_j ln(1 − p_j)` (≤ 0; `−∞` once any block is certain
    /// to fail).
    ln_survival: f64,
}

impl WeakestLink {
    /// An empty accumulator (`P = 0`).
    pub fn new() -> Self {
        WeakestLink::default()
    }

    /// Absorbs one block's failure probability (clamped to `[0, 1]`).
    ///
    /// A NaN input is a bug upstream, never a legitimate probability:
    /// `NaN.clamp(0.0, 1.0)` is NaN, which used to poison `ln_survival`
    /// silently — every later query returned NaN with no hint of the
    /// offending block. Debug builds now panic at the call site;
    /// release builds map NaN to certain failure (`p = 1`), the
    /// deterministic conservative reading of "this block's probability
    /// is not a number".
    pub fn absorb(&mut self, p: f64) {
        debug_assert!(
            !p.is_nan(),
            "WeakestLink::absorb: NaN block failure probability"
        );
        let p = if p.is_nan() { 1.0 } else { p };
        self.ln_survival += (-p.clamp(0.0, 1.0)).ln_1p();
    }

    /// The running `Σ_j ln(1 − p_j)` (≤ 0).
    pub fn ln_survival(&self) -> f64 {
        self.ln_survival
    }

    /// The composed chip-level failure probability `1 − Π_j (1 − p_j)`.
    pub fn failure_probability(&self) -> f64 {
        -self.ln_survival.exp_m1()
    }
}

/// One-shot weakest-link composition of an iterator of per-block
/// failure probabilities.
///
/// # Example
///
/// ```
/// use statobd_core::compose_weakest_link;
/// let p = compose_weakest_link([0.5, 0.5]);
/// assert!((p - 0.75).abs() < 1e-15);
/// // Tiny probabilities keep their relative precision.
/// let p = compose_weakest_link([1e-9, 1e-9]);
/// assert!((p / 2e-9 - 1.0).abs() < 1e-9);
/// ```
pub fn compose_weakest_link<I: IntoIterator<Item = f64>>(ps: I) -> f64 {
    let mut acc = WeakestLink::new();
    for p in ps {
        acc.absorb(p);
    }
    acc.failure_probability()
}
use hybrid::{HybridConfig, HybridTables};
use monte_carlo::{MonteCarlo, MonteCarloConfig};
use st_closed::StClosed;
use st_fast::{StFast, StFastConfig};
use st_mc::{StMc, StMcConfig};

/// A chip-level reliability evaluator.
///
/// Engines expose the *failure probability* `P(t) = 1 − R_c(t)` rather
/// than `R_c(t)` because the quantities of interest (1- and 10-per-million
/// criteria) live at the `10⁻⁶` scale where `R` itself has no usable
/// precision.
///
/// `&mut self` allows engines to cache (the hybrid engine's tables, the
/// Monte-Carlo engine's chip samples).
pub trait ReliabilityEngine {
    /// A short identifier (`"st_fast"`, `"st_MC"`, `"hybrid"`, `"guard"`,
    /// `"MC"`, ...) matching the paper's method abbreviations.
    fn name(&self) -> &str;

    /// The ensemble failure probability at time `t_s` (seconds).
    ///
    /// # Errors
    ///
    /// Engine-specific numerical failures.
    fn failure_probability(&mut self, t_s: f64) -> Result<f64>;

    /// The ensemble failure probabilities at every time in `ts` (seconds),
    /// in order — the batched form of
    /// [`failure_probability`](ReliabilityEngine::failure_probability).
    ///
    /// Time sweeps dominate everything downstream of the engines (lifetime
    /// bisection, failure-rate curves, the Table III benchmarks), and most
    /// engines carry per-evaluation state that is invariant across `t`
    /// (Monte-Carlo chip histograms and bin-weight tables, quadrature node
    /// sets, lookup tables). Every engine in this crate overrides this
    /// method with an implementation that amortizes that state over the
    /// whole sweep and fans the work out across threads; results are
    /// **bit-identical** to the scalar loop at any thread count.
    ///
    /// The default implementation is the plain scalar loop, so foreign
    /// `ReliabilityEngine` impls keep working unchanged.
    ///
    /// # Errors
    ///
    /// Engine-specific numerical failures, as for the scalar method.
    ///
    /// # Example
    ///
    /// ```
    /// use statobd_core::{ReliabilityEngine, Result};
    ///
    /// // A toy engine: P(t) = 1 − exp(−t/1e9).
    /// #[derive(Debug)]
    /// struct Toy;
    /// impl ReliabilityEngine for Toy {
    ///     fn name(&self) -> &str { "toy" }
    ///     fn failure_probability(&mut self, t: f64) -> Result<f64> {
    ///         Ok(-(-t / 1e9_f64).exp_m1())
    ///     }
    /// }
    /// let ps = Toy.failure_probabilities(&[1e8, 1e9])?;
    /// assert_eq!(ps.len(), 2);
    /// assert!(ps[0] < ps[1]);
    /// # Ok::<(), statobd_core::CoreError>(())
    /// ```
    fn failure_probabilities(&mut self, ts: &[f64]) -> Result<Vec<f64>> {
        ts.iter().map(|&t| self.failure_probability(t)).collect()
    }

    /// How many time points per
    /// [`failure_probabilities`](ReliabilityEngine::failure_probabilities)
    /// call this engine can absorb at little extra cost — the batch width
    /// iterative drivers like [`crate::solve_lifetime`] should aim for.
    ///
    /// Engines with a large per-call fixed cost (the Monte-Carlo engine
    /// sweeps every chip histogram once per call) or an internal thread
    /// fan-out report a hint above 1; the default of 1 keeps scalar-loop
    /// engines on classic bisection, which minimizes total evaluations.
    fn sweep_batch_hint(&self) -> usize {
        1
    }
}

/// The available reliability engines, by the paper's Table III
/// abbreviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// [`StFast`] — the paper's main marginal-product method.
    StFast,
    /// [`StMc`] — numerical joint-PDF variant.
    StMc,
    /// [`StClosed`] — fully closed-form first-order evaluation.
    StClosed,
    /// [`HybridTables`] — precomputed `(γ, b)` look-up tables.
    Hybrid,
    /// [`GuardBand`] — traditional worst-case corner.
    GuardBand,
    /// [`MonteCarlo`] — per-device reference simulation.
    MonteCarlo,
}

impl EngineKind {
    /// All engine kinds, in the paper's Table III order.
    pub const ALL: [EngineKind; 6] = [
        EngineKind::StFast,
        EngineKind::StMc,
        EngineKind::StClosed,
        EngineKind::Hybrid,
        EngineKind::GuardBand,
        EngineKind::MonteCarlo,
    ];

    /// The paper's abbreviation (matches [`ReliabilityEngine::name`]).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::StFast => "st_fast",
            EngineKind::StMc => "st_MC",
            EngineKind::StClosed => "st_closed",
            EngineKind::Hybrid => "hybrid",
            EngineKind::GuardBand => "guard",
            EngineKind::MonteCarlo => "MC",
        }
    }

    /// Parses a paper abbreviation (as printed by [`EngineKind::name`],
    /// case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidParameter`] for an unknown name,
    /// with the closest valid abbreviation as a did-you-mean suggestion —
    /// the CLI/server boundary where `st_MC` vs `st_mc` casing used to be
    /// a silent foot-gun.
    pub fn parse(s: &str) -> Result<Self> {
        if let Some(kind) = EngineKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
        {
            return Ok(kind);
        }
        let nearest = EngineKind::ALL
            .into_iter()
            .min_by_key(|k| edit_distance(&s.to_ascii_lowercase(), &k.name().to_ascii_lowercase()))
            .map(|k| k.name())
            .unwrap_or("st_fast");
        let all = EngineKind::ALL.map(EngineKind::name).join(", ");
        Err(crate::CoreError::InvalidParameter {
            detail: format!("unknown engine '{s}' (did you mean '{nearest}'? one of: {all})"),
        })
    }

    /// The default configuration for this kind.
    pub fn default_spec(self) -> EngineSpec {
        match self {
            EngineKind::StFast => EngineSpec::StFast(StFastConfig::default()),
            EngineKind::StMc => EngineSpec::StMc(StMcConfig::default()),
            EngineKind::StClosed => EngineSpec::StClosed,
            EngineKind::Hybrid => EngineSpec::Hybrid(HybridConfig::default()),
            EngineKind::GuardBand => EngineSpec::GuardBand(GuardBandConfig::default()),
            EngineKind::MonteCarlo => EngineSpec::MonteCarlo(MonteCarloConfig::default()),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Levenshtein edit distance — the did-you-mean metric for
/// [`EngineKind::parse`] and other small-menu name parsers (mission
/// profiles, CLI subcommands). The candidate sets are a handful of short
/// names, so the textbook two-row dynamic program is plenty.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// An engine selection together with its configuration — the input to
/// [`build_engine`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSpec {
    /// Build an [`StFast`] engine.
    StFast(StFastConfig),
    /// Build an [`StMc`] engine.
    StMc(StMcConfig),
    /// Build an [`StClosed`] engine (no configuration).
    StClosed,
    /// Build a [`HybridTables`] engine.
    Hybrid(HybridConfig),
    /// Build a [`GuardBand`] engine.
    GuardBand(GuardBandConfig),
    /// Build a [`MonteCarlo`] engine.
    MonteCarlo(MonteCarloConfig),
}

impl EngineSpec {
    /// The kind this spec builds.
    pub fn kind(&self) -> EngineKind {
        match self {
            EngineSpec::StFast(_) => EngineKind::StFast,
            EngineSpec::StMc(_) => EngineKind::StMc,
            EngineSpec::StClosed => EngineKind::StClosed,
            EngineSpec::Hybrid(_) => EngineKind::Hybrid,
            EngineSpec::GuardBand(_) => EngineKind::GuardBand,
            EngineSpec::MonteCarlo(_) => EngineKind::MonteCarlo,
        }
    }

    /// Overrides the worker-thread count on the kinds that fan out
    /// (`st_fast`, `st_MC`, `MC`, `hybrid`); a no-op for the rest.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        match &mut self {
            EngineSpec::StFast(c) => c.threads = threads,
            EngineSpec::StMc(c) => c.threads = threads,
            EngineSpec::MonteCarlo(c) => c.threads = threads,
            EngineSpec::Hybrid(c) => c.threads = threads,
            EngineSpec::StClosed | EngineSpec::GuardBand(_) => {}
        }
        self
    }
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineKind::StFast.default_spec()
    }
}

impl statobd_num::json::ToJson for EngineSpec {
    /// Serializes as the kind name for a default-free kind (`"st_closed"`)
    /// and as a single-key object `{"<kind>": {<config>}}` otherwise —
    /// the workspace's standard enum encoding.
    fn to_json(&self) -> statobd_num::json::Json {
        use statobd_num::json::Json;
        let tagged =
            |kind: EngineKind, config: Json| Json::Object(vec![(kind.name().to_string(), config)]);
        match self {
            EngineSpec::StFast(c) => tagged(EngineKind::StFast, c.to_json()),
            EngineSpec::StMc(c) => tagged(EngineKind::StMc, c.to_json()),
            EngineSpec::StClosed => Json::String(EngineKind::StClosed.name().to_string()),
            EngineSpec::Hybrid(c) => tagged(EngineKind::Hybrid, c.to_json()),
            EngineSpec::GuardBand(c) => tagged(EngineKind::GuardBand, c.to_json()),
            EngineSpec::MonteCarlo(c) => tagged(EngineKind::MonteCarlo, c.to_json()),
        }
    }
}

impl statobd_num::json::FromJson for EngineSpec {
    /// Accepts either a bare kind name (default configuration — handy in
    /// hand-written specs) or the tagged single-key object form.
    fn from_json(v: &statobd_num::json::Json) -> statobd_num::json::Result<Self> {
        use statobd_num::json::JsonError;
        if let Some(name) = v.as_str() {
            return EngineKind::parse(name)
                .map(EngineKind::default_spec)
                .map_err(|e| JsonError::new(e.to_string()));
        }
        let members = v
            .as_object()
            .ok_or_else(|| JsonError::new(format!("expected an engine spec, got {v}")))?;
        let [(key, config)] = members else {
            return Err(JsonError::new(format!(
                "expected a single-key engine object, got {} keys",
                members.len()
            )));
        };
        let kind = EngineKind::parse(key).map_err(|e| JsonError::new(e.to_string()))?;
        Ok(match kind {
            EngineKind::StFast => EngineSpec::StFast(StFastConfig::from_json(config)?),
            EngineKind::StMc => EngineSpec::StMc(StMcConfig::from_json(config)?),
            EngineKind::StClosed => EngineSpec::StClosed,
            EngineKind::Hybrid => EngineSpec::Hybrid(HybridConfig::from_json(config)?),
            EngineKind::GuardBand => EngineSpec::GuardBand(GuardBandConfig::from_json(config)?),
            EngineKind::MonteCarlo => EngineSpec::MonteCarlo(MonteCarloConfig::from_json(config)?),
        })
    }
}

impl From<EngineKind> for EngineSpec {
    fn from(kind: EngineKind) -> Self {
        kind.default_spec()
    }
}

/// Builds any reliability engine over a characterized chip — the single
/// construction entry point used by the CLI, the benchmarks, and the
/// examples.
///
/// The returned engine borrows `analysis` (engines that keep a reference
/// tie their lifetime to it; self-contained engines like
/// [`HybridTables`] simply outlive the borrow).
///
/// # Errors
///
/// Propagates the underlying constructor's validation errors
/// ([`crate::CoreError::InvalidParameter`] for degenerate configurations,
/// numerical failures from table/sample construction).
///
/// # Example
///
/// ```no_run
/// use statobd_core::{build_engine, ChipAnalysis, EngineKind};
/// # fn demo(analysis: &ChipAnalysis) -> statobd_core::Result<()> {
/// let mut engine = build_engine(analysis, &EngineKind::StFast.default_spec())?;
/// let p = engine.failure_probability(1e9)?;
/// # let _ = p; Ok(())
/// # }
/// ```
pub fn build_engine<'a>(
    analysis: &'a ChipAnalysis,
    spec: &EngineSpec,
) -> Result<Box<dyn ReliabilityEngine + 'a>> {
    Ok(match spec {
        EngineSpec::StFast(config) => Box::new(StFast::new(analysis, *config)),
        EngineSpec::StMc(config) => Box::new(StMc::new(analysis, *config)?),
        EngineSpec::StClosed => Box::new(StClosed::new(analysis)),
        EngineSpec::Hybrid(config) => Box::new(HybridTables::build(analysis, *config)?),
        EngineSpec::GuardBand(config) => Box::new(GuardBand::new(analysis, *config)?),
        EngineSpec::MonteCarlo(config) => Box::new(MonteCarlo::build(analysis, *config)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weakest_link_matches_direct_product() {
        // Moderate probabilities: compare against the direct product.
        let ps = [0.1, 0.25, 0.5];
        let direct = 1.0 - ps.iter().map(|p| 1.0 - p).product::<f64>();
        let composed = compose_weakest_link(ps);
        assert!((composed - direct).abs() < 1e-15, "{composed} vs {direct}");
    }

    #[test]
    fn weakest_link_keeps_precision_in_the_per_million_regime() {
        // 100 blocks at 1e-8 each: P = 1 − (1 − 1e-8)^100. The naive
        // 1 − product form would round each factor; the log-survival
        // form keeps ~15 significant digits.
        let composed = compose_weakest_link((0..100).map(|_| 1e-8));
        let exact = -(100.0 * (-1e-8_f64).ln_1p()).exp_m1();
        assert!(
            ((composed - exact) / exact).abs() < 1e-14,
            "{composed:e} vs {exact:e}"
        );
        // And it is strictly below the first-order sum.
        assert!(composed < 100.0 * 1e-8);
    }

    #[test]
    fn weakest_link_saturates_at_one() {
        assert_eq!(compose_weakest_link([0.3, 1.0, 0.2]), 1.0);
        // Out-of-range inputs are clamped, never amplified.
        assert_eq!(compose_weakest_link([1.5]), 1.0);
        assert_eq!(compose_weakest_link([-0.5]), 0.0);
        assert_eq!(compose_weakest_link(std::iter::empty()), 0.0);
    }

    // Regression for the silent NaN absorption: a NaN block probability
    // used to poison `ln_survival` with no diagnostic. Debug builds now
    // panic at the offending `absorb`; release builds deterministically
    // treat the block as failed.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "NaN"))]
    fn weakest_link_rejects_nan_deterministically() {
        assert_eq!(compose_weakest_link([0.25, f64::NAN]), 1.0);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::parse(kind.name()).unwrap(), kind);
            assert_eq!(
                EngineKind::parse(&kind.name().to_uppercase()).unwrap(),
                kind
            );
            assert_eq!(kind.default_spec().kind(), kind);
        }
    }

    #[test]
    fn parse_suggests_the_nearest_name() {
        // Typos map to a useful did-you-mean, not a bare failure.
        for (typo, suggestion) in [
            ("st_fst", "st_fast"),
            ("hybird", "hybrid"),
            ("gaurd", "guard"),
            ("st_mcc", "st_MC"),
        ] {
            let err = EngineKind::parse(typo).unwrap_err().to_string();
            assert!(
                err.contains(&format!("did you mean '{suggestion}'")),
                "{typo}: {err}"
            );
        }
        // The error always lists the full menu.
        let err = EngineKind::parse("zzz").unwrap_err().to_string();
        for kind in EngineKind::ALL {
            assert!(err.contains(kind.name()), "{err}");
        }
    }

    #[test]
    fn engine_spec_json_round_trips() {
        use statobd_num::json::{from_str, to_string};
        for kind in EngineKind::ALL {
            let spec = kind.default_spec().with_threads(Some(3));
            let back: EngineSpec = from_str(&to_string(&spec)).unwrap();
            assert_eq!(back, spec, "{kind}");
        }
        // A bare kind name parses as the default configuration.
        let spec: EngineSpec = from_str("\"hybrid\"").unwrap();
        assert_eq!(spec, EngineKind::Hybrid.default_spec());
        // Unknown kinds are rejected with the did-you-mean message.
        let err = from_str::<EngineSpec>("\"hybird\"").unwrap_err();
        assert!(err.to_string().contains("did you mean"), "{err}");
        assert!(from_str::<EngineSpec>("{\"st_fast\":{},\"MC\":{}}").is_err());
    }

    #[test]
    fn with_threads_applies_to_fanout_engines() {
        let spec = EngineSpec::StFast(StFastConfig::default()).with_threads(Some(3));
        assert!(matches!(spec, EngineSpec::StFast(c) if c.threads == Some(3)));
        let spec = EngineSpec::MonteCarlo(MonteCarloConfig::default()).with_threads(Some(2));
        assert!(matches!(spec, EngineSpec::MonteCarlo(c) if c.threads == Some(2)));
        // The hybrid table build fans out too (one γ-row per work item).
        let spec = EngineSpec::Hybrid(HybridConfig::default()).with_threads(Some(5));
        assert!(matches!(spec, EngineSpec::Hybrid(c) if c.threads == Some(5)));
        // No-op on engines without a fan-out.
        assert_eq!(
            EngineSpec::StClosed.with_threads(Some(4)),
            EngineSpec::StClosed
        );
    }
}
