//! The reliability engines: different evaluators of the ensemble chip
//! failure probability `P(t) = 1 − R_c(t)`, plus the unified
//! [`build_engine`] construction entry point.

pub mod guard;
pub mod hybrid;
pub mod monte_carlo;
pub mod st_closed;
pub mod st_fast;
pub mod st_mc;

use crate::chip::ChipAnalysis;
use crate::Result;
use guard::{GuardBand, GuardBandConfig};
use hybrid::{HybridConfig, HybridTables};
use monte_carlo::{MonteCarlo, MonteCarloConfig};
use st_closed::StClosed;
use st_fast::{StFast, StFastConfig};
use st_mc::{StMc, StMcConfig};

/// A chip-level reliability evaluator.
///
/// Engines expose the *failure probability* `P(t) = 1 − R_c(t)` rather
/// than `R_c(t)` because the quantities of interest (1- and 10-per-million
/// criteria) live at the `10⁻⁶` scale where `R` itself has no usable
/// precision.
///
/// `&mut self` allows engines to cache (the hybrid engine's tables, the
/// Monte-Carlo engine's chip samples).
pub trait ReliabilityEngine {
    /// A short identifier (`"st_fast"`, `"st_MC"`, `"hybrid"`, `"guard"`,
    /// `"MC"`, ...) matching the paper's method abbreviations.
    fn name(&self) -> &str;

    /// The ensemble failure probability at time `t_s` (seconds).
    ///
    /// # Errors
    ///
    /// Engine-specific numerical failures.
    fn failure_probability(&mut self, t_s: f64) -> Result<f64>;
}

/// The available reliability engines, by the paper's Table III
/// abbreviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// [`StFast`] — the paper's main marginal-product method.
    StFast,
    /// [`StMc`] — numerical joint-PDF variant.
    StMc,
    /// [`StClosed`] — fully closed-form first-order evaluation.
    StClosed,
    /// [`HybridTables`] — precomputed `(γ, b)` look-up tables.
    Hybrid,
    /// [`GuardBand`] — traditional worst-case corner.
    GuardBand,
    /// [`MonteCarlo`] — per-device reference simulation.
    MonteCarlo,
}

impl EngineKind {
    /// All engine kinds, in the paper's Table III order.
    pub const ALL: [EngineKind; 6] = [
        EngineKind::StFast,
        EngineKind::StMc,
        EngineKind::StClosed,
        EngineKind::Hybrid,
        EngineKind::GuardBand,
        EngineKind::MonteCarlo,
    ];

    /// The paper's abbreviation (matches [`ReliabilityEngine::name`]).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::StFast => "st_fast",
            EngineKind::StMc => "st_MC",
            EngineKind::StClosed => "st_closed",
            EngineKind::Hybrid => "hybrid",
            EngineKind::GuardBand => "guard",
            EngineKind::MonteCarlo => "MC",
        }
    }

    /// Parses a paper abbreviation (as printed by [`EngineKind::name`],
    /// case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        EngineKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// The default configuration for this kind.
    pub fn default_spec(self) -> EngineSpec {
        match self {
            EngineKind::StFast => EngineSpec::StFast(StFastConfig::default()),
            EngineKind::StMc => EngineSpec::StMc(StMcConfig::default()),
            EngineKind::StClosed => EngineSpec::StClosed,
            EngineKind::Hybrid => EngineSpec::Hybrid(HybridConfig::default()),
            EngineKind::GuardBand => EngineSpec::GuardBand(GuardBandConfig::default()),
            EngineKind::MonteCarlo => EngineSpec::MonteCarlo(MonteCarloConfig::default()),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An engine selection together with its configuration — the input to
/// [`build_engine`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSpec {
    /// Build an [`StFast`] engine.
    StFast(StFastConfig),
    /// Build an [`StMc`] engine.
    StMc(StMcConfig),
    /// Build an [`StClosed`] engine (no configuration).
    StClosed,
    /// Build a [`HybridTables`] engine.
    Hybrid(HybridConfig),
    /// Build a [`GuardBand`] engine.
    GuardBand(GuardBandConfig),
    /// Build a [`MonteCarlo`] engine.
    MonteCarlo(MonteCarloConfig),
}

impl EngineSpec {
    /// The kind this spec builds.
    pub fn kind(&self) -> EngineKind {
        match self {
            EngineSpec::StFast(_) => EngineKind::StFast,
            EngineSpec::StMc(_) => EngineKind::StMc,
            EngineSpec::StClosed => EngineKind::StClosed,
            EngineSpec::Hybrid(_) => EngineKind::Hybrid,
            EngineSpec::GuardBand(_) => EngineKind::GuardBand,
            EngineSpec::MonteCarlo(_) => EngineKind::MonteCarlo,
        }
    }

    /// Overrides the worker-thread count on the kinds that fan out
    /// (`st_fast`, `st_MC`, `MC`); a no-op for the rest.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        match &mut self {
            EngineSpec::StFast(c) => c.threads = threads,
            EngineSpec::StMc(c) => c.threads = threads,
            EngineSpec::MonteCarlo(c) => c.threads = threads,
            EngineSpec::StClosed | EngineSpec::Hybrid(_) | EngineSpec::GuardBand(_) => {}
        }
        self
    }
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineKind::StFast.default_spec()
    }
}

impl From<EngineKind> for EngineSpec {
    fn from(kind: EngineKind) -> Self {
        kind.default_spec()
    }
}

/// Builds any reliability engine over a characterized chip — the single
/// construction entry point used by the CLI, the benchmarks, and the
/// examples.
///
/// The returned engine borrows `analysis` (engines that keep a reference
/// tie their lifetime to it; self-contained engines like
/// [`HybridTables`] simply outlive the borrow).
///
/// # Errors
///
/// Propagates the underlying constructor's validation errors
/// ([`crate::CoreError::InvalidParameter`] for degenerate configurations,
/// numerical failures from table/sample construction).
///
/// # Example
///
/// ```no_run
/// use statobd_core::{build_engine, ChipAnalysis, EngineKind};
/// # fn demo(analysis: &ChipAnalysis) -> statobd_core::Result<()> {
/// let mut engine = build_engine(analysis, &EngineKind::StFast.default_spec())?;
/// let p = engine.failure_probability(1e9)?;
/// # let _ = p; Ok(())
/// # }
/// ```
pub fn build_engine<'a>(
    analysis: &'a ChipAnalysis,
    spec: &EngineSpec,
) -> Result<Box<dyn ReliabilityEngine + 'a>> {
    Ok(match spec {
        EngineSpec::StFast(config) => Box::new(StFast::new(analysis, *config)),
        EngineSpec::StMc(config) => Box::new(StMc::new(analysis, *config)?),
        EngineSpec::StClosed => Box::new(StClosed::new(analysis)),
        EngineSpec::Hybrid(config) => Box::new(HybridTables::build(analysis, *config)?),
        EngineSpec::GuardBand(config) => Box::new(GuardBand::new(analysis, *config)?),
        EngineSpec::MonteCarlo(config) => Box::new(MonteCarlo::build(analysis, *config)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::parse(kind.name()), Some(kind));
            assert_eq!(EngineKind::parse(&kind.name().to_uppercase()), Some(kind));
            assert_eq!(kind.default_spec().kind(), kind);
        }
        assert_eq!(EngineKind::parse("nope"), None);
    }

    #[test]
    fn with_threads_applies_to_fanout_engines() {
        let spec = EngineSpec::StFast(StFastConfig::default()).with_threads(Some(3));
        assert!(matches!(spec, EngineSpec::StFast(c) if c.threads == Some(3)));
        let spec = EngineSpec::MonteCarlo(MonteCarloConfig::default()).with_threads(Some(2));
        assert!(matches!(spec, EngineSpec::MonteCarlo(c) if c.threads == Some(2)));
        // No-op on engines without a fan-out.
        assert_eq!(
            EngineSpec::StClosed.with_threads(Some(4)),
            EngineSpec::StClosed
        );
    }
}
