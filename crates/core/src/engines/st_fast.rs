//! The paper's main method (Sec. IV-D, algorithm of its Fig. 9): the
//! ensemble failure probability as `N` double integrals over the product
//! of marginals `f_u(u)·f_v(v)`,
//!
//! ```text
//! P(t) = Σ_j ∫∫ (1 − e^{−A_j·g(u,v)}) f_u_j(u) f_v_j(v) du dv     (eq. 28)
//! ```
//!
//! The `u` integral is evaluated by an `l0`-point midpoint rule over
//! `±width·σ_u` (the paper's sub-domain integral sum); the `v` integral is
//! evaluated in *quantile space* — `v = F_v⁻¹(p)` with a midpoint rule
//! over `p ∈ (0,1)` — which is exact in distribution and immune to the
//! integrable singularity the χ² density develops at its floor when the
//! fitted degrees of freedom drop below 2.

use crate::blod::{MeanDist, VarianceDist};
use crate::chip::ChipAnalysis;
use crate::engines::ReliabilityEngine;
use crate::gfun::GCoefficients;
use crate::{CoreError, Result};
use statobd_num::dist::ContinuousDistribution;
use statobd_num::simd;

/// One u-row ∩ tile segment of the flattened `(u, v)` node walk. The
/// probability weight `wu·w_v` is constant per segment, so the kernel
/// terms are summed plainly and the weight multiplied in once.
#[derive(Clone, Copy)]
struct Segment {
    /// Start offset (in nodes) of this segment's terms in the compacted
    /// tile buffer; meaningless when `skip` is set.
    start: usize,
    /// Segment length in nodes.
    len: usize,
    /// The row's probability weight `wu · w_v`.
    wuv: f64,
    /// Saturated row: every term is exactly 1.0, nothing was buffered.
    skip: bool,
    /// Nodes in the segment's *polynomial prefix*: the leading `poly_len`
    /// nodes are certified below the failure term's polynomial threshold
    /// (see [`simd::failure_poly_threshold`]) for every lane, so their
    /// kernel needs only one transcendental per element. The argument
    /// `su + s2·v` is weakly monotone in `v` (both operations correctly
    /// rounded) and `s2 ≥ 0` in practice, so the threshold crossings are
    /// found by bisection over the ascending `v_nodes` slice; rows that
    /// descend (`s2 < 0`) or carry NaN/±∞ endpoint arguments are
    /// conservatively classified whole-mixed (`poly_len` and `big_len`
    /// both 0), which routes them down the general elementwise path. 0
    /// when `skip` is set.
    poly_len: usize,
    /// Upper bound on the prefix's arguments (the prefix's last node,
    /// maximized over lanes). Always finite when `poly_len > 0`;
    /// meaningless otherwise.
    poly_hi: f64,
    /// Nodes in the segment's *big-arm suffix*: the trailing `big_len`
    /// nodes are certified at or above the polynomial threshold for
    /// every lane (via the lane *minimum* — the prefix uses the lane
    /// maximum, so a narrow mixed band can sit between them when lanes
    /// cross the threshold at different `v`). Their kernel skips the
    /// 3-arm select for the light big-arm finish. 0 when `skip` is set.
    big_len: usize,
    /// Lower bound on the suffix's arguments (the suffix's first node,
    /// minimized over lanes). Always finite and `≥` the polynomial
    /// threshold when `big_len > 0`; meaningless otherwise.
    big_lo: f64,
}

/// Scratch buffers for the lane-vectorized quadrature sweeps, reused
/// across calls (and private to each worker thread, so the batched
/// fan-out never shares them).
#[derive(Default)]
struct QuadScratch {
    args: Vec<f64>,
    terms: Vec<f64>,
    segs: Vec<Segment>,
}

/// Runs the failure-term kernel over one tile's buffered arguments,
/// split into maximal runs of same-regime node ranges: each segment
/// contributes its polynomial prefix (`poly_len` nodes, one
/// transcendental per element), a mixed band, and its big-arm suffix
/// (`big_len` nodes, no 3-arm select), and consecutive ranges of the
/// same class are merged into one kernel call. Rows drift through the
/// regimes monotonically with `u` and the in-row split follows the
/// `v`-monotone argument, so the runs are long — the dominant
/// tiny/small nodes take their single-pass kernels instead of being
/// dragged onto the two-pass path by one hot node in the same row or
/// tile, and the hot tail takes the big-only route. Poly runs certify
/// their prefix-derived upper bound and big runs their suffix-derived
/// lower bound to [`simd::failure_term_slice_bounded`]; mixed runs
/// (which include NaN-classified ranges) pass unbounded and fall to the
/// elementwise tiled screens. Run boundaries never affect bits — every
/// kernel route applies the same elementwise `(x, scale)` arms.
///
/// `stride` is buffer elements per logical node (1 for the single
/// path, the lane count for the batched path).
fn kernel_runs(args: &[f64], terms: &mut [f64], segs: &[Segment], area: f64, stride: usize) {
    let mut start = 0;
    let mut len = 0;
    let mut hi = f64::NEG_INFINITY;
    let mut lo = f64::INFINITY;
    let mut class = 0u8;
    let flush = |start: usize, len: usize, lo: f64, hi: f64, terms: &mut [f64]| {
        if len == 0 {
            return;
        }
        simd::failure_term_slice_bounded(
            &args[start..start + len],
            area,
            lo,
            hi,
            &mut terms[start..start + len],
        );
    };
    for seg in segs {
        if seg.skip {
            continue;
        }
        // (class, nodes, run hi, run lo): poly prefix bounds above,
        // big suffix bounds below, the mixed band not at all.
        let ranges = [
            (0u8, seg.poly_len, seg.poly_hi, f64::NEG_INFINITY),
            (
                1u8,
                seg.len - seg.poly_len - seg.big_len,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ),
            (2u8, seg.big_len, f64::INFINITY, seg.big_lo),
        ];
        for (c, nodes, range_hi, range_lo) in ranges {
            if nodes == 0 {
                continue;
            }
            if len > 0 && c != class {
                flush(start, len, lo, hi, terms);
                start += len;
                len = 0;
                hi = f64::NEG_INFINITY;
                lo = f64::INFINITY;
            }
            class = c;
            len += nodes * stride;
            // Poly `poly_hi` and big `big_lo` are always finite, so the
            // NaN-swallowing `max`/`min` folds are safe here.
            hi = hi.max(range_hi);
            lo = lo.min(range_lo);
        }
    }
    flush(start, len, lo, hi, terms);
}

thread_local! {
    static SCRATCH: std::cell::RefCell<QuadScratch> =
        std::cell::RefCell::new(QuadScratch::default());
}

/// Flattened-node budget per lane tile: the argument and term buffers
/// are 8 KiB each, comfortably L1-resident. Both quadrature paths use
/// `NODE_TILE / W` nodes per tile at lane width `W` (the batched path
/// interleaves `W` lanes per node, the single path matches its
/// segmentation so per-segment partial sums group identically and the
/// two stay bit-identical at the same width).
const NODE_TILE: usize = 1024;

/// Sweep times per batched work item. Fixed (never thread-derived) so
/// chunk boundaries — and therefore results — are independent of the
/// worker count; large enough that per-item dispatch cost is amortized
/// over many lane chunks.
const T_CHUNK: usize = 64;

/// How the sample-variance distribution `f_v` is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VarianceMethod {
    /// The paper's Yuan–Bentler χ² two-moment fit (eqs. 29–30).
    #[default]
    ChiSquare,
    /// Exact Imhof numerical inversion of the quadratic form (the paper's
    /// reference \[32\]) — slower node construction, removes the fit error.
    Imhof,
}

impl statobd_num::json::ToJson for VarianceMethod {
    fn to_json(&self) -> statobd_num::json::Json {
        statobd_num::json::Json::String(
            match self {
                VarianceMethod::ChiSquare => "chi_square",
                VarianceMethod::Imhof => "imhof",
            }
            .to_string(),
        )
    }
}

impl statobd_num::json::FromJson for VarianceMethod {
    fn from_json(v: &statobd_num::json::Json) -> statobd_num::json::Result<Self> {
        match v.as_str() {
            Some("chi_square") => Ok(VarianceMethod::ChiSquare),
            Some("imhof") => Ok(VarianceMethod::Imhof),
            _ => Err(statobd_num::json::JsonError::new(format!(
                "expected \"chi_square\" or \"imhof\", got {v}"
            ))),
        }
    }
}

/// Configuration of the [`StFast`] engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StFastConfig {
    /// Number of integration sub-domains per axis (`l0`; paper default 10).
    pub l0: usize,
    /// Half-width of the `u` domain in units of `σ_u`.
    pub u_width_sigmas: f64,
    /// Evaluation method for the sample-variance distribution.
    pub v_method: VarianceMethod,
    /// Worker threads for the per-block quadrature construction
    /// (`None` = all cores).
    pub threads: Option<usize>,
}

statobd_num::impl_json_struct!(StFastConfig {
    l0,
    u_width_sigmas,
    v_method,
    threads
});

impl Default for StFastConfig {
    fn default() -> Self {
        StFastConfig {
            l0: crate::params::DEFAULT_L0,
            u_width_sigmas: 6.0,
            v_method: VarianceMethod::ChiSquare,
            threads: None,
        }
    }
}

/// Precomputed quadrature nodes for one block's `(u, v)` double integral.
///
/// The node sets depend only on the BLOD distributions, not on time, so
/// they are built once per engine (gamma quantile inversion is the
/// expensive part) and reused by every `P_j(t)` evaluation.
#[derive(Debug, Clone)]
pub(crate) struct BlockQuadrature {
    u_nodes: Vec<f64>,
    u_weights: Vec<f64>,
    v_nodes: Vec<f64>,
    v_weight: f64,
}

impl BlockQuadrature {
    /// Builds the node sets for a block's BLOD under `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `cfg.l0` is 0, and
    /// propagates quantile-evaluation failures.
    pub(crate) fn new(moments: &crate::blod::BlodMoments, cfg: &StFastConfig) -> Result<Self> {
        if cfg.l0 == 0 {
            return Err(CoreError::InvalidParameter {
                detail: "l0 must be positive".to_string(),
            });
        }

        // u nodes and probability weights (midpoint over ±width·σ).
        let (u_nodes, u_weights): (Vec<f64>, Vec<f64>) = match moments.u_dist() {
            MeanDist::Deterministic(u) => (vec![u], vec![1.0]),
            MeanDist::Gaussian(n) => {
                let mu = n.mean();
                let sd = n.std_dev();
                let half = cfg.u_width_sigmas * sd;
                let h = 2.0 * half / cfg.l0 as f64;
                let nodes: Vec<f64> = (0..cfg.l0)
                    .map(|i| mu - half + (i as f64 + 0.5) * h)
                    .collect();
                let weights: Vec<f64> = nodes.iter().map(|&u| n.pdf(u) * h).collect();
                (nodes, weights)
            }
        };

        // v nodes in quantile space (equal probability weights).
        let v_nodes: Vec<f64> = match moments.v_dist() {
            VarianceDist::Deterministic(v) => vec![v],
            dist @ VarianceDist::ShiftedGamma { .. } => (0..cfg.l0)
                .map(|i| {
                    let p = (i as f64 + 0.5) / cfg.l0 as f64;
                    match cfg.v_method {
                        VarianceMethod::ChiSquare => dist.quantile(p),
                        VarianceMethod::Imhof => moments.v_quantile_imhof(p),
                    }
                })
                .collect::<Result<Vec<f64>>>()?,
        };
        let v_weight = 1.0 / v_nodes.len() as f64;
        Ok(BlockQuadrature {
            u_nodes,
            u_weights,
            v_nodes,
            v_weight,
        })
    }

    /// The argument at which a u-row's *smallest* quadrature argument
    /// sits, given the row offset `su` and the `v`-axis coefficient:
    /// `v_nodes` is ascending, so the row minimum is at the first node
    /// for `s2 ≥ 0` and the last otherwise.
    #[inline]
    fn row_min_arg(&self, su: f64, s2: f64) -> f64 {
        let v = if s2 >= 0.0 {
            self.v_nodes[0]
        } else {
            self.v_nodes[self.v_nodes.len() - 1]
        };
        su + s2 * v
    }

    /// Splits one row-run `[vi, vi + run)` at the failure term's
    /// polynomial threshold: the returned `(poly_len, poly_hi, big_len,
    /// big_lo)` certifies that the first `poly_len` nodes' arguments
    /// stay below `x_poly` for **every** lane (bounded above by
    /// `poly_hi`, the lane maximum at the prefix's last node) and that
    /// the last `big_len` nodes' arguments sit at or above `x_poly` for
    /// every lane (bounded below by `big_lo`, the lane minimum at the
    /// suffix's first node). `arg_max`/`arg_min` must return the node
    /// argument maximized/minimized over active lanes — exactly as the
    /// buffer fill computes it — and `certified` that the bisection's
    /// preconditions hold: the per-lane arguments are weakly ascending
    /// in `v` (true when every lane's `s2 ≥ 0`, the practical case:
    /// `s2 = gb²/2`) and the row endpoints are NaN-free (a lane-folding
    /// `arg` would swallow a NaN the kernel must propagate). The two
    /// crossings are found by bisection; a narrow mixed band remains
    /// between them when lanes cross the threshold at different `v`
    /// (always empty on the single path, where max ≡ min). Uncertified
    /// rows are classified whole-mixed — the mixed kernel path handles
    /// descending arguments and propagates NaN elementwise.
    fn regime_split(
        &self,
        vi: usize,
        run: usize,
        x_poly: f64,
        certified: bool,
        arg_max: impl Fn(f64) -> f64,
        arg_min: impl Fn(f64) -> f64,
    ) -> (usize, f64, usize, f64) {
        if !certified {
            return (0, f64::NAN, 0, f64::NAN);
        }
        // Bisects for the first node with `arg ≥ x_poly`, returned as a
        // prefix length (exists: `arg` is weakly ascending in `v` with
        // arg(vi) < x_poly ≤ arg(vi + run − 1)).
        let cross = |arg: &dyn Fn(f64) -> f64| {
            let mut lo = vi; // arg < x_poly
            let mut hi = vi + run - 1; // arg ≥ x_poly
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if arg(self.v_nodes[mid]) >= x_poly {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            hi - vi
        };
        let (v_first, v_last) = (self.v_nodes[vi], self.v_nodes[vi + run - 1]);
        let (poly_len, poly_hi) = if arg_max(v_last) < x_poly {
            (run, arg_max(v_last))
        } else if arg_max(v_first) >= x_poly {
            (0, f64::NAN)
        } else {
            let k = cross(&arg_max);
            (k, arg_max(self.v_nodes[vi + k - 1]))
        };
        let (big_len, big_lo) = if poly_len == run {
            (0, f64::NAN)
        } else if arg_min(v_first) >= x_poly {
            (run, arg_min(v_first))
        } else if arg_min(v_last) < x_poly {
            (0, f64::NAN)
        } else {
            let k = cross(&arg_min);
            (run - k, arg_min(self.v_nodes[vi + k]))
        };
        (poly_len, poly_hi, big_len, big_lo)
    }

    /// Evaluates `∫∫ (1 − e^{−A·g(u,v)}) f_u(u) f_v(v) du dv` for the
    /// given kernel coefficients.
    ///
    /// At lane width 1 this runs the historical scalar loop verbatim.
    /// At widths 4/8 the flattened `(u, v)` node walk is tiled at
    /// `NODE_TILE / W` logical nodes and split into u-row ∩ tile
    /// [`Segment`]s: the probability weight is constant per segment, so
    /// each accumulates a plain term sum (one add per node) with the
    /// weight multiplied in once. Rows whose minimum argument clears
    /// [`simd::failure_sat_threshold`] skip argument fill and kernel
    /// entirely — every term there is exactly 1.0 and a sequential sum
    /// of ones is exact, so the skip contributes `wuv · len` with
    /// unchanged bits. Crucially the segment boundaries follow the
    /// *logical* node walk, never the skip decisions, so partial-sum
    /// grouping — and therefore every output bit — matches
    /// [`Self::integrate_many`] at the same width even where the two
    /// paths screen differently.
    pub(crate) fn integrate(&self, area: f64, coeff: GCoefficients) -> f64 {
        let width = simd::active_width();
        if width == simd::LaneWidth::W1 {
            return self.integrate_scalar(area, coeff);
        }
        let cap = NODE_TILE / width.lanes();
        let x_sat = simd::failure_sat_threshold(area);
        let x_poly = simd::failure_poly_threshold(area);
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.args.resize(cap, 0.0);
            scratch.terms.resize(cap, 0.0);
            scratch.segs.clear();
            let mut p = 0.0;
            let mut fill = 0; // logical nodes in the current tile
            let mut bfill = 0; // buffered (non-skipped) nodes
            let flush = |scratch: &mut QuadScratch, bfill: usize, p: &mut f64| {
                kernel_runs(
                    &scratch.args[..bfill],
                    &mut scratch.terms[..bfill],
                    &scratch.segs,
                    area,
                    1,
                );
                for seg in &scratch.segs {
                    let sum = if seg.skip {
                        seg.len as f64
                    } else {
                        let mut s = 0.0;
                        for &term in &scratch.terms[seg.start..seg.start + seg.len] {
                            s += term;
                        }
                        s
                    };
                    *p += seg.wuv * sum;
                }
                scratch.segs.clear();
            };
            for (&u, &wu) in self.u_nodes.iter().zip(&self.u_weights) {
                let su = coeff.s1 * u;
                let wuv = wu * self.v_weight;
                let skip = self.row_min_arg(su, coeff.s2) >= x_sat;
                let mut vi = 0;
                while vi < self.v_nodes.len() {
                    let run = (cap - fill).min(self.v_nodes.len() - vi);
                    let (poly_len, poly_hi, big_len, big_lo) = if skip {
                        (0, f64::NAN, 0, f64::NAN)
                    } else {
                        let e0 = su + coeff.s2 * self.v_nodes[vi];
                        let e1 = su + coeff.s2 * self.v_nodes[vi + run - 1];
                        let nan = e0.is_nan() || e1.is_nan();
                        let arg = |v: f64| su + coeff.s2 * v;
                        self.regime_split(vi, run, x_poly, !nan && coeff.s2 >= 0.0, arg, arg)
                    };
                    if !skip {
                        simd::affine_slice(
                            su,
                            coeff.s2,
                            &self.v_nodes[vi..vi + run],
                            &mut scratch.args[bfill..bfill + run],
                        );
                    }
                    scratch.segs.push(Segment {
                        start: bfill,
                        len: run,
                        wuv,
                        skip,
                        poly_len,
                        poly_hi,
                        big_len,
                        big_lo,
                    });
                    if !skip {
                        bfill += run;
                    }
                    fill += run;
                    vi += run;
                    if fill == cap {
                        flush(scratch, bfill, &mut p);
                        fill = 0;
                        bfill = 0;
                    }
                }
            }
            if fill > 0 {
                flush(scratch, bfill, &mut p);
            }
            p.clamp(0.0, 1.0)
        })
    }

    /// The pre-lane-layer scalar loop, kept verbatim: it defines the
    /// bit-exact reference semantics that lane width 1 must reproduce.
    fn integrate_scalar(&self, area: f64, coeff: GCoefficients) -> f64 {
        let mut p = 0.0;
        for (&u, &wu) in self.u_nodes.iter().zip(&self.u_weights) {
            for &v in &self.v_nodes {
                let g = coeff.g(u, v);
                p += wu * self.v_weight * (-(-area * g).exp_m1());
            }
        }
        p.clamp(0.0, 1.0)
    }

    /// Evaluates the double integral for a batch of coefficient sets
    /// (e.g. one per sweep time) sharing this block's node grid, writing
    /// `out[i] = integrate(area, coeffs[i])`.
    ///
    /// At widths 4/8 the batch is processed `W` items at a time — each
    /// `(u, v)` node contributes to `W` integrals from one fused lane
    /// evaluation, with each u-row tiled so the argument and term
    /// buffers stay cache-resident. Segment sums, weight application and
    /// the saturated-row skip mirror [`Self::integrate`] exactly, so
    /// every entry is bit-identical to a single call at the same width.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != out.len()`.
    pub(crate) fn integrate_many(&self, area: f64, coeffs: &[GCoefficients], out: &mut [f64]) {
        assert_eq!(coeffs.len(), out.len(), "integrate_many length mismatch");
        match simd::active_width() {
            simd::LaneWidth::W1 => {
                for (o, &coeff) in out.iter_mut().zip(coeffs) {
                    *o = self.integrate_scalar(area, coeff);
                }
            }
            simd::LaneWidth::W4 => self.integrate_many_lanes::<4>(area, coeffs, out),
            simd::LaneWidth::W8 => self.integrate_many_lanes::<8>(area, coeffs, out),
        }
    }

    fn integrate_many_lanes<const W: usize>(
        &self,
        area: f64,
        coeffs: &[GCoefficients],
        out: &mut [f64],
    ) {
        let cap = NODE_TILE / W;
        let x_sat = simd::failure_sat_threshold(area);
        let x_poly = simd::failure_poly_threshold(area);
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            // Same cache budget as the single path: `cap` flattened
            // nodes × W interleaved lanes per buffer.
            scratch.args.resize(cap * W, 0.0);
            scratch.terms.resize(cap * W, 0.0);

            let mut idx = 0;
            while idx < coeffs.len() {
                let m = (coeffs.len() - idx).min(W);
                // Unused lanes of a remainder chunk run on zero
                // coefficients (finite everywhere) and are discarded.
                let mut s1 = [0.0; W];
                let mut s2 = [0.0; W];
                for (lane, coeff) in s1.iter_mut().zip(&coeffs[idx..idx + m]) {
                    *lane = coeff.s1;
                }
                for (lane, coeff) in s2.iter_mut().zip(&coeffs[idx..idx + m]) {
                    *lane = coeff.s2;
                }
                let mut acc = [0.0; W];
                let mut fill = 0;
                let mut bfill = 0;
                scratch.segs.clear();
                let flush = |scratch: &mut QuadScratch, bfill: usize, acc: &mut [f64; W]| {
                    kernel_runs(
                        &scratch.args[..bfill * W],
                        &mut scratch.terms[..bfill * W],
                        &scratch.segs,
                        area,
                        W,
                    );
                    for seg in &scratch.segs {
                        if seg.skip {
                            for lane in acc.iter_mut() {
                                *lane += seg.wuv * seg.len as f64;
                            }
                        } else {
                            let mut sum = [0.0; W];
                            simd::lane_sum_acc(
                                &scratch.terms[seg.start * W..(seg.start + seg.len) * W],
                                &mut sum,
                            );
                            for (lane, &s) in acc.iter_mut().zip(&sum) {
                                *lane += seg.wuv * s;
                            }
                        }
                    }
                    scratch.segs.clear();
                };
                for (&u, &wu) in self.u_nodes.iter().zip(&self.u_weights) {
                    let wuv = wu * self.v_weight;
                    let mut su = [0.0; W];
                    for w in 0..W {
                        su[w] = s1[w] * u;
                    }
                    // A row is skipped only when EVERY lane saturates.
                    // Lanes that saturate inside a computed row still
                    // get exact 1.0 terms from the kernel's own screen,
                    // and segment boundaries follow the logical walk
                    // either way, so skipped and computed lanes agree
                    // bit for bit with the single-integral path.
                    let skip = (0..W).all(|w| self.row_min_arg(su[w], s2[w]) >= x_sat);
                    let mut vi = 0;
                    while vi < self.v_nodes.len() {
                        let run = (cap - fill).min(self.v_nodes.len() - vi);
                        let (poly_len, poly_hi, big_len, big_lo) = if skip {
                            (0, f64::NAN, 0, f64::NAN)
                        } else {
                            let (v0, v1) = (self.v_nodes[vi], self.v_nodes[vi + run - 1]);
                            let mut nan = false;
                            for w in 0..W {
                                nan |=
                                    (su[w] + s2[w] * v0).is_nan() || (su[w] + s2[w] * v1).is_nan();
                            }
                            let ascending = s2.iter().all(|&b| b >= 0.0);
                            self.regime_split(
                                vi,
                                run,
                                x_poly,
                                !nan && ascending,
                                |v| {
                                    let mut h = f64::NEG_INFINITY;
                                    for w in 0..W {
                                        h = h.max(su[w] + s2[w] * v);
                                    }
                                    h
                                },
                                |v| {
                                    let mut l = f64::INFINITY;
                                    for w in 0..W {
                                        l = l.min(su[w] + s2[w] * v);
                                    }
                                    l
                                },
                            )
                        };
                        if !skip {
                            simd::lane_affine_fill(
                                &su,
                                &s2,
                                &self.v_nodes[vi..vi + run],
                                &mut scratch.args[bfill * W..(bfill + run) * W],
                            );
                        }
                        scratch.segs.push(Segment {
                            start: bfill,
                            len: run,
                            wuv,
                            skip,
                            poly_len,
                            poly_hi,
                            big_len,
                            big_lo,
                        });
                        if !skip {
                            bfill += run;
                        }
                        fill += run;
                        vi += run;
                        if fill == cap {
                            flush(scratch, bfill, &mut acc);
                            fill = 0;
                            bfill = 0;
                        }
                    }
                }
                if fill > 0 {
                    flush(scratch, bfill, &mut acc);
                }
                for (o, &a) in out[idx..idx + m].iter_mut().zip(&acc[..m]) {
                    *o = a.clamp(0.0, 1.0);
                }
                idx += m;
            }
        });
    }
}

/// The marginal-product analytic engine (`st_fast` in the paper's
/// Table III).
#[derive(Debug)]
pub struct StFast<'a> {
    analysis: &'a ChipAnalysis,
    config: StFastConfig,
    /// Lazily built per-block quadratures (time-independent).
    quadratures: std::cell::OnceCell<Result<Vec<BlockQuadrature>>>,
}

impl<'a> StFast<'a> {
    /// Creates the engine over a characterized chip.
    pub fn new(analysis: &'a ChipAnalysis, config: StFastConfig) -> Self {
        StFast {
            analysis,
            config,
            quadratures: std::cell::OnceCell::new(),
        }
    }

    fn quadratures(&self) -> Result<&[BlockQuadrature]> {
        let built = self.quadratures.get_or_init(|| {
            // Node construction (gamma quantile inversion, Imhof) is the
            // expensive step; fan it out one block per work item. Results
            // are gathered in block order, so the engine is deterministic
            // at any thread count.
            let threads = statobd_num::parallel::resolve_threads(self.config.threads);
            let blocks = self.analysis.blocks();
            let config = self.config;
            statobd_num::parallel::run_indexed(blocks.len(), threads, move |j| {
                BlockQuadrature::new(blocks[j].moments(), &config)
            })
            .into_iter()
            .collect()
        });
        match built {
            Ok(v) => Ok(v.as_slice()),
            Err(e) => Err(e.clone()),
        }
    }

    /// The per-block failure probability
    /// `P_j(t) = ∫∫ (1 − e^{−A_j g}) f_u f_v du dv`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the configured `l0` is 0,
    /// and propagates quantile-evaluation failures.
    pub fn block_failure_probability(&self, block_idx: usize, t_s: f64) -> Result<f64> {
        let block = &self.analysis.blocks()[block_idx];
        let coeff = GCoefficients::at(t_s, block.alpha_s(), block.b_per_nm());
        Ok(self.quadratures()?[block_idx].integrate(block.spec().area(), coeff))
    }
}

impl ReliabilityEngine for StFast<'_> {
    fn name(&self) -> &str {
        "st_fast"
    }

    fn failure_probability(&mut self, t_s: f64) -> Result<f64> {
        let mut chip = self
            .analysis
            .composition()
            .accumulator(self.analysis.n_blocks());
        for j in 0..self.analysis.n_blocks() {
            chip.absorb(j, self.block_failure_probability(j, t_s)?);
        }
        Ok(chip.failure_probability())
    }

    /// Reuses the time-independent quadrature node sets and evaluates the
    /// sweep as `(block × time-chunk)` work items of up to [`T_CHUNK`]
    /// times each, every chunk running one [`BlockQuadrature::integrate_many`]
    /// lane sweep. Chunk boundaries are fixed (never derived from the
    /// thread count), per-item accumulation matches the single-call node
    /// order, and the per-time weakest-link compositions run in block
    /// order — so the result is bit-identical to the scalar loop at any
    /// thread count and any lane width.
    fn failure_probabilities(&mut self, ts: &[f64]) -> Result<Vec<f64>> {
        let quads = self.quadratures()?;
        let blocks = self.analysis.blocks();
        let n_blocks = blocks.len();
        let n_t = ts.len();
        if n_t == 0 || n_blocks == 0 {
            return Ok(vec![0.0; 0]);
        }
        let chunks_per_block = n_t.div_ceil(T_CHUNK);
        let eval_chunk = |idx: usize| -> Vec<f64> {
            let (j, c) = (idx / chunks_per_block, idx % chunks_per_block);
            let block = &blocks[j];
            let lo = c * T_CHUNK;
            let hi = n_t.min(lo + T_CHUNK);
            let coeffs: Vec<GCoefficients> = ts[lo..hi]
                .iter()
                .map(|&t| GCoefficients::at(t, block.alpha_s(), block.b_per_nm()))
                .collect();
            let mut chunk = vec![0.0; hi - lo];
            quads[j].integrate_many(block.spec().area(), &coeffs, &mut chunk);
            chunk
        };
        let n_items = n_blocks * chunks_per_block;
        let threads = statobd_num::parallel::resolve_threads(self.config.threads);
        let chunks: Vec<Vec<f64>> = if n_items < 2 || threads <= 1 {
            (0..n_items).map(eval_chunk).collect()
        } else {
            statobd_num::parallel::run_indexed(n_items, threads, eval_chunk)
        };
        let mut per_block_t = vec![0.0; n_blocks * n_t];
        for (idx, chunk) in chunks.into_iter().enumerate() {
            let j = idx / chunks_per_block;
            let lo = (idx % chunks_per_block) * T_CHUNK;
            per_block_t[j * n_t + lo..j * n_t + lo + chunk.len()].copy_from_slice(&chunk);
        }
        let mut chip = self.analysis.composition().accumulator(n_blocks);
        Ok((0..n_t)
            .map(|ti| {
                chip.reset();
                for j in 0..n_blocks {
                    chip.absorb(j, per_block_t[j * n_t + ti]);
                }
                chip.failure_probability()
            })
            .collect())
    }

    fn sweep_batch_hint(&self) -> usize {
        // Each block chunk is a lane sweep: a full 8-wide chunk per call
        // keeps the lanes busy even single-threaded, and extra workers
        // each want their own chunk of work.
        statobd_num::parallel::resolve_threads(self.config.threads).max(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{BlockSpec, ChipSpec};
    use crate::engines::ReliabilityEngine;
    use statobd_device::ClosedFormTech;
    use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

    fn analysis() -> ChipAnalysis {
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(5).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let mut spec = ChipSpec::new();
        spec.add_block(
            BlockSpec::new(
                "core",
                40_000.0,
                40_000,
                368.15,
                1.2,
                vec![(0, 0.5), (1, 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        spec.add_block(
            BlockSpec::new("cache", 60_000.0, 60_000, 341.15, 1.2, vec![(12, 1.0)]).unwrap(),
        )
        .unwrap();
        ChipAnalysis::new(spec, model, &ClosedFormTech::nominal_45nm()).unwrap()
    }

    #[test]
    fn failure_probability_is_monotone_in_time() {
        let a = analysis();
        let mut e = StFast::new(&a, StFastConfig::default());
        let mut prev = 0.0;
        for i in 0..12 {
            let t = 10f64.powf(6.0 + i as f64);
            let p = e.failure_probability(t).unwrap();
            assert!(p >= prev - 1e-15, "P not monotone at {t}: {p} < {prev}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn hot_block_dominates_failure() {
        let a = analysis();
        let e = StFast::new(&a, StFastConfig::default());
        // Pick a time where total failure prob is around 1e-5.
        let t = 3e8;
        let p_hot = e.block_failure_probability(0, t).unwrap();
        let p_cool = e.block_failure_probability(1, t).unwrap();
        // The hot block (30 K hotter, comparable area) must dominate.
        assert!(
            p_hot > 5.0 * p_cool,
            "hot {p_hot:.3e} should dominate cool {p_cool:.3e}"
        );
    }

    #[test]
    fn converges_with_l0() {
        let a = analysis();
        let t = 1e9;
        let coarse = StFast::new(
            &a,
            StFastConfig {
                l0: 10,
                ..Default::default()
            },
        )
        .block_failure_probability(0, t)
        .unwrap();
        let fine = StFast::new(
            &a,
            StFastConfig {
                l0: 200,
                ..Default::default()
            },
        )
        .block_failure_probability(0, t)
        .unwrap();
        let rel = ((coarse - fine) / fine).abs();
        // The paper claims l0 = 10 is sufficient (~1% errors); allow 3%.
        assert!(rel < 0.03, "l0=10 vs l0=200 differ by {rel:.4}");
    }

    #[test]
    fn matches_direct_device_product_for_single_grid_block() {
        // For a block entirely inside one grid, u ~ N(u0, σ_grid²) and
        // v = σ_ind² exactly. The ensemble block failure probability can
        // be computed directly as an integral over the global+spatial
        // component:
        //   P = ∫ φ(s) (1 − exp(−A·g(u0+σ_g·s, σ_ind²))) ds.
        let a = analysis();
        let block = &a.blocks()[1];
        let t = 3e8;
        let coeff = GCoefficients::at(t, block.alpha_s(), block.b_per_nm());
        let sigma_u = block.moments().u_sigma();
        let u0 = block.moments().u_nominal();
        let v0 = block.moments().v_floor();
        let area = block.spec().area();
        let direct = statobd_num::quad::integrate_1d(
            statobd_num::quad::QuadRule::GaussLegendre,
            400,
            -10.0,
            10.0,
            |s| {
                statobd_num::special::norm_pdf(s)
                    * (-(-area * coeff.g(u0 + sigma_u * s, v0)).exp_m1())
            },
        )
        .unwrap();
        let engine = StFast::new(
            &a,
            StFastConfig {
                l0: 400,
                ..Default::default()
            },
        );
        let p = engine.block_failure_probability(1, t).unwrap();
        let rel = ((p - direct) / direct).abs();
        assert!(rel < 1e-6, "engine {p:.6e} vs direct {direct:.6e}");
    }

    #[test]
    fn imhof_variance_method_agrees_with_chi2() {
        // The exact Imhof evaluation of f_v vs the Yuan-Bentler fit: for
        // the multi-grid core block they agree at the sub-percent level on
        // P(t) (the chi2 fit error is small compared to the method's ~1%
        // target, which is why the paper's cheap approximation works).
        let a = analysis();
        let t = 1e9;
        let chi = StFast::new(
            &a,
            StFastConfig {
                l0: 50,
                ..Default::default()
            },
        )
        .block_failure_probability(0, t)
        .unwrap();
        let imhof = StFast::new(
            &a,
            StFastConfig {
                l0: 50,
                v_method: VarianceMethod::Imhof,
                ..Default::default()
            },
        )
        .block_failure_probability(0, t)
        .unwrap();
        let rel = ((chi - imhof) / imhof).abs();
        assert!(rel < 0.01, "chi2 {chi:e} vs imhof {imhof:e} (rel {rel:.4})");
    }

    #[test]
    fn zero_l0_is_rejected() {
        let a = analysis();
        let e = StFast::new(
            &a,
            StFastConfig {
                l0: 0,
                ..Default::default()
            },
        );
        assert!(e.block_failure_probability(0, 1e9).is_err());
    }

    #[test]
    fn very_early_time_has_negligible_failure() {
        let a = analysis();
        let mut e = StFast::new(&a, StFastConfig::default());
        let p = e.failure_probability(1.0).unwrap();
        assert!(p < 1e-12, "P(1 s) = {p:e}");
    }
}
