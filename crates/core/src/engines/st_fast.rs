//! The paper's main method (Sec. IV-D, algorithm of its Fig. 9): the
//! ensemble failure probability as `N` double integrals over the product
//! of marginals `f_u(u)·f_v(v)`,
//!
//! ```text
//! P(t) = Σ_j ∫∫ (1 − e^{−A_j·g(u,v)}) f_u_j(u) f_v_j(v) du dv     (eq. 28)
//! ```
//!
//! The `u` integral is evaluated by an `l0`-point midpoint rule over
//! `±width·σ_u` (the paper's sub-domain integral sum); the `v` integral is
//! evaluated in *quantile space* — `v = F_v⁻¹(p)` with a midpoint rule
//! over `p ∈ (0,1)` — which is exact in distribution and immune to the
//! integrable singularity the χ² density develops at its floor when the
//! fitted degrees of freedom drop below 2.

use crate::blod::{MeanDist, VarianceDist};
use crate::chip::ChipAnalysis;
use crate::engines::{ReliabilityEngine, WeakestLink};
use crate::gfun::GCoefficients;
use crate::{CoreError, Result};
use statobd_num::dist::ContinuousDistribution;

/// How the sample-variance distribution `f_v` is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VarianceMethod {
    /// The paper's Yuan–Bentler χ² two-moment fit (eqs. 29–30).
    #[default]
    ChiSquare,
    /// Exact Imhof numerical inversion of the quadratic form (the paper's
    /// reference \[32\]) — slower node construction, removes the fit error.
    Imhof,
}

impl statobd_num::json::ToJson for VarianceMethod {
    fn to_json(&self) -> statobd_num::json::Json {
        statobd_num::json::Json::String(
            match self {
                VarianceMethod::ChiSquare => "chi_square",
                VarianceMethod::Imhof => "imhof",
            }
            .to_string(),
        )
    }
}

impl statobd_num::json::FromJson for VarianceMethod {
    fn from_json(v: &statobd_num::json::Json) -> statobd_num::json::Result<Self> {
        match v.as_str() {
            Some("chi_square") => Ok(VarianceMethod::ChiSquare),
            Some("imhof") => Ok(VarianceMethod::Imhof),
            _ => Err(statobd_num::json::JsonError::new(format!(
                "expected \"chi_square\" or \"imhof\", got {v}"
            ))),
        }
    }
}

/// Configuration of the [`StFast`] engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StFastConfig {
    /// Number of integration sub-domains per axis (`l0`; paper default 10).
    pub l0: usize,
    /// Half-width of the `u` domain in units of `σ_u`.
    pub u_width_sigmas: f64,
    /// Evaluation method for the sample-variance distribution.
    pub v_method: VarianceMethod,
    /// Worker threads for the per-block quadrature construction
    /// (`None` = all cores).
    pub threads: Option<usize>,
}

statobd_num::impl_json_struct!(StFastConfig {
    l0,
    u_width_sigmas,
    v_method,
    threads
});

impl Default for StFastConfig {
    fn default() -> Self {
        StFastConfig {
            l0: crate::params::DEFAULT_L0,
            u_width_sigmas: 6.0,
            v_method: VarianceMethod::ChiSquare,
            threads: None,
        }
    }
}

/// Precomputed quadrature nodes for one block's `(u, v)` double integral.
///
/// The node sets depend only on the BLOD distributions, not on time, so
/// they are built once per engine (gamma quantile inversion is the
/// expensive part) and reused by every `P_j(t)` evaluation.
#[derive(Debug, Clone)]
pub(crate) struct BlockQuadrature {
    u_nodes: Vec<f64>,
    u_weights: Vec<f64>,
    v_nodes: Vec<f64>,
    v_weight: f64,
}

impl BlockQuadrature {
    /// Builds the node sets for a block's BLOD under `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `cfg.l0` is 0, and
    /// propagates quantile-evaluation failures.
    pub(crate) fn new(moments: &crate::blod::BlodMoments, cfg: &StFastConfig) -> Result<Self> {
        if cfg.l0 == 0 {
            return Err(CoreError::InvalidParameter {
                detail: "l0 must be positive".to_string(),
            });
        }

        // u nodes and probability weights (midpoint over ±width·σ).
        let (u_nodes, u_weights): (Vec<f64>, Vec<f64>) = match moments.u_dist() {
            MeanDist::Deterministic(u) => (vec![u], vec![1.0]),
            MeanDist::Gaussian(n) => {
                let mu = n.mean();
                let sd = n.std_dev();
                let half = cfg.u_width_sigmas * sd;
                let h = 2.0 * half / cfg.l0 as f64;
                let nodes: Vec<f64> = (0..cfg.l0)
                    .map(|i| mu - half + (i as f64 + 0.5) * h)
                    .collect();
                let weights: Vec<f64> = nodes.iter().map(|&u| n.pdf(u) * h).collect();
                (nodes, weights)
            }
        };

        // v nodes in quantile space (equal probability weights).
        let v_nodes: Vec<f64> = match moments.v_dist() {
            VarianceDist::Deterministic(v) => vec![v],
            dist @ VarianceDist::ShiftedGamma { .. } => (0..cfg.l0)
                .map(|i| {
                    let p = (i as f64 + 0.5) / cfg.l0 as f64;
                    match cfg.v_method {
                        VarianceMethod::ChiSquare => dist.quantile(p),
                        VarianceMethod::Imhof => moments.v_quantile_imhof(p),
                    }
                })
                .collect::<Result<Vec<f64>>>()?,
        };
        let v_weight = 1.0 / v_nodes.len() as f64;
        Ok(BlockQuadrature {
            u_nodes,
            u_weights,
            v_nodes,
            v_weight,
        })
    }

    /// Evaluates `∫∫ (1 − e^{−A·g(u,v)}) f_u(u) f_v(v) du dv` for the
    /// given kernel coefficients.
    pub(crate) fn integrate(&self, area: f64, coeff: GCoefficients) -> f64 {
        let mut p = 0.0;
        for (&u, &wu) in self.u_nodes.iter().zip(&self.u_weights) {
            for &v in &self.v_nodes {
                let g = coeff.g(u, v);
                p += wu * self.v_weight * (-(-area * g).exp_m1());
            }
        }
        p.clamp(0.0, 1.0)
    }
}

/// The marginal-product analytic engine (`st_fast` in the paper's
/// Table III).
#[derive(Debug)]
pub struct StFast<'a> {
    analysis: &'a ChipAnalysis,
    config: StFastConfig,
    /// Lazily built per-block quadratures (time-independent).
    quadratures: std::cell::OnceCell<Result<Vec<BlockQuadrature>>>,
}

impl<'a> StFast<'a> {
    /// Creates the engine over a characterized chip.
    pub fn new(analysis: &'a ChipAnalysis, config: StFastConfig) -> Self {
        StFast {
            analysis,
            config,
            quadratures: std::cell::OnceCell::new(),
        }
    }

    fn quadratures(&self) -> Result<&[BlockQuadrature]> {
        let built = self.quadratures.get_or_init(|| {
            // Node construction (gamma quantile inversion, Imhof) is the
            // expensive step; fan it out one block per work item. Results
            // are gathered in block order, so the engine is deterministic
            // at any thread count.
            let threads = statobd_num::parallel::resolve_threads(self.config.threads);
            let blocks = self.analysis.blocks();
            let config = self.config;
            statobd_num::parallel::run_indexed(blocks.len(), threads, move |j| {
                BlockQuadrature::new(blocks[j].moments(), &config)
            })
            .into_iter()
            .collect()
        });
        match built {
            Ok(v) => Ok(v.as_slice()),
            Err(e) => Err(e.clone()),
        }
    }

    /// The per-block failure probability
    /// `P_j(t) = ∫∫ (1 − e^{−A_j g}) f_u f_v du dv`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the configured `l0` is 0,
    /// and propagates quantile-evaluation failures.
    pub fn block_failure_probability(&self, block_idx: usize, t_s: f64) -> Result<f64> {
        let block = &self.analysis.blocks()[block_idx];
        let coeff = GCoefficients::at(t_s, block.alpha_s(), block.b_per_nm());
        Ok(self.quadratures()?[block_idx].integrate(block.spec().area(), coeff))
    }
}

impl ReliabilityEngine for StFast<'_> {
    fn name(&self) -> &str {
        "st_fast"
    }

    fn failure_probability(&mut self, t_s: f64) -> Result<f64> {
        let mut chip = WeakestLink::new();
        for j in 0..self.analysis.n_blocks() {
            chip.absorb(self.block_failure_probability(j, t_s)?);
        }
        Ok(chip.failure_probability())
    }

    /// Reuses the time-independent quadrature node sets and fans the
    /// `(block × t)` kernel evaluations out over threads as a flat work
    /// list. Each `(block, t)` integral is independent, and the per-time
    /// weakest-link compositions run in block order, so the result is
    /// bit-identical to the scalar loop at any thread count.
    fn failure_probabilities(&mut self, ts: &[f64]) -> Result<Vec<f64>> {
        let quads = self.quadratures()?;
        let blocks = self.analysis.blocks();
        let n_blocks = blocks.len();
        let n_t = ts.len();
        let eval_one = |idx: usize| -> f64 {
            let (j, ti) = (idx / n_t, idx % n_t);
            let block = &blocks[j];
            let coeff = GCoefficients::at(ts[ti], block.alpha_s(), block.b_per_nm());
            quads[j].integrate(block.spec().area(), coeff)
        };
        let n_items = n_blocks * n_t;
        let per_block_t: Vec<f64> = if n_items < 8 {
            (0..n_items).map(eval_one).collect()
        } else {
            let threads = statobd_num::parallel::resolve_threads(self.config.threads);
            statobd_num::parallel::run_indexed(n_items, threads, eval_one)
        };
        Ok((0..n_t)
            .map(|ti| {
                let mut chip = WeakestLink::new();
                for j in 0..n_blocks {
                    chip.absorb(per_block_t[j * n_t + ti]);
                }
                chip.failure_probability()
            })
            .collect())
    }

    fn sweep_batch_hint(&self) -> usize {
        // The batched path fans (block × t) items across threads; offering
        // one point per worker keeps the fan-out busy.
        statobd_num::parallel::resolve_threads(self.config.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{BlockSpec, ChipSpec};
    use crate::engines::ReliabilityEngine;
    use statobd_device::ClosedFormTech;
    use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

    fn analysis() -> ChipAnalysis {
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(5).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let mut spec = ChipSpec::new();
        spec.add_block(
            BlockSpec::new(
                "core",
                40_000.0,
                40_000,
                368.15,
                1.2,
                vec![(0, 0.5), (1, 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        spec.add_block(
            BlockSpec::new("cache", 60_000.0, 60_000, 341.15, 1.2, vec![(12, 1.0)]).unwrap(),
        )
        .unwrap();
        ChipAnalysis::new(spec, model, &ClosedFormTech::nominal_45nm()).unwrap()
    }

    #[test]
    fn failure_probability_is_monotone_in_time() {
        let a = analysis();
        let mut e = StFast::new(&a, StFastConfig::default());
        let mut prev = 0.0;
        for i in 0..12 {
            let t = 10f64.powf(6.0 + i as f64);
            let p = e.failure_probability(t).unwrap();
            assert!(p >= prev - 1e-15, "P not monotone at {t}: {p} < {prev}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn hot_block_dominates_failure() {
        let a = analysis();
        let e = StFast::new(&a, StFastConfig::default());
        // Pick a time where total failure prob is around 1e-5.
        let t = 3e8;
        let p_hot = e.block_failure_probability(0, t).unwrap();
        let p_cool = e.block_failure_probability(1, t).unwrap();
        // The hot block (30 K hotter, comparable area) must dominate.
        assert!(
            p_hot > 5.0 * p_cool,
            "hot {p_hot:.3e} should dominate cool {p_cool:.3e}"
        );
    }

    #[test]
    fn converges_with_l0() {
        let a = analysis();
        let t = 1e9;
        let coarse = StFast::new(
            &a,
            StFastConfig {
                l0: 10,
                ..Default::default()
            },
        )
        .block_failure_probability(0, t)
        .unwrap();
        let fine = StFast::new(
            &a,
            StFastConfig {
                l0: 200,
                ..Default::default()
            },
        )
        .block_failure_probability(0, t)
        .unwrap();
        let rel = ((coarse - fine) / fine).abs();
        // The paper claims l0 = 10 is sufficient (~1% errors); allow 3%.
        assert!(rel < 0.03, "l0=10 vs l0=200 differ by {rel:.4}");
    }

    #[test]
    fn matches_direct_device_product_for_single_grid_block() {
        // For a block entirely inside one grid, u ~ N(u0, σ_grid²) and
        // v = σ_ind² exactly. The ensemble block failure probability can
        // be computed directly as an integral over the global+spatial
        // component:
        //   P = ∫ φ(s) (1 − exp(−A·g(u0+σ_g·s, σ_ind²))) ds.
        let a = analysis();
        let block = &a.blocks()[1];
        let t = 3e8;
        let coeff = GCoefficients::at(t, block.alpha_s(), block.b_per_nm());
        let sigma_u = block.moments().u_sigma();
        let u0 = block.moments().u_nominal();
        let v0 = block.moments().v_floor();
        let area = block.spec().area();
        let direct = statobd_num::quad::integrate_1d(
            statobd_num::quad::QuadRule::GaussLegendre,
            400,
            -10.0,
            10.0,
            |s| {
                statobd_num::special::norm_pdf(s)
                    * (-(-area * coeff.g(u0 + sigma_u * s, v0)).exp_m1())
            },
        )
        .unwrap();
        let engine = StFast::new(
            &a,
            StFastConfig {
                l0: 400,
                ..Default::default()
            },
        );
        let p = engine.block_failure_probability(1, t).unwrap();
        let rel = ((p - direct) / direct).abs();
        assert!(rel < 1e-6, "engine {p:.6e} vs direct {direct:.6e}");
    }

    #[test]
    fn imhof_variance_method_agrees_with_chi2() {
        // The exact Imhof evaluation of f_v vs the Yuan-Bentler fit: for
        // the multi-grid core block they agree at the sub-percent level on
        // P(t) (the chi2 fit error is small compared to the method's ~1%
        // target, which is why the paper's cheap approximation works).
        let a = analysis();
        let t = 1e9;
        let chi = StFast::new(
            &a,
            StFastConfig {
                l0: 50,
                ..Default::default()
            },
        )
        .block_failure_probability(0, t)
        .unwrap();
        let imhof = StFast::new(
            &a,
            StFastConfig {
                l0: 50,
                v_method: VarianceMethod::Imhof,
                ..Default::default()
            },
        )
        .block_failure_probability(0, t)
        .unwrap();
        let rel = ((chi - imhof) / imhof).abs();
        assert!(rel < 0.01, "chi2 {chi:e} vs imhof {imhof:e} (rel {rel:.4})");
    }

    #[test]
    fn zero_l0_is_rejected() {
        let a = analysis();
        let e = StFast::new(
            &a,
            StFastConfig {
                l0: 0,
                ..Default::default()
            },
        );
        assert!(e.block_failure_probability(0, 1e9).is_err());
    }

    #[test]
    fn very_early_time_has_negligible_failure() {
        let a = analysis();
        let mut e = StFast::new(&a, StFastConfig::default());
        let p = e.failure_probability(1.0).unwrap();
        assert!(p < 1e-12, "P(1 s) = {p:e}");
    }
}
