//! The hybrid analytical/table-lookup engine (paper Sec. IV-E).
//!
//! Designers re-evaluate the same design under many setup/application
//! profiles; different profiles change only the per-block Weibull
//! parameters `(α_j, b_j)`. Since the double integral of eq. (28) depends
//! on the operating point only through `γ = ln(t/α_j)` and `b_j`, each
//! block's integral can be precomputed once on a `(γ, b)` grid and then
//! evaluated for *any* profile by bilinear interpolation — the paper
//! reports three to five orders of magnitude speed-up over Monte Carlo at
//! near-identical accuracy.
//!
//! Tables store `ln P_j` (failure probabilities span many decades, and the
//! logarithm is nearly linear in `γ`, which is exactly what bilinear
//! interpolation wants). Tables serialize to JSON
//! ([`statobd_num::json`]) so they can be shipped into a runtime
//! reliability monitor.

use crate::chip::ChipAnalysis;
use crate::engines::st_fast::{BlockQuadrature, StFastConfig};
use crate::engines::composition::Composition;
use crate::engines::ReliabilityEngine;
use crate::gfun::GCoefficients;
use crate::{CoreError, Result};
use statobd_num::impl_json_struct;
use statobd_num::interp::Bilinear;
use statobd_num::parallel;
use std::sync::atomic::{AtomicU64, Ordering};

/// Floor applied before taking logs of probabilities.
const LN_P_FLOOR: f64 = -700.0;

/// Configuration of the hybrid table construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// Range of `γ = ln(t/α)` covered by the tables.
    pub gamma_range: (f64, f64),
    /// Range of `b` (1/nm) covered by the tables.
    pub b_range: (f64, f64),
    /// Number of `γ` samples (`n_α` in the paper; default 100).
    pub n_gamma: usize,
    /// Number of `b` samples (`n_b` in the paper; default 100).
    pub n_b: usize,
    /// Quadrature settings used to fill the table entries.
    pub quadrature_l0: usize,
    /// Worker threads for the table build and large batched sweeps
    /// (`None` = all available cores).
    pub threads: Option<usize>,
}

impl_json_struct!(HybridConfig {
    gamma_range,
    b_range,
    n_gamma,
    n_b,
    quadrature_l0,
    threads
});

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            // ln(t/α) from −30 (P astronomically small) to 0 (t = α).
            gamma_range: (-30.0, 0.0),
            // b range covering 300–430 K for the 45 nm-class model.
            b_range: (0.74, 0.86),
            n_gamma: 100,
            n_b: 100,
            quadrature_l0: crate::params::DEFAULT_L0,
            threads: None,
        }
    }
}

impl HybridConfig {
    /// Extends the upper `γ` edge to cover `gamma_hi`, growing `n_gamma`
    /// proportionally so the sample density (and hence the interpolation
    /// error) is unchanged. A runtime manager that must stay on-grid out
    /// to a service-life horizon `t_svc` under a worst-case operating
    /// point `α_min` builds its tables with
    /// `config.covering_gamma(ln(t_svc / α_min) + margin)`.
    pub fn covering_gamma(mut self, gamma_hi: f64) -> Self {
        let (g0, g1) = self.gamma_range;
        if gamma_hi.is_finite() && gamma_hi > g1 && g1 > g0 {
            let density = (self.n_gamma.max(2) - 1) as f64 / (g1 - g0);
            self.gamma_range.1 = gamma_hi;
            let samples = ((gamma_hi - g0) * density).ceil() as usize + 1;
            self.n_gamma = samples.max(self.n_gamma);
        }
        self
    }

    /// Extends the `b` range to cover `[b_lo, b_hi]`, growing `n_b`
    /// proportionally so the sample density is unchanged.
    pub fn covering_b(mut self, b_lo: f64, b_hi: f64) -> Self {
        let (old_lo, old_hi) = self.b_range;
        if b_lo.is_finite() && b_hi.is_finite() && old_hi > old_lo {
            let density = (self.n_b.max(2) - 1) as f64 / (old_hi - old_lo);
            let new_lo = b_lo.min(old_lo);
            let new_hi = b_hi.max(old_hi);
            if (new_lo, new_hi) != self.b_range {
                self.b_range = (new_lo, new_hi);
                let samples = ((new_hi - new_lo) * density).ceil() as usize + 1;
                self.n_b = samples.max(self.n_b);
            }
        }
        self
    }
}

/// One block's lookup table.
#[derive(Debug, Clone)]
struct BlockTable {
    /// Bilinear interpolant of `ln P_j` over `(γ, b)`.
    ln_p: BilinearData,
    /// The block's current Weibull scale `α_j` (s).
    alpha_s: f64,
    /// The block's current `b_j` (1/nm).
    b_per_nm: f64,
}

impl_json_struct!(BlockTable {
    ln_p,
    alpha_s,
    b_per_nm
});

/// Serializable backing for [`Bilinear`] (axes + row-major values).
#[derive(Debug, Clone)]
struct BilinearData {
    xs: Vec<f64>,
    ys: Vec<f64>,
    values: Vec<f64>,
}

// Manual (de)serialization instead of `impl_json_struct`: the table
// grids scale with the density config, so they use the packed bit-exact
// float encoding to keep persisted artifacts cheap to load.
impl statobd_num::json::ToJson for BilinearData {
    fn to_json(&self) -> statobd_num::json::Json {
        use statobd_num::json::{pack_f64s, Json};
        Json::Object(vec![
            ("xs".to_string(), pack_f64s(&self.xs)),
            ("ys".to_string(), pack_f64s(&self.ys)),
            ("values".to_string(), pack_f64s(&self.values)),
        ])
    }
}

impl statobd_num::json::FromJson for BilinearData {
    fn from_json(v: &statobd_num::json::Json) -> statobd_num::json::Result<Self> {
        use statobd_num::json::{unpack_f64s, JsonError};
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| JsonError::new(format!("missing field '{k}' in BilinearData")))
        };
        Ok(BilinearData {
            xs: unpack_f64s(field("xs")?)?,
            ys: unpack_f64s(field("ys")?)?,
            values: unpack_f64s(field("values")?)?,
        })
    }
}

impl BilinearData {
    fn to_interp(&self) -> Result<Bilinear> {
        Bilinear::new(self.xs.clone(), self.ys.clone(), self.values.clone())
            .map_err(CoreError::from)
    }
}

/// The hybrid analytical/table-lookup engine (`hybrid` in Table III).
#[derive(Debug)]
pub struct HybridTables {
    tables: Vec<BlockTable>,
    interps: Vec<Bilinear>,
    config: HybridConfig,
    /// The chip's block composition, captured at build time — the engine
    /// is self-contained (no `ChipAnalysis` borrow at query time), so the
    /// redundancy structure has to travel with the tables.
    composition: Composition,
    /// Queries that fell off the non-conservative table edges (`γ` above
    /// the grid, or `b` outside it) and were silently clamped by the
    /// bilinear interpolation — see [`HybridTables::off_grid_queries`].
    off_grid: AtomicU64,
}

impl HybridTables {
    /// Precomputes the per-block `(γ, b)` tables (the expensive step,
    /// performed once per design).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for degenerate ranges or
    /// sample counts, and propagates quadrature failures.
    pub fn build(analysis: &ChipAnalysis, config: HybridConfig) -> Result<Self> {
        let (g0, g1) = config.gamma_range;
        let (b0, b1) = config.b_range;
        if !(g0 < g1) || !(b0 < b1) || config.n_gamma < 2 || config.n_b < 2 {
            return Err(CoreError::InvalidParameter {
                detail: format!("invalid hybrid config: {config:?}"),
            });
        }
        let quad = StFastConfig {
            l0: config.quadrature_l0,
            ..StFastConfig::default()
        };
        let gammas: Vec<f64> = (0..config.n_gamma)
            .map(|i| g0 + (g1 - g0) * i as f64 / (config.n_gamma - 1) as f64)
            .collect();
        let bs: Vec<f64> = (0..config.n_b)
            .map(|i| b0 + (b1 - b0) * i as f64 / (config.n_b - 1) as f64)
            .collect();

        let mut tables = Vec::with_capacity(analysis.n_blocks());
        let mut interps = Vec::with_capacity(analysis.n_blocks());
        let threads = parallel::resolve_threads(config.threads);
        for block in analysis.blocks() {
            let quadrature = BlockQuadrature::new(block.moments(), &quad)?;
            // Fill the (γ, b) grid one γ-row per work item, each row as a
            // single lane sweep over its n_b quadratures; rows are
            // gathered in index order, so the table is identical at any
            // thread count.
            let area = block.spec().area();
            let rows = parallel::run_indexed(gammas.len(), threads, |gi| {
                let gamma = gammas[gi];
                let coeffs: Vec<GCoefficients> = bs
                    .iter()
                    .map(|&b| {
                        let gb = gamma * b;
                        GCoefficients {
                            s1: gb,
                            s2: 0.5 * gb * gb,
                        }
                    })
                    .collect();
                let mut row = vec![0.0; coeffs.len()];
                quadrature.integrate_many(area, &coeffs, &mut row);
                for p in &mut row {
                    *p = p.max(f64::MIN_POSITIVE).ln().max(LN_P_FLOOR);
                }
                row
            });
            let values: Vec<f64> = rows.into_iter().flatten().collect();
            let data = BilinearData {
                xs: gammas.clone(),
                ys: bs.clone(),
                values,
            };
            interps.push(data.to_interp()?);
            tables.push(BlockTable {
                ln_p: data,
                alpha_s: block.alpha_s(),
                b_per_nm: block.b_per_nm(),
            });
        }
        Ok(HybridTables {
            tables,
            interps,
            config,
            composition: analysis.composition().clone(),
            off_grid: AtomicU64::new(0),
        })
    }

    /// The chip composition the tables were built with.
    pub fn composition(&self) -> &Composition {
        &self.composition
    }

    /// The construction configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// Number of block tables.
    pub fn n_blocks(&self) -> usize {
        self.tables.len()
    }

    /// Updates block `block_idx`'s operating parameters `(α, b)` — the
    /// "different setup/application profiles" use-case: no re-integration
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an out-of-range index
    /// or non-positive parameters.
    pub fn set_operating_point(
        &mut self,
        block_idx: usize,
        alpha_s: f64,
        b_per_nm: f64,
    ) -> Result<()> {
        if block_idx >= self.tables.len() {
            return Err(CoreError::InvalidParameter {
                detail: format!("block index {block_idx} out of range"),
            });
        }
        if !(alpha_s > 0.0) || !(b_per_nm > 0.0) {
            return Err(CoreError::InvalidParameter {
                detail: format!("operating point must be positive, got ({alpha_s}, {b_per_nm})"),
            });
        }
        self.tables[block_idx].alpha_s = alpha_s;
        self.tables[block_idx].b_per_nm = b_per_nm;
        Ok(())
    }

    /// Per-block failure probability by bilinear interpolation in
    /// `(γ, b)` at the block's current operating point.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an out-of-range block
    /// index.
    pub fn block_failure_probability(&self, block_idx: usize, t_s: f64) -> Result<f64> {
        let table = self.table(block_idx)?;
        let gamma = (t_s / table.alpha_s).ln();
        Ok(self.eval_tracked(block_idx, gamma, table.b_per_nm))
    }

    /// Per-block failure probability at an accumulated *effective age*
    /// `ξ_j = ∫ dt / α_j(T(t), V(t))` (dimensionless) and an
    /// instantaneous `b` — the runtime reliability-manager entry point.
    ///
    /// The table integral depends on the operating point only through
    /// `γ = ln(t/α)`, so a piecewise-constant operating history enters
    /// purely as `γ = ln ξ`: under a constant point `ξ = t/α` and this
    /// reduces exactly to
    /// [`block_failure_probability`](HybridTables::block_failure_probability).
    ///
    /// An age of zero (or below) returns `P = 0` without touching the
    /// table.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an out-of-range block
    /// index or a non-positive `b`.
    pub fn block_failure_probability_at_age(
        &self,
        block_idx: usize,
        effective_age: f64,
        b_per_nm: f64,
    ) -> Result<f64> {
        self.table(block_idx)?;
        if !(b_per_nm > 0.0) {
            return Err(CoreError::InvalidParameter {
                detail: format!("b must be positive, got {b_per_nm}"),
            });
        }
        if effective_age <= 0.0 {
            return Ok(0.0);
        }
        Ok(self.eval_tracked(block_idx, effective_age.ln(), b_per_nm))
    }

    /// Number of queries so far that landed off the table on a
    /// *non-conservative* edge — `γ` above the grid (the clamp then
    /// freezes `ln P` at its edge value and **underestimates** failure),
    /// or `b` outside the grid in either direction. Queries below the
    /// `γ` range are not counted: there the clamp returns the table's
    /// `≈ −700` floor, a vanishing and conservative overestimate.
    ///
    /// A runtime monitor should treat a nonzero count as "the tables
    /// were built too small for this service life" and rebuild with
    /// [`HybridConfig::covering_gamma`] /
    /// [`HybridConfig::covering_b`].
    pub fn off_grid_queries(&self) -> u64 {
        self.off_grid.load(Ordering::Relaxed)
    }

    /// Resets the off-grid query counter to zero.
    pub fn reset_off_grid_queries(&self) {
        self.off_grid.store(0, Ordering::Relaxed);
    }

    fn table(&self, block_idx: usize) -> Result<&BlockTable> {
        self.tables
            .get(block_idx)
            .ok_or_else(|| CoreError::InvalidParameter {
                detail: format!(
                    "block index {block_idx} out of range ({} tables)",
                    self.tables.len()
                ),
            })
    }

    /// The shared `(γ, b)` lookup kernel of every query path (scalar,
    /// batched, effective-age), with off-grid accounting.
    fn eval_tracked(&self, block_idx: usize, gamma: f64, b_per_nm: f64) -> f64 {
        let (_, g_hi) = self.config.gamma_range;
        let (b_lo, b_hi) = self.config.b_range;
        if gamma > g_hi || b_per_nm < b_lo || b_per_nm > b_hi {
            self.off_grid.fetch_add(1, Ordering::Relaxed);
        }
        let ln_p = self.interps[block_idx].eval(gamma, b_per_nm);
        ln_p.exp().min(1.0)
    }

    /// Serializes the tables to JSON (for embedding in a reliability
    /// monitor).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on serialization failure
    /// (does not occur for well-formed tables).
    pub fn to_json(&self) -> Result<String> {
        Ok(self.to_json_value().to_compact())
    }

    /// Serializes the tables to a JSON tree (the artifact cache embeds
    /// this in a larger document without re-parsing).
    pub fn to_json_value(&self) -> statobd_num::json::Json {
        use statobd_num::json::ToJson;
        SerializedTables {
            tables: self.tables.clone(),
            config: self.config,
            composition: self.composition.clone(),
        }
        .to_json()
    }

    /// Restores tables from [`HybridTables::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self> {
        let v = statobd_num::json::Json::parse(json).map_err(|e| CoreError::InvalidParameter {
            detail: format!("deserialization failed: {e}"),
        })?;
        Self::from_json_value(&v)
    }

    /// Restores tables from an already-parsed JSON tree.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for malformed input.
    pub fn from_json_value(v: &statobd_num::json::Json) -> Result<Self> {
        use statobd_num::json::FromJson;
        let s = SerializedTables::from_json(v).map_err(|e| CoreError::InvalidParameter {
            detail: format!("deserialization failed: {e}"),
        })?;
        let interps = s
            .tables
            .iter()
            .map(|t| t.ln_p.to_interp())
            .collect::<Result<Vec<_>>>()?;
        s.composition
            .validate(s.tables.len())
            .map_err(|e| CoreError::InvalidParameter {
                detail: format!("deserialization failed: {e}"),
            })?;
        Ok(HybridTables {
            tables: s.tables,
            interps,
            config: s.config,
            composition: s.composition,
            off_grid: AtomicU64::new(0),
        })
    }
}

#[derive(Debug)]
struct SerializedTables {
    tables: Vec<BlockTable>,
    config: HybridConfig,
    /// Absent in pre-composition documents; [`Composition::from_missing`]
    /// fills in weakest-link.
    composition: Composition,
}

impl_json_struct!(SerializedTables {
    tables,
    config,
    composition
});

impl ReliabilityEngine for HybridTables {
    fn name(&self) -> &str {
        "hybrid"
    }

    fn failure_probability(&mut self, t_s: f64) -> Result<f64> {
        let mut chip = self.composition.accumulator(self.tables.len());
        for j in 0..self.tables.len() {
            chip.absorb(j, self.block_failure_probability(j, t_s)?);
        }
        Ok(chip.failure_probability())
    }

    /// Batched table interpolation: the per-block `(α, b)` operating
    /// points are hoisted out of the time loop, and long sweeps fan out
    /// over threads one time point per work item (each point's
    /// weakest-link composition runs in block order, so the result is
    /// bit-identical to the scalar loop at any thread count).
    fn failure_probabilities(&mut self, ts: &[f64]) -> Result<Vec<f64>> {
        // One (α, b) pair per block, resolved once.
        let points: Vec<(f64, f64)> = self
            .tables
            .iter()
            .map(|table| (table.alpha_s, table.b_per_nm))
            .collect();
        let eval_one = |&t_s: &f64| -> f64 {
            let mut chip = self.composition.accumulator(points.len());
            for (j, &(alpha_s, b_per_nm)) in points.iter().enumerate() {
                let gamma = (t_s / alpha_s).ln();
                chip.absorb(j, self.eval_tracked(j, gamma, b_per_nm));
            }
            chip.failure_probability()
        };
        // Lookups are cheap; only fan out when the sweep is long enough to
        // amortize the thread spawn.
        if ts.len() < 256 {
            return Ok(ts.iter().map(eval_one).collect());
        }
        let threads = parallel::resolve_threads(self.config.threads);
        Ok(parallel::run_indexed(ts.len(), threads, |i| {
            eval_one(&ts[i])
        }))
    }

    fn sweep_batch_hint(&self) -> usize {
        // Lookups are cheap but the trait-object round trip is not free;
        // a modest batch keeps solve drivers from calling one-at-a-time.
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{BlockSpec, ChipSpec};
    use crate::engines::st_fast::StFast;
    use statobd_device::{ClosedFormTech, ObdTechnology};
    use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

    fn analysis() -> ChipAnalysis {
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(5).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let mut spec = ChipSpec::new();
        spec.add_block(
            BlockSpec::new(
                "core",
                40_000.0,
                40_000,
                368.15,
                1.2,
                vec![(0, 0.5), (6, 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        spec.add_block(
            BlockSpec::new("cache", 60_000.0, 60_000, 341.15, 1.2, vec![(12, 1.0)]).unwrap(),
        )
        .unwrap();
        ChipAnalysis::new(spec, model, &ClosedFormTech::nominal_45nm()).unwrap()
    }

    #[test]
    fn hybrid_matches_st_fast_percent_level() {
        let a = analysis();
        let mut hybrid = HybridTables::build(&a, HybridConfig::default()).unwrap();
        let mut fast = StFast::new(&a, StFastConfig::default());
        for &t in &[1e8, 1e9, 5e9] {
            let ph = hybrid.failure_probability(t).unwrap();
            let pf = fast.failure_probability(t).unwrap();
            let rel = ((ph - pf) / pf).abs();
            assert!(
                rel < 0.05,
                "hybrid {ph:.4e} vs st_fast {pf:.4e} at {t:e} (rel {rel:.4})"
            );
        }
    }

    #[test]
    fn query_is_fast_relative_to_build() {
        let a = analysis();
        let build_start = std::time::Instant::now();
        let mut hybrid = HybridTables::build(&a, HybridConfig::default()).unwrap();
        let build_time = build_start.elapsed();
        let queries = 1000;
        let q_start = std::time::Instant::now();
        for i in 0..queries {
            let t = 1e8 * (1.0 + i as f64);
            let _ = hybrid.failure_probability(t).unwrap();
        }
        let per_query = q_start.elapsed() / queries;
        // A query must be at least 100x cheaper than the build.
        assert!(
            per_query.as_secs_f64() * 100.0 < build_time.as_secs_f64(),
            "per-query {per_query:?} vs build {build_time:?}"
        );
    }

    #[test]
    fn operating_point_update_tracks_new_temperature() {
        let a = analysis();
        let mut hybrid = HybridTables::build(&a, HybridConfig::default()).unwrap();
        let t = 1e9;
        let p_before = hybrid.failure_probability(t).unwrap();
        // Heat block 1 (the cache) to the core temperature: reliability
        // must get worse without rebuilding.
        let tech = ClosedFormTech::nominal_45nm();
        hybrid
            .set_operating_point(1, tech.alpha(368.15, 1.2), tech.b(368.15))
            .unwrap();
        let p_after = hybrid.failure_probability(t).unwrap();
        assert!(p_after > p_before);
        // And it should now match a fresh st_fast on the hotter spec.
        let model = a.model().clone();
        let hot_spec = a.spec().with_uniform_worst_temperature().unwrap();
        let hot = ChipAnalysis::new(hot_spec, model, &tech).unwrap();
        let pf = StFast::new(&hot, StFastConfig::default())
            .block_failure_probability(1, t)
            .unwrap()
            + StFast::new(&hot, StFastConfig::default())
                .block_failure_probability(0, t)
                .unwrap();
        let rel = ((p_after - pf) / pf).abs();
        assert!(rel < 0.05, "updated hybrid {p_after:.4e} vs {pf:.4e}");
    }

    #[test]
    fn json_round_trip_preserves_results() {
        let a = analysis();
        let mut hybrid = HybridTables::build(&a, HybridConfig::default()).unwrap();
        let json = hybrid.to_json().unwrap();
        let mut restored = HybridTables::from_json(&json).unwrap();
        for &t in &[1e8, 1e9] {
            let a = hybrid.failure_probability(t).unwrap();
            let b = restored.failure_probability(t).unwrap();
            assert!(((a - b) / a).abs() < 1e-12, "{a:e} vs {b:e}");
        }
    }

    #[test]
    fn rejects_bad_config_and_indices() {
        let a = analysis();
        assert!(HybridTables::build(
            &a,
            HybridConfig {
                gamma_range: (0.0, -1.0),
                ..Default::default()
            }
        )
        .is_err());
        assert!(HybridTables::build(
            &a,
            HybridConfig {
                n_gamma: 1,
                ..Default::default()
            }
        )
        .is_err());
        let mut h = HybridTables::build(&a, HybridConfig::default()).unwrap();
        assert!(h.set_operating_point(99, 1e16, 0.6).is_err());
        assert!(h.set_operating_point(0, -1.0, 0.6).is_err());
        // Query paths return errors instead of panicking.
        assert!(h.block_failure_probability(99, 1e9).is_err());
        assert!(h.block_failure_probability_at_age(99, 1e-3, 0.8).is_err());
        assert!(h.block_failure_probability_at_age(0, 1e-3, -0.8).is_err());
    }

    #[test]
    fn age_query_reduces_to_time_query_at_constant_point() {
        // Under a constant operating point ξ = t/α, so the effective-age
        // entry point must reproduce the time query bit for bit.
        let a = analysis();
        let h = HybridTables::build(&a, HybridConfig::default()).unwrap();
        for j in 0..h.n_blocks() {
            let block = &a.blocks()[j];
            for &t in &[1e8, 1e9, 5e9] {
                let p_t = h.block_failure_probability(j, t).unwrap();
                let p_xi = h
                    .block_failure_probability_at_age(j, t / block.alpha_s(), block.b_per_nm())
                    .unwrap();
                assert_eq!(p_t.to_bits(), p_xi.to_bits(), "block {j} at t={t:e}");
            }
        }
        // Zero age is exactly zero probability.
        assert_eq!(
            h.block_failure_probability_at_age(0, 0.0, 0.8).unwrap(),
            0.0
        );
    }

    #[test]
    fn off_grid_queries_are_counted_on_nonconservative_edges() {
        let a = analysis();
        let mut h = HybridTables::build(&a, HybridConfig::default()).unwrap();
        assert_eq!(h.off_grid_queries(), 0);
        // In-range queries do not count.
        let _ = h.block_failure_probability(0, 1e9).unwrap();
        assert_eq!(h.off_grid_queries(), 0);
        // Below the γ range: conservative clamp, not counted.
        let _ = h.block_failure_probability_at_age(0, 1e-30, 0.8).unwrap();
        assert_eq!(h.off_grid_queries(), 0);
        // Above the γ range (age past the table horizon): counted.
        let _ = h.block_failure_probability_at_age(0, 10.0, 0.8).unwrap();
        assert_eq!(h.off_grid_queries(), 1);
        // b outside the grid in either direction: counted.
        let _ = h.block_failure_probability_at_age(0, 1e-3, 0.5).unwrap();
        let _ = h.block_failure_probability_at_age(0, 1e-3, 1.5).unwrap();
        assert_eq!(h.off_grid_queries(), 3);
        h.reset_off_grid_queries();
        assert_eq!(h.off_grid_queries(), 0);
        // The engine-trait paths count too (scalar and batched agree).
        let far_future = 1e18;
        let _ = h.failure_probability(far_future).unwrap();
        let scalar_count = h.off_grid_queries();
        assert_eq!(scalar_count, h.n_blocks() as u64);
        let _ = h.failure_probabilities(&[far_future]).unwrap();
        assert_eq!(h.off_grid_queries(), 2 * scalar_count);
    }

    #[test]
    fn covering_gamma_widens_range_and_keeps_density() {
        let base = HybridConfig::default();
        let wide = base.covering_gamma(6.0);
        assert_eq!(wide.gamma_range, (-30.0, 6.0));
        // Density preserved: 99 intervals over 30 units → 3.3/unit.
        let base_density = (base.n_gamma - 1) as f64 / (base.gamma_range.1 - base.gamma_range.0);
        let wide_density = (wide.n_gamma - 1) as f64 / (wide.gamma_range.1 - wide.gamma_range.0);
        assert!(wide_density >= base_density * 0.999);
        // A no-op when the range already covers the horizon.
        assert_eq!(base.covering_gamma(-5.0), base);
        let wide_b = base.covering_b(0.70, 0.90);
        assert_eq!(wide_b.b_range, (0.70, 0.90));
        assert!(wide_b.n_b > base.n_b);
        assert_eq!(base.covering_b(0.75, 0.85), base);
    }

    #[test]
    fn widened_tables_agree_with_default_on_grid() {
        // Widening the γ range must not change on-grid results beyond
        // interpolation noise (the sample density is preserved, not the
        // sample placement).
        let a = analysis();
        let mut base = HybridTables::build(&a, HybridConfig::default()).unwrap();
        let mut wide =
            HybridTables::build(&a, HybridConfig::default().covering_gamma(5.0)).unwrap();
        for &t in &[1e8, 1e9, 5e9] {
            let pb = base.failure_probability(t).unwrap();
            let pw = wide.failure_probability(t).unwrap();
            let rel = ((pb - pw) / pb).abs();
            assert!(rel < 0.01, "base {pb:e} vs widened {pw:e} at t={t:e}");
        }
        // And the widened table keeps the far tail on-grid.
        wide.reset_off_grid_queries();
        let block = &a.blocks()[0];
        let xi_far = (4.0_f64).exp();
        let _ = wide
            .block_failure_probability_at_age(0, xi_far, block.b_per_nm())
            .unwrap();
        assert_eq!(wide.off_grid_queries(), 0);
    }
}
