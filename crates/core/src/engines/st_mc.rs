//! The `st_MC` engine (paper Sec. V): like [`crate::StFast`] but with the
//! joint PDF of `(u_j, v_j)` constructed *numerically* from Monte-Carlo
//! samples of the principal components, instead of the marginal-product
//! independence approximation.
//!
//! For each block a 2-D histogram of exact `(u_j(z), v_j(z))` pairs is
//! built once at construction; `P_j(t)` is then the integral sum of the
//! conditional failure probability over the joint histogram. This is the
//! variant the paper uses to quantify how little accuracy the
//! `f(u,v) ≈ f(u)·f(v)` approximation costs (~0.1 %).

use crate::chip::ChipAnalysis;
use crate::engines::ReliabilityEngine;
use crate::gfun::GCoefficients;
use crate::{CoreError, Result};
use statobd_num::hist::Histogram2d;
use statobd_num::parallel;
use statobd_num::rng::{NormalSampler, Xoshiro256pp};
use statobd_num::simd::{self, LaneWidth};

/// Configuration of the [`StMc`] engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StMcConfig {
    /// Number of principal-component samples used to build the joint
    /// PDFs.
    pub n_samples: usize,
    /// Histogram bins per axis.
    pub bins: usize,
    /// RNG seed; sample `i` derives its stream from `seed` and `i`, so
    /// results are independent of the thread count.
    pub seed: u64,
    /// Worker threads for the sampling fan-out (`None` = all cores).
    pub threads: Option<usize>,
}

statobd_num::impl_json_struct!(StMcConfig {
    n_samples,
    bins,
    seed,
    threads
});

impl Default for StMcConfig {
    fn default() -> Self {
        StMcConfig {
            n_samples: 10_000,
            bins: 60,
            seed: 0x5eed_57a7,
            threads: None,
        }
    }
}

/// Per-block numerical joint PDF.
#[derive(Debug)]
struct JointPdf {
    hist: Histogram2d,
}

/// The numerical-joint-PDF engine (`st_MC` in the paper's Table III).
#[derive(Debug)]
pub struct StMc<'a> {
    analysis: &'a ChipAnalysis,
    joints: Vec<JointPdf>,
    /// The raw per-block `(u, v)` samples, kept for joint-across-blocks
    /// queries (multi-breakdown analysis).
    samples: Vec<Vec<(f64, f64)>>,
    /// Worker threads for batched sweeps (from the build configuration).
    threads: Option<usize>,
}

impl<'a> StMc<'a> {
    /// Builds the per-block joint `(u, v)` histograms from `config.n_samples`
    /// principal-component draws.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for zero samples or bins.
    pub fn new(analysis: &'a ChipAnalysis, config: StMcConfig) -> Result<Self> {
        if config.n_samples < 100 || config.bins == 0 {
            return Err(CoreError::InvalidParameter {
                detail: format!(
                    "st_MC needs n_samples >= 100 and bins > 0, got {} and {}",
                    config.n_samples, config.bins
                ),
            });
        }
        // Draw all samples once, fanned out over threads; sample i uses a
        // stream derived from (seed, i), so results do not depend on the
        // thread partitioning. The flat layout [sample][block] gives each
        // thread a disjoint mutable slice. Within a chunk the (u, v)
        // evaluation runs `width` samples per tile through the lane-FMA
        // `uv_given_z_tile` kernel; each sample still consumes its own
        // `(seed, sample)` stream, so the fill is bit-identical to the
        // scalar loop at every lane width.
        let n_blocks = analysis.n_blocks();
        let mut flat = vec![(0.0, 0.0); config.n_samples * n_blocks];
        let threads = parallel::resolve_threads(config.threads);
        let width = simd::active_width();
        let chunk_samples = 256;
        parallel::for_each_chunk_mut(
            &mut flat,
            chunk_samples * n_blocks,
            threads,
            move |chunk_idx, chunk: &mut [(f64, f64)]| {
                let first = chunk_idx * chunk_samples;
                let n = chunk.len() / n_blocks;
                match width {
                    LaneWidth::W8 => fill_uv_tiled::<8>(analysis, config.seed, first, n, chunk),
                    LaneWidth::W4 => fill_uv_tiled::<4>(analysis, config.seed, first, n, chunk),
                    LaneWidth::W1 => fill_uv_scalar(analysis, config.seed, first, 0, n, chunk),
                }
            },
        );
        // Transpose to the per-block layout the queries use.
        let mut uv: Vec<Vec<(f64, f64)>> = vec![Vec::with_capacity(config.n_samples); n_blocks];
        for sample in 0..config.n_samples {
            for (j, uv_j) in uv.iter_mut().enumerate() {
                uv_j.push(flat[sample * n_blocks + j]);
            }
        }

        // Build histograms spanning the sampled ranges (with a small
        // margin so the max sample lands inside).
        let mut joints = Vec::with_capacity(n_blocks);
        for pairs in &uv {
            let (mut ulo, mut uhi) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut vlo, mut vhi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &(u, v) in pairs {
                ulo = ulo.min(u);
                uhi = uhi.max(u);
                vlo = vlo.min(v);
                vhi = vhi.max(v);
            }
            // Degenerate axes (deterministic u or v) get a token width
            // relative to the magnitude so the bounds stay distinct in f64.
            let uspan = (uhi - ulo).max(1e-9 * uhi.abs()).max(1e-12);
            let vspan = (vhi - vlo).max(1e-9 * vhi.abs()).max(1e-300);
            let mut hist = Histogram2d::new(
                (ulo - 1e-3 * uspan, uhi + 1e-3 * uspan, config.bins),
                (vlo - 1e-3 * vspan, vhi + 1e-3 * vspan, config.bins),
            )
            .map_err(CoreError::from)?;
            for &(u, v) in pairs {
                hist.add(u, v);
            }
            joints.push(JointPdf { hist });
        }
        Ok(StMc {
            analysis,
            joints,
            samples: uv,
            threads: config.threads,
        })
    }

    /// Ensemble probability that **at least `k` breakdowns** occur by
    /// time `t` — the multi-breakdown extension of the paper's Sec. III
    /// discussion ("circuit may even survive to function after several
    /// HBDs"): given the thicknesses, breakdowns across the chip arrive
    /// as a Poisson process with mean equal to the chip hazard
    /// `H(t) = Σ_j A_j·g_j(u_j, v_j)`, so
    /// `P(N ≥ k) = P_gamma(k, H)` averaged over the sampled `(u, v)`.
    ///
    /// `k = 1` reduces to [`ReliabilityEngine::failure_probability`]
    /// (with per-sample instead of histogram evaluation).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `k == 0`.
    pub fn failure_probability_multi(&self, t_s: f64, k: u32) -> Result<f64> {
        if k == 0 {
            return Err(CoreError::InvalidParameter {
                detail: "breakdown count k must be at least 1".to_string(),
            });
        }
        let coeffs: Vec<(f64, GCoefficients)> = self
            .analysis
            .blocks()
            .iter()
            .map(|b| {
                (
                    b.spec().area(),
                    GCoefficients::at(t_s, b.alpha_s(), b.b_per_nm()),
                )
            })
            .collect();
        let n_samples = self.samples[0].len();
        let mut acc = 0.0;
        for s in 0..n_samples {
            let mut hazard = 0.0;
            for (j, &(area, coeff)) in coeffs.iter().enumerate() {
                let (u, v) = self.samples[j][s];
                hazard += area * coeff.g(u, v);
            }
            // P(Poisson(H) >= k) = P_gamma(k, H); for k = 1 this is
            // 1 - exp(-H), evaluated stably below.
            let p = if k == 1 {
                -(-hazard).exp_m1()
            } else {
                statobd_num::special::gamma_p(k as f64, hazard)?
            };
            acc += p;
        }
        Ok(acc / n_samples as f64)
    }

    /// Per-block failure probability via the joint-histogram integral sum.
    pub fn block_failure_probability(&self, block_idx: usize, t_s: f64) -> f64 {
        let block = &self.analysis.blocks()[block_idx];
        let coeff = GCoefficients::at(t_s, block.alpha_s(), block.b_per_nm());
        let area = block.spec().area();
        let hist = &self.joints[block_idx].hist;
        let probs = hist.joint_probabilities();
        block_probability_from_masses(hist, &probs, area, coeff)
    }

    /// The joint histogram of block `block_idx` (used by the Fig. 6/7
    /// reproduction to compare joint vs marginal-product PDFs).
    ///
    /// # Panics
    ///
    /// Panics if `block_idx` is out of range.
    pub fn joint_histogram(&self, block_idx: usize) -> &Histogram2d {
        &self.joints[block_idx].hist
    }
}

/// Fills `chunk` (flat `[sample][block]` layout) with exact `(u, v)`
/// pairs for samples `first..first + n`, evaluated `W` samples per tile
/// through [`statobd_variation` moments'] SoA `uv_given_z_tile`. The
/// principal-component draws stay scalar and per-sample — each sample's
/// `(seed, sample)` substream is consumed in the documented order — and
/// the ragged tail (`n % W` samples) runs the scalar path, so the chunk
/// contents are bit-identical to [`fill_uv_scalar`] at every width.
fn fill_uv_tiled<const W: usize>(
    analysis: &ChipAnalysis,
    seed: u64,
    first: usize,
    n: usize,
    chunk: &mut [(f64, f64)],
) {
    let n_pc = analysis.model().n_components();
    let n_blocks = analysis.n_blocks();
    let mut z = vec![0.0; n_pc];
    let mut z_tile = vec![0.0; n_pc * W];
    let (mut u, mut v) = ([0.0; W], [0.0; W]);
    let mut local = 0;
    while local + W <= n {
        for w in 0..W {
            let sample = first + local + w;
            let mut rng = Xoshiro256pp::stream(seed, sample as u64);
            let mut normal = NormalSampler::new();
            normal.fill(&mut rng, &mut z);
            for k in 0..n_pc {
                z_tile[k * W + w] = z[k];
            }
        }
        for (j, block) in analysis.blocks().iter().enumerate() {
            block
                .moments()
                .uv_given_z_tile::<W>(&z_tile, &mut u, &mut v);
            for w in 0..W {
                chunk[(local + w) * n_blocks + j] = (u[w], v[w]);
            }
        }
        local += W;
    }
    fill_uv_scalar(analysis, seed, first, local, n, chunk);
}

/// The scalar reference fill for samples `first + from .. first + n` —
/// the pre-tiling chunk loop, also used for ragged tile tails.
fn fill_uv_scalar(
    analysis: &ChipAnalysis,
    seed: u64,
    first: usize,
    from: usize,
    n: usize,
    chunk: &mut [(f64, f64)],
) {
    let n_pc = analysis.model().n_components();
    let n_blocks = analysis.n_blocks();
    let mut z = vec![0.0; n_pc];
    for local in from..n {
        let sample = first + local;
        let mut rng = Xoshiro256pp::stream(seed, sample as u64);
        let mut normal = NormalSampler::new();
        normal.fill(&mut rng, &mut z);
        for (j, block) in analysis.blocks().iter().enumerate() {
            chunk[local * n_blocks + j] = block.moments().uv_given_z(&z);
        }
    }
}

/// The integral sum over precomputed joint-bin masses — the shared kernel
/// of the scalar and batched evaluation paths (same bin order, same
/// zero-mass skips, so the two are bit-identical).
fn block_probability_from_masses(
    hist: &Histogram2d,
    probs: &[f64],
    area: f64,
    coeff: GCoefficients,
) -> f64 {
    let (xb, yb) = hist.shape();
    let mut p = 0.0;
    for i in 0..xb {
        for j in 0..yb {
            let mass = probs[i * yb + j];
            if mass == 0.0 {
                continue;
            }
            let (u, v) = hist.bin_center(i, j);
            p += mass * (-(-area * coeff.g(u, v)).exp_m1());
        }
    }
    p.clamp(0.0, 1.0)
}

impl ReliabilityEngine for StMc<'_> {
    fn name(&self) -> &str {
        "st_MC"
    }

    fn failure_probability(&mut self, t_s: f64) -> Result<f64> {
        let mut chip = self
            .analysis
            .composition()
            .accumulator(self.analysis.n_blocks());
        for j in 0..self.analysis.n_blocks() {
            chip.absorb(j, self.block_failure_probability(j, t_s));
        }
        Ok(chip.failure_probability())
    }

    /// Computes each block's joint-bin masses once for the whole sweep
    /// (instead of once per `(block, t)` evaluation) and fans the
    /// `(block × t)` integral sums out over threads as a flat work list;
    /// per-time weakest-link compositions run in block order, so the
    /// result is bit-identical to the scalar loop at any thread count.
    fn failure_probabilities(&mut self, ts: &[f64]) -> Result<Vec<f64>> {
        let n_t = ts.len();
        let n_blocks = self.analysis.n_blocks();
        // Hoisted time-independent per-block data: (histogram, bin masses,
        // area, α, b).
        let block_data: Vec<(&Histogram2d, Vec<f64>, f64, f64, f64)> = self
            .analysis
            .blocks()
            .iter()
            .zip(self.joints.iter())
            .map(|(block, joint)| {
                (
                    &joint.hist,
                    joint.hist.joint_probabilities(),
                    block.spec().area(),
                    block.alpha_s(),
                    block.b_per_nm(),
                )
            })
            .collect();
        let eval_one = |idx: usize| -> f64 {
            let (j, ti) = (idx / n_t, idx % n_t);
            let (hist, probs, area, alpha_s, b_per_nm) = &block_data[j];
            let coeff = GCoefficients::at(ts[ti], *alpha_s, *b_per_nm);
            block_probability_from_masses(hist, probs, *area, coeff)
        };
        let n_items = n_blocks * n_t;
        let per_block_t: Vec<f64> = if n_items < 8 {
            (0..n_items).map(eval_one).collect()
        } else {
            let threads = parallel::resolve_threads(self.threads);
            parallel::run_indexed(n_items, threads, eval_one)
        };
        let mut chip = self.analysis.composition().accumulator(n_blocks);
        Ok((0..n_t)
            .map(|ti| {
                chip.reset();
                for j in 0..n_blocks {
                    chip.absorb(j, per_block_t[j * n_t + ti]);
                }
                chip.failure_probability()
            })
            .collect())
    }

    fn sweep_batch_hint(&self) -> usize {
        statobd_num::parallel::resolve_threads(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{BlockSpec, ChipSpec};
    use crate::engines::st_fast::{StFast, StFastConfig};
    use statobd_device::ClosedFormTech;
    use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

    fn analysis() -> ChipAnalysis {
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(5).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let mut spec = ChipSpec::new();
        spec.add_block(
            BlockSpec::new(
                "core",
                40_000.0,
                40_000,
                368.15,
                1.2,
                vec![(0, 0.4), (1, 0.3), (6, 0.3)],
            )
            .unwrap(),
        )
        .unwrap();
        spec.add_block(
            BlockSpec::new("cache", 60_000.0, 60_000, 341.15, 1.2, vec![(12, 1.0)]).unwrap(),
        )
        .unwrap();
        ChipAnalysis::new(spec, model, &ClosedFormTech::nominal_45nm()).unwrap()
    }

    #[test]
    fn st_mc_agrees_with_st_fast_within_percent_scale() {
        // The paper's Table III shows st_fast and st_MC within ~0.1 % of
        // each other; with 40k samples we verify low-single-digit-percent
        // agreement on P(t).
        let a = analysis();
        let mut mc = StMc::new(
            &a,
            StMcConfig {
                n_samples: 40_000,
                ..Default::default()
            },
        )
        .unwrap();
        let mut fast = StFast::new(
            &a,
            StFastConfig {
                l0: 200,
                ..Default::default()
            },
        );
        for &t in &[1e9, 3e9] {
            let pm = mc.failure_probability(t).unwrap();
            let pf = fast.failure_probability(t).unwrap();
            let rel = ((pm - pf) / pf).abs();
            assert!(
                rel < 0.05,
                "st_MC {pm:.4e} vs st_fast {pf:.4e} at {t:e} (rel {rel:.4})"
            );
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let a = analysis();
        let base = StMcConfig {
            n_samples: 1000,
            threads: Some(1),
            ..Default::default()
        };
        let mut one = StMc::new(&a, base).unwrap();
        let mut four = StMc::new(
            &a,
            StMcConfig {
                threads: Some(4),
                ..base
            },
        )
        .unwrap();
        assert_eq!(
            one.failure_probability(1e9).unwrap(),
            four.failure_probability(1e9).unwrap()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = analysis();
        let cfg = StMcConfig::default();
        let mut e1 = StMc::new(&a, cfg).unwrap();
        let mut e2 = StMc::new(&a, cfg).unwrap();
        assert_eq!(
            e1.failure_probability(1e9).unwrap(),
            e2.failure_probability(1e9).unwrap()
        );
    }

    #[test]
    fn rejects_degenerate_config() {
        let a = analysis();
        assert!(StMc::new(
            &a,
            StMcConfig {
                n_samples: 10,
                ..Default::default()
            }
        )
        .is_err());
        assert!(StMc::new(
            &a,
            StMcConfig {
                bins: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn multi_breakdown_k1_matches_engine() {
        let a = analysis();
        let mut e = StMc::new(&a, StMcConfig::default()).unwrap();
        let t = 1e9;
        let p_hist = e.failure_probability(t).unwrap();
        let p_k1 = e.failure_probability_multi(t, 1).unwrap();
        // Histogram binning vs per-sample evaluation: small difference.
        let rel = ((p_hist - p_k1) / p_k1).abs();
        assert!(rel < 0.05, "hist {p_hist:e} vs k1 {p_k1:e}");
    }

    #[test]
    fn multi_breakdown_decreases_with_k() {
        let a = analysis();
        let e = StMc::new(&a, StMcConfig::default()).unwrap();
        let t = 1e10; // late enough that P(N >= 2) is representable
        let p1 = e.failure_probability_multi(t, 1).unwrap();
        let p2 = e.failure_probability_multi(t, 2).unwrap();
        let p3 = e.failure_probability_multi(t, 3).unwrap();
        assert!(p1 > p2 && p2 > p3, "{p1:e} {p2:e} {p3:e}");
        assert!(p2 > 0.0);
        assert!(e.failure_probability_multi(t, 0).is_err());
    }

    #[test]
    fn joint_histogram_is_exposed() {
        let a = analysis();
        let e = StMc::new(&a, StMcConfig::default()).unwrap();
        let h = e.joint_histogram(0);
        assert_eq!(h.total(), StMcConfig::default().n_samples as u64);
    }
}
