//! Fully closed-form first-order engine (an extension beyond the paper,
//! used as an ablation of its numerical-integration step).
//!
//! In the lifetime regime the conditional block failure probability is
//! tiny, so `1 − e^{−A·g} ≈ A·g` and the double integral of eq. (28)
//! collapses to an expectation with closed form:
//!
//! ```text
//! P_j(t) ≈ A_j · E[g(u, v)]
//!        = A_j · exp(s₁·u₀ + s₁²·σ_u²/2) · MGF_v(s₂)
//! ```
//!
//! using the Gaussian MGF for `u` and the shifted-gamma MGF for `v`
//! (`s₁ = γb`, `s₂ = γ²b²/2`). The gamma MGF diverges when
//! `s₂·(2â) ≥ 1`; in that regime (far beyond the lifetime window) the
//! engine falls back to the numerical [`StFast`] evaluation.

use crate::chip::ChipAnalysis;
use crate::engines::st_fast::{StFast, StFastConfig};
use crate::engines::ReliabilityEngine;
use crate::gfun::GCoefficients;
use crate::Result;

/// The closed-form first-order engine (`st_closed`).
#[derive(Debug)]
pub struct StClosed<'a> {
    analysis: &'a ChipAnalysis,
    fallback: StFast<'a>,
}

impl<'a> StClosed<'a> {
    /// Creates the engine over a characterized chip.
    pub fn new(analysis: &'a ChipAnalysis) -> Self {
        StClosed {
            analysis,
            fallback: StFast::new(analysis, StFastConfig::default()),
        }
    }

    /// Closed-form per-block failure probability, or `None` when the
    /// gamma MGF diverges and the numerical fallback is required.
    pub fn block_failure_probability_closed(&self, block_idx: usize, t_s: f64) -> Option<f64> {
        let block = &self.analysis.blocks()[block_idx];
        let coeff = GCoefficients::at(t_s, block.alpha_s(), block.b_per_nm());
        let m = block.moments();
        let mean_term = (coeff.s1 * m.u_nominal()
            + 0.5 * coeff.s1 * coeff.s1 * m.u_sigma() * m.u_sigma())
        .exp();
        let v_term = m.v_dist().mgf(coeff.s2).ok()?;
        let p = block.spec().area() * mean_term * v_term;
        // First-order validity: the approximation 1 − e^{−x} ≈ x is only
        // trustworthy for small x.
        if p < 0.01 {
            Some(p)
        } else {
            None
        }
    }
}

impl ReliabilityEngine for StClosed<'_> {
    fn name(&self) -> &str {
        "st_closed"
    }

    fn failure_probability(&mut self, t_s: f64) -> Result<f64> {
        let mut chip = self
            .analysis
            .composition()
            .accumulator(self.analysis.n_blocks());
        for j in 0..self.analysis.n_blocks() {
            let p = match self.block_failure_probability_closed(j, t_s) {
                Some(p) => p,
                None => self.fallback.block_failure_probability(j, t_s)?,
            };
            chip.absorb(j, p);
        }
        Ok(chip.failure_probability())
    }

    /// Hoists the per-block BLOD moments out of the time loop; the
    /// closed-form kernel is a handful of `exp`s, so a serial sweep is
    /// already orders of magnitude cheaper than a quadrature engine (and
    /// the rare fallback shares `StFast`'s cached node sets).
    fn failure_probabilities(&mut self, ts: &[f64]) -> Result<Vec<f64>> {
        // (α, b, area, u₀, σ_u², v-dist) per block, resolved once.
        let blocks: Vec<_> = self
            .analysis
            .blocks()
            .iter()
            .map(|block| {
                let m = block.moments();
                (
                    block.alpha_s(),
                    block.b_per_nm(),
                    block.spec().area(),
                    m.u_nominal(),
                    m.u_sigma(),
                    m.v_dist(),
                )
            })
            .collect();
        let mut out = Vec::with_capacity(ts.len());
        let mut chip = self.analysis.composition().accumulator(blocks.len());
        for (ti, &t_s) in ts.iter().enumerate() {
            chip.reset();
            for (j, (alpha_s, b_per_nm, area, u0, u_sigma, v_dist)) in blocks.iter().enumerate() {
                let coeff = GCoefficients::at(t_s, *alpha_s, *b_per_nm);
                let mean_term =
                    (coeff.s1 * u0 + 0.5 * coeff.s1 * coeff.s1 * u_sigma * u_sigma).exp();
                let closed = v_dist
                    .mgf(coeff.s2)
                    .ok()
                    .map(|v_term| area * mean_term * v_term)
                    .filter(|&p| p < 0.01);
                chip.absorb(
                    j,
                    match closed {
                        Some(p) => p,
                        None => self.fallback.block_failure_probability(j, ts[ti])?,
                    },
                );
            }
            out.push(chip.failure_probability());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{BlockSpec, ChipSpec};
    use statobd_device::ClosedFormTech;
    use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

    fn analysis() -> ChipAnalysis {
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(5).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let mut spec = ChipSpec::new();
        spec.add_block(
            BlockSpec::new(
                "core",
                40_000.0,
                40_000,
                368.15,
                1.2,
                vec![(0, 0.4), (1, 0.3), (6, 0.3)],
            )
            .unwrap(),
        )
        .unwrap();
        spec.add_block(
            BlockSpec::new("cache", 60_000.0, 60_000, 341.15, 1.2, vec![(12, 1.0)]).unwrap(),
        )
        .unwrap();
        ChipAnalysis::new(spec, model, &ClosedFormTech::nominal_45nm()).unwrap()
    }

    #[test]
    fn closed_form_matches_fine_numerical_integration() {
        let a = analysis();
        let mut closed = StClosed::new(&a);
        let mut fine = StFast::new(
            &a,
            StFastConfig {
                l0: 400,
                u_width_sigmas: 8.0,
                ..Default::default()
            },
        );
        for &t in &[1e8, 1e9, 3e9] {
            let pc = closed.failure_probability(t).unwrap();
            let pf = fine.failure_probability(t).unwrap();
            let rel = ((pc - pf) / pf).abs();
            assert!(
                rel < 0.01,
                "closed {pc:.4e} vs numeric {pf:.4e} at t={t:e} (rel {rel:.4})"
            );
        }
    }

    #[test]
    fn closed_form_declines_fallback_when_probability_large() {
        let a = analysis();
        let closed = StClosed::new(&a);
        // At an absurdly late time the first-order form is invalid.
        assert!(closed.block_failure_probability_closed(0, 1e16).is_none());
    }

    #[test]
    fn engine_name() {
        let a = analysis();
        let e = StClosed::new(&a);
        assert_eq!(e.name(), "st_closed");
    }
}
