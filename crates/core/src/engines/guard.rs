//! The traditional guard-band baseline (paper eqs. 33–34): every device is
//! assumed to have the *minimum* oxide thickness and the chip's *worst*
//! operating temperature. Deterministic, closed-form — and, as the paper's
//! Table III shows, ~50 % pessimistic.

use crate::chip::ChipAnalysis;
use crate::engines::composition::{Composition, CompositionAccumulator};
use crate::engines::ReliabilityEngine;
use crate::{CoreError, Result};

/// Configuration of the guard-band baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardBandConfig {
    /// Thickness margin in sigmas: `x_min = u₀ − k·σ_tot` (paper: 3).
    pub sigmas: f64,
}

statobd_num::impl_json_struct!(GuardBandConfig { sigmas });

impl Default for GuardBandConfig {
    fn default() -> Self {
        GuardBandConfig {
            sigmas: crate::params::GUARD_BAND_SIGMAS,
        }
    }
}

/// The guard-band engine (`guard` in Table III).
#[derive(Debug)]
pub struct GuardBand {
    /// Minimum assumed thickness `x_min` (nm).
    x_min_nm: f64,
    /// Worst-case (hottest-block) Weibull scale (s).
    alpha_worst_s: f64,
    /// Worst-case `b` (1/nm).
    b_worst: f64,
    /// Total chip area `A`.
    total_area: f64,
    /// Per-block areas `A_j`, in block order — the grouped evaluation
    /// needs per-block corner probabilities, not just their sum.
    block_areas: Vec<f64>,
    /// The chip's block composition, captured at build time (the corner
    /// is self-contained: no `ChipAnalysis` borrow at query time).
    composition: Composition,
}

impl GuardBand {
    /// Builds the guard-band corner from a characterized chip: minimum
    /// nominal thickness minus `k·σ_tot`, with the hottest block's
    /// Weibull parameters applied to the whole chip area.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the margin consumes the
    /// whole thickness (non-positive `x_min`).
    pub fn new(analysis: &ChipAnalysis, config: GuardBandConfig) -> Result<Self> {
        let model = analysis.model();
        let min_nominal = model
            .nominal()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let x_min_nm = min_nominal - config.sigmas * model.budget().sigma_total();
        if !(x_min_nm > 0.0) {
            return Err(CoreError::InvalidParameter {
                detail: format!("guard-band thickness margin is non-physical: x_min = {x_min_nm}"),
            });
        }
        // The hottest block defines the worst corner. `total_cmp` keeps
        // this a total order even for pathological (NaN) temperatures, and
        // an empty analysis is a structured error — the serve loop must
        // never abort on a bad request.
        let worst = analysis
            .blocks()
            .iter()
            .max_by(|a, b| {
                a.spec()
                    .temperature_k()
                    .total_cmp(&b.spec().temperature_k())
            })
            .ok_or_else(|| CoreError::InvalidParameter {
                detail: "guard-band corner needs at least one block".to_string(),
            })?;
        Ok(GuardBand {
            x_min_nm,
            alpha_worst_s: worst.alpha_s(),
            b_worst: worst.b_per_nm(),
            total_area: analysis.spec().total_area(),
            block_areas: analysis
                .blocks()
                .iter()
                .map(|b| b.spec().area())
                .collect(),
            composition: analysis.composition().clone(),
        })
    }

    /// The grouped corner probability at hazard kernel `k`: each block's
    /// worst-case failure probability `1 − exp(−A_j·k)` composed through
    /// the redundancy groups. (The weakest-link path keeps the original
    /// whole-chip-area closed form, bit-identically.)
    fn grouped_probability(&self, chip: &mut CompositionAccumulator, kernel: f64) -> f64 {
        chip.reset();
        for (j, &area) in self.block_areas.iter().enumerate() {
            chip.absorb(j, -(-area * kernel).exp_m1());
        }
        chip.failure_probability()
    }

    /// The assumed minimum thickness (nm).
    pub fn x_min_nm(&self) -> f64 {
        self.x_min_nm
    }

    /// The worst-corner Weibull scale (s).
    pub fn alpha_worst_s(&self) -> f64 {
        self.alpha_worst_s
    }

    /// The worst-corner `b` (1/nm).
    pub fn b_worst(&self) -> f64 {
        self.b_worst
    }

    /// Closed-form lifetime at failure-probability target `p` (eq. 34):
    /// `t = α_worst · (−ln(1−p)/A)^(1/(b·x_min))`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `0 < p < 1`.
    pub fn lifetime(&self, p_target: f64) -> Result<f64> {
        if !(0.0 < p_target && p_target < 1.0) {
            return Err(CoreError::InvalidParameter {
                detail: format!("lifetime target must be in (0,1), got {p_target}"),
            });
        }
        let hazard = -(-p_target).ln_1p() / self.total_area;
        Ok(self.alpha_worst_s * hazard.powf(1.0 / (self.b_worst * self.x_min_nm)))
    }
}

impl ReliabilityEngine for GuardBand {
    fn name(&self) -> &str {
        "guard"
    }

    fn failure_probability(&mut self, t_s: f64) -> Result<f64> {
        // P(t) = 1 − exp(−A·(t/α)^(b·x_min)), evaluated stably.
        if t_s <= 0.0 {
            return Ok(0.0);
        }
        let beta = self.b_worst * self.x_min_nm;
        let kernel = (beta * (t_s / self.alpha_worst_s).ln()).exp();
        if self.composition.is_weakest_link() {
            return Ok(-(-self.total_area * kernel).exp_m1());
        }
        let mut chip = self.composition.accumulator(self.block_areas.len());
        Ok(self.grouped_probability(&mut chip, kernel))
    }

    /// The closed form is two `exp`s per point; the batched win is simply
    /// hoisting the Weibull slope `β = b·x_min` out of the loop.
    fn failure_probabilities(&mut self, ts: &[f64]) -> Result<Vec<f64>> {
        let beta = self.b_worst * self.x_min_nm;
        let mut chip = (!self.composition.is_weakest_link())
            .then(|| self.composition.accumulator(self.block_areas.len()));
        Ok(ts
            .iter()
            .map(|&t_s| {
                if t_s <= 0.0 {
                    return 0.0;
                }
                let kernel = (beta * (t_s / self.alpha_worst_s).ln()).exp();
                match &mut chip {
                    None => -(-self.total_area * kernel).exp_m1(),
                    Some(chip) => self.grouped_probability(chip, kernel),
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{BlockSpec, ChipSpec};
    use crate::engines::st_fast::{StFast, StFastConfig};
    use crate::lifetime::solve_lifetime;
    use statobd_device::ClosedFormTech;
    use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

    fn analysis() -> ChipAnalysis {
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(5).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let mut spec = ChipSpec::new();
        spec.add_block(
            BlockSpec::new(
                "core",
                40_000.0,
                40_000,
                368.15,
                1.2,
                vec![(0, 0.5), (6, 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        spec.add_block(
            BlockSpec::new("cache", 60_000.0, 60_000, 341.15, 1.2, vec![(12, 1.0)]).unwrap(),
        )
        .unwrap();
        ChipAnalysis::new(spec, model, &ClosedFormTech::nominal_45nm()).unwrap()
    }

    #[test]
    fn closed_form_lifetime_matches_probability_inversion() {
        let a = analysis();
        let mut g = GuardBand::new(&a, GuardBandConfig::default()).unwrap();
        let p = 1e-6;
        let t = g.lifetime(p).unwrap();
        let back = g.failure_probability(t).unwrap();
        assert!((back - p).abs() / p < 1e-9, "round trip {back:.4e}");
    }

    #[test]
    fn guard_band_is_pessimistic_vs_statistical() {
        // The headline claim: guard-band underestimates lifetime by ~50 %.
        let a = analysis();
        let g = GuardBand::new(&a, GuardBandConfig::default()).unwrap();
        let t_guard = g.lifetime(1e-6).unwrap();
        let mut fast = StFast::new(&a, StFastConfig::default());
        let t_stat = solve_lifetime(&mut fast, 1e-6, (1e5, 1e12)).unwrap();
        assert!(
            t_guard < t_stat,
            "guard {t_guard:.3e} should be below statistical {t_stat:.3e}"
        );
        let underestimate = 1.0 - t_guard / t_stat;
        assert!(
            (0.2..0.8).contains(&underestimate),
            "underestimation {underestimate:.2} outside the paper's regime"
        );
    }

    #[test]
    fn uses_hottest_block_parameters() {
        let a = analysis();
        let g = GuardBand::new(&a, GuardBandConfig::default()).unwrap();
        // Worst = core at 368.15 K.
        assert!((g.alpha_worst_s() - a.blocks()[0].alpha_s()).abs() < 1e-3);
        assert!((g.b_worst() - a.blocks()[0].b_per_nm()).abs() < 1e-12);
        // x_min = 2.2 − 3σ.
        let expected = 2.2 - 3.0 * a.model().budget().sigma_total();
        assert!((g.x_min_nm() - expected).abs() < 1e-12);
    }

    #[test]
    fn rejects_absurd_margin() {
        let a = analysis();
        assert!(GuardBand::new(&a, GuardBandConfig { sigmas: 100.0 }).is_err());
    }

    #[test]
    fn lifetime_rejects_bad_targets() {
        let a = analysis();
        let g = GuardBand::new(&a, GuardBandConfig::default()).unwrap();
        assert!(g.lifetime(0.0).is_err());
        assert!(g.lifetime(1.0).is_err());
    }
}
