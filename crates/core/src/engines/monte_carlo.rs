//! The reference per-device Monte-Carlo engine (paper's `MC` column).
//!
//! For each sample chip the full thickness field is drawn: one correlated
//! base value per grid (principal components) plus an independent residual
//! per *device*. Devices are binned into a fine per-block thickness
//! histogram, so the conditional chip reliability
//!
//! ```text
//! R_chip(t) = exp(−Σ_j (A_j/m_j) Σ_devices (t/α_j)^{b_j·x_i})
//! ```
//!
//! is evaluated exactly (up to binning at ~10⁻⁴ nm resolution) at any `t`
//! without re-simulation, and the ensemble failure probability is the
//! average over chips. Chip sampling is embarrassingly parallel and fans
//! out across scoped threads ([`statobd_num::parallel`]); every chip draws
//! from its own counter-based RNG stream, so results are bit-identical at
//! any thread count.

use crate::blod::uv_from_grid_base;
use crate::chip::ChipAnalysis;
use crate::engines::composition::Composition;
use crate::engines::ReliabilityEngine;
use crate::{CoreError, Result};
use statobd_num::parallel;
use statobd_num::rng::{NormalSampler, Xoshiro256pp};

/// Configuration of the Monte-Carlo reference engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Number of sample chips (the paper uses 1000 for Table III).
    pub n_chips: usize,
    /// Thickness histogram bins per block.
    pub bins: usize,
    /// RNG seed; chip `i` derives its stream from `seed` and `i`, so
    /// results are independent of the thread count.
    pub seed: u64,
    /// Worker threads (`None` = all available cores).
    pub threads: Option<usize>,
}

statobd_num::impl_json_struct!(MonteCarloConfig {
    n_chips,
    bins,
    seed,
    threads
});

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            n_chips: 1000,
            bins: 400,
            seed: 0xC0FFEE,
            threads: None,
        }
    }
}

/// Per-block device allocation across grids.
#[derive(Debug, Clone)]
struct BlockAllocation {
    /// `(grid, device count)` with counts summing to `m_j`.
    per_grid: Vec<(usize, u64)>,
    /// Histogram axis start (nm).
    x_lo: f64,
    /// Histogram bin width (nm).
    bin_w: f64,
}

/// Reusable scratch buffers shared by every evaluation entry point, so
/// repeated sweep/solve calls allocate nothing once warm.
#[derive(Debug, Default)]
struct McWorkspace {
    /// Bin-weight table; `[block][bin]` for scalar fills, `[block][bin][t]`
    /// for batched fills.
    weights: Vec<f64>,
    /// Per-chip failure probabilities, laid out `[chip][t]`.
    per_chip: Vec<f64>,
}

/// The Monte-Carlo reference engine (`MC` in Table III).
#[derive(Debug)]
pub struct MonteCarlo<'a> {
    analysis: &'a ChipAnalysis,
    config: MonteCarloConfig,
    allocations: Vec<BlockAllocation>,
    /// Device-count histograms, laid out `[chip][block][bin]`.
    counts: Vec<u32>,
    /// Exact per-chip-block `(u, v)` pairs (kept for validation studies).
    uv: Vec<(f64, f64)>,
    /// Wall-clock seconds spent sampling chips.
    build_seconds: f64,
    /// Cached evaluation scratch (weight tables, per-chip probabilities).
    ws: std::cell::RefCell<McWorkspace>,
}

impl<'a> MonteCarlo<'a> {
    /// Samples `config.n_chips` chips of the analyzed design (the
    /// expensive step — per-device work, parallelized over chips).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a degenerate
    /// configuration.
    pub fn build(analysis: &'a ChipAnalysis, config: MonteCarloConfig) -> Result<Self> {
        if config.n_chips == 0 || config.bins < 8 {
            return Err(CoreError::InvalidParameter {
                detail: format!(
                    "MC needs n_chips > 0 and bins >= 8, got {} and {}",
                    config.n_chips, config.bins
                ),
            });
        }
        let model = analysis.model();
        let sigma_ind = model.sigma_ind();

        // Precompute per-block device allocations and histogram axes.
        let mut allocations = Vec::with_capacity(analysis.n_blocks());
        for block in analysis.blocks() {
            let spec = block.spec();
            let m = spec.m_devices();
            // Largest-remainder apportionment of devices to grids.
            let mut per_grid: Vec<(usize, u64, f64)> = spec
                .grid_weights()
                .iter()
                .map(|&(g, w)| {
                    let exact = w * m as f64;
                    (g, exact.floor() as u64, exact.fract())
                })
                .collect();
            let assigned: u64 = per_grid.iter().map(|&(_, c, _)| c).sum();
            let mut remainder = m - assigned;
            per_grid.sort_by(|a, b| b.2.total_cmp(&a.2));
            for entry in per_grid.iter_mut() {
                if remainder == 0 {
                    break;
                }
                entry.1 += 1;
                remainder -= 1;
            }
            let per_grid: Vec<(usize, u64)> = per_grid
                .into_iter()
                .filter(|&(_, c, _)| c > 0)
                .map(|(g, c, _)| (g, c))
                .collect();

            // Axis: nominal range ± (6σ_corr + 6σ_ind) with headroom.
            let u0 = block.moments().u_nominal();
            let spread = 6.0 * block.moments().u_sigma()
                + 6.0 * sigma_ind
                + 3.0 * block.moments().q_trace().sqrt();
            let x_lo = u0 - spread;
            let bin_w = 2.0 * spread / config.bins as f64;
            allocations.push(BlockAllocation {
                per_grid,
                x_lo,
                bin_w,
            });
        }

        let n_blocks = analysis.n_blocks();
        let stride_chip = n_blocks * config.bins;
        let mut counts = vec![0u32; config.n_chips * stride_chip];
        let mut uv = vec![(0.0, 0.0); config.n_chips * n_blocks];

        let threads = parallel::resolve_threads(config.threads);
        // Chunk size is fixed (not derived from the thread count) so the
        // work decomposition — and with per-chip RNG streams, the result —
        // is identical no matter how many workers run.
        let chunk_chips = 16;

        let start = std::time::Instant::now();
        {
            let allocations = &allocations;
            parallel::for_each_chunk_pair_mut(
                &mut counts,
                stride_chip,
                &mut uv,
                n_blocks,
                chunk_chips,
                threads,
                |chunk_idx, count_chunk, uv_chunk| {
                    let n_pc = model.n_components();
                    let mut z = vec![0.0; n_pc];
                    let first_chip = chunk_idx * chunk_chips;
                    let chips_here = count_chunk.len() / stride_chip;
                    for local in 0..chips_here {
                        let chip = first_chip + local;
                        // Per-chip deterministic stream; a fresh sampler per
                        // chip keeps results independent of the thread
                        // partitioning.
                        let mut normal = NormalSampler::new();
                        let mut rng = Xoshiro256pp::stream(config.seed, chip as u64);
                        normal.fill(&mut rng, &mut z);
                        let base = model.grid_base(&z);
                        let chip_counts =
                            &mut count_chunk[local * stride_chip..(local + 1) * stride_chip];
                        for (j, (block, alloc)) in
                            analysis.blocks().iter().zip(allocations.iter()).enumerate()
                        {
                            let bins = &mut chip_counts[j * config.bins..(j + 1) * config.bins];
                            let inv_w = 1.0 / alloc.bin_w;
                            for &(g, m_g) in &alloc.per_grid {
                                let b0 = base[g];
                                for _ in 0..m_g {
                                    let x = b0 + sigma_ind * normal.sample(&mut rng);
                                    let idx = ((x - alloc.x_lo) * inv_w) as isize;
                                    let idx = idx.clamp(0, config.bins as isize - 1) as usize;
                                    bins[idx] += 1;
                                }
                            }
                            uv_chunk[local * n_blocks + j] =
                                uv_from_grid_base(block.spec().grid_weights(), &base, sigma_ind);
                        }
                    }
                },
            );
        }
        let build_seconds = start.elapsed().as_secs_f64();

        Ok(MonteCarlo {
            analysis,
            config,
            allocations,
            counts,
            uv,
            build_seconds,
            ws: std::cell::RefCell::new(McWorkspace::default()),
        })
    }

    /// Seconds spent in the chip-sampling phase.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// Number of sampled chips.
    pub fn n_chips(&self) -> usize {
        self.config.n_chips
    }

    /// The exact `(u_j, v_j)` of block `block_idx` on chip `chip_idx`
    /// (used by validation experiments such as the paper's Figs. 5–7).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn chip_block_uv(&self, chip_idx: usize, block_idx: usize) -> (f64, f64) {
        let n_blocks = self.analysis.n_blocks();
        assert!(chip_idx < self.config.n_chips && block_idx < n_blocks);
        self.uv[chip_idx * n_blocks + block_idx]
    }

    /// Per-chip cumulative hazards `H_chip(t) = Σ_j (A_j/m_j) Σ_i
    /// (t/α_j)^{b_j x_i}` for every sampled chip.
    pub fn per_chip_hazard(&self, t_s: f64) -> Vec<f64> {
        let mut ws = self.ws.borrow_mut();
        self.fill_bin_weights(std::slice::from_ref(&t_s), &mut ws.weights);
        let weights = &ws.weights;
        let n_blocks = self.analysis.n_blocks();
        let bins = self.config.bins;
        let stride_chip = n_blocks * bins;
        (0..self.config.n_chips)
            .map(|chip| {
                let chip_counts = &self.counts[chip * stride_chip..(chip + 1) * stride_chip];
                let mut hazard = 0.0;
                for j in 0..n_blocks {
                    let w = &weights[j * bins..(j + 1) * bins];
                    let c = &chip_counts[j * bins..(j + 1) * bins];
                    let mut acc = 0.0;
                    for (wi, ci) in w.iter().zip(c) {
                        if *ci != 0 {
                            acc += wi * *ci as f64;
                        }
                    }
                    hazard += acc;
                }
                hazard
            })
            .collect()
    }

    /// Per-chip conditional failure probabilities `1 − R_chip(t)` for
    /// every sampled chip (the lifetime-distribution view of Fig. 10).
    pub fn per_chip_failure(&self, t_s: f64) -> Vec<f64> {
        self.per_chip_hazard(t_s)
            .into_iter()
            .map(|h| -(-h).exp_m1())
            .collect()
    }

    /// Ensemble probability that at least `k` breakdowns occur by `t` —
    /// the multi-breakdown (SBD-tolerant design) extension: breakdowns
    /// arrive as a Poisson process with the chip's cumulative hazard as
    /// its mean, so `P(N ≥ k) = P_gamma(k, H_chip)` averaged over chips.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `k == 0`.
    pub fn failure_probability_multi(&self, t_s: f64, k: u32) -> Result<f64> {
        if k == 0 {
            return Err(CoreError::InvalidParameter {
                detail: "breakdown count k must be at least 1".to_string(),
            });
        }
        let hazards = self.per_chip_hazard(t_s);
        let mut acc = 0.0;
        for h in &hazards {
            acc += if k == 1 {
                -(-h).exp_m1()
            } else {
                statobd_num::special::gamma_p(k as f64, *h)?
            };
        }
        Ok(acc / hazards.len() as f64)
    }

    /// Samples one failure time of chip `chip_idx` by inverse transform:
    /// given the chip's thicknesses, `T` satisfies `H_chip(T) = E` with
    /// `E ~ Exp(1)` — solved by bisection on `ln t`. This is the "simulate
    /// the failure time of N sample chips" view behind the paper's
    /// Fig. 10 lifetime distribution.
    ///
    /// # Panics
    ///
    /// Panics if `chip_idx` is out of range.
    pub fn sample_failure_time<R: statobd_num::rng::Rng + ?Sized>(
        &self,
        chip_idx: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(chip_idx < self.config.n_chips, "chip index out of range");
        let e = statobd_num::rng::sample_exp1(rng);
        // Bracket in log-time.
        let hazard_at = |t: f64| -> f64 {
            let mut ws = self.ws.borrow_mut();
            self.fill_bin_weights(std::slice::from_ref(&t), &mut ws.weights);
            let weights = &ws.weights;
            let n_blocks = self.analysis.n_blocks();
            let bins = self.config.bins;
            let stride_chip = n_blocks * bins;
            let chip_counts = &self.counts[chip_idx * stride_chip..(chip_idx + 1) * stride_chip];
            let mut hazard = 0.0;
            for j in 0..n_blocks {
                let w = &weights[j * bins..(j + 1) * bins];
                let c = &chip_counts[j * bins..(j + 1) * bins];
                for (wi, ci) in w.iter().zip(c) {
                    if *ci != 0 {
                        hazard += wi * *ci as f64;
                    }
                }
            }
            hazard
        };
        let (mut lo, mut hi) = (1e2_f64, 1e14_f64);
        while hazard_at(lo) > e {
            lo /= 16.0;
        }
        while hazard_at(hi) < e {
            hi *= 16.0;
        }
        let (mut ln_lo, mut ln_hi) = (lo.ln(), hi.ln());
        for _ in 0..80 {
            let mid = 0.5 * (ln_lo + ln_hi);
            if hazard_at(mid.exp()) < e {
                ln_lo = mid;
            } else {
                ln_hi = mid;
            }
            if ln_hi - ln_lo < 1e-9 {
                break;
            }
        }
        (0.5 * (ln_lo + ln_hi)).exp()
    }

    /// Fills `out` with the per-block per-bin hazard weights
    /// `(A_j/m_j)·exp(γ_j(t)·b_j·x_bin)` for every requested time, laid out
    /// `[block][bin][t]` (so for a single time this is the classic
    /// `[block][bin]` table).
    ///
    /// The bin axis is uniform, so each `(block, t)` row is a geometric
    /// progression filled by [`statobd_num::special::scaled_exp_grid`] —
    /// one `exp` per resync window instead of one per bin (and at lane
    /// widths > 1 those resync anchors are themselves batched through one
    /// vectorized exp per row; see [`statobd_num::simd`]).
    fn fill_bin_weights(&self, ts: &[f64], out: &mut Vec<f64>) {
        let bins = self.config.bins;
        let n_t = ts.len();
        out.clear();
        out.resize(self.analysis.n_blocks() * bins * n_t, 0.0);
        for (j, (block, alloc)) in self
            .analysis
            .blocks()
            .iter()
            .zip(self.allocations.iter())
            .enumerate()
        {
            let area_per_device = block.spec().area() / block.spec().m_devices() as f64;
            let x0 = alloc.x_lo + 0.5 * alloc.bin_w;
            for (ti, &t_s) in ts.iter().enumerate() {
                let gamma = (t_s / block.alpha_s()).ln();
                let gb = gamma * block.b_per_nm();
                statobd_num::special::scaled_exp_grid(
                    area_per_device,
                    gb,
                    x0,
                    alloc.bin_w,
                    bins,
                    &mut out[j * bins * n_t + ti..],
                    n_t,
                );
            }
        }
    }
}

impl ReliabilityEngine for MonteCarlo<'_> {
    fn name(&self) -> &str {
        "MC"
    }

    fn failure_probability(&mut self, t_s: f64) -> Result<f64> {
        // Route through the batched kernel so the scalar and batched paths
        // share one implementation (and are trivially bit-identical).
        Ok(self.failure_probabilities(std::slice::from_ref(&t_s))?[0])
    }

    /// One parallel pass over the chip histograms evaluating every
    /// requested time per chip visit: the weight table holds all
    /// `(block, bin, t)` entries up front, and the innermost loop runs
    /// over `t` with unit stride, so the 200-point sweeps behind
    /// [`crate::failure_rate_curve`] traverse the (large) count array once
    /// instead of 200 times.
    fn failure_probabilities(&mut self, ts: &[f64]) -> Result<Vec<f64>> {
        if ts.is_empty() {
            return Ok(Vec::new());
        }
        let n_t = ts.len();
        let n_blocks = self.analysis.n_blocks();
        let bins = self.config.bins;
        let stride_chip = n_blocks * bins;
        let n_chips = self.config.n_chips;
        let threads = parallel::resolve_threads(self.config.threads);

        let mut ws = self.ws.borrow_mut();
        self.fill_bin_weights(ts, &mut ws.weights);
        let McWorkspace { weights, per_chip } = &mut *ws;
        let weights: &[f64] = weights;
        per_chip.clear();
        per_chip.resize(n_chips * n_t, 0.0);

        // Fixed chunking (as in `build`) and disjoint per-chip output rows
        // keep the result independent of the worker count; capture the
        // individual fields, not `&self` (the workspace `RefCell` makes the
        // engine `!Sync`).
        let counts = &self.counts;
        // Redundancy groups flip the per-chip composition: instead of
        // summing block hazards into one chip hazard (weakest-link:
        // survival factorizes, so the sum *is* the composition), each
        // sampled chip keeps its exact per-block failure probabilities and
        // runs the spares directly through a linear-space Poisson-binomial
        // pass — the "simulate spares on every sample chip" reference the
        // analytic log-space DP is validated against.
        let groups = match self.analysis.composition() {
            Composition::WeakestLink => None,
            Composition::Groups(groups) => Some(groups.as_slice()),
        };
        let chunk_chips = 16;
        parallel::for_each_chunk_mut(
            per_chip.as_mut_slice(),
            chunk_chips * n_t,
            threads,
            |chunk_idx, out_chunk| {
                let first_chip = chunk_idx * chunk_chips;
                let chips_here = out_chunk.len() / n_t;
                let mut acc = vec![0.0; n_t];
                let mut hazards = vec![0.0; n_t];
                let mut block_haz = vec![0.0; if groups.is_some() { n_blocks * n_t } else { 0 }];
                let mut dp: Vec<f64> = Vec::new();
                for local in 0..chips_here {
                    let chip = first_chip + local;
                    let chip_counts = &counts[chip * stride_chip..(chip + 1) * stride_chip];
                    hazards.iter_mut().for_each(|h| *h = 0.0);
                    for j in 0..n_blocks {
                        let w = &weights[j * bins * n_t..(j + 1) * bins * n_t];
                        let c = &chip_counts[j * bins..(j + 1) * bins];
                        acc.iter_mut().for_each(|a| *a = 0.0);
                        for (k, ck) in c.iter().enumerate() {
                            if *ck != 0 {
                                let cf = *ck as f64;
                                let w_row = &w[k * n_t..(k + 1) * n_t];
                                for (a, wk) in acc.iter_mut().zip(w_row) {
                                    *a += wk * cf;
                                }
                            }
                        }
                        match groups {
                            None => {
                                for (h, a) in hazards.iter_mut().zip(&acc) {
                                    *h += a;
                                }
                            }
                            Some(_) => {
                                block_haz[j * n_t..(j + 1) * n_t].copy_from_slice(&acc);
                            }
                        }
                    }
                    let out = &mut out_chunk[local * n_t..(local + 1) * n_t];
                    match groups {
                        None => {
                            for (o, h) in out.iter_mut().zip(&hazards) {
                                *o = -(-h).exp_m1();
                            }
                        }
                        Some(groups) => {
                            for (ti, o) in out.iter_mut().enumerate() {
                                let mut survival = 1.0;
                                for group in groups {
                                    let s = group.spares;
                                    dp.clear();
                                    dp.resize(s + 1, 0.0);
                                    dp[0] = 1.0;
                                    let mut tail = 0.0;
                                    for &j in &group.blocks {
                                        let p = -(-block_haz[j * n_t + ti]).exp_m1();
                                        tail += dp[s] * p;
                                        for m in (1..=s).rev() {
                                            dp[m] = dp[m] * (1.0 - p) + dp[m - 1] * p;
                                        }
                                        dp[0] *= 1.0 - p;
                                    }
                                    survival *= 1.0 - tail;
                                }
                                *o = 1.0 - survival;
                            }
                        }
                    }
                }
            },
        );

        // Ensemble mean, reduced serially in chip order — the same
        // summation order as the scalar path at any thread count.
        let mut totals = vec![0.0; n_t];
        for chip in 0..n_chips {
            let row = &per_chip[chip * n_t..(chip + 1) * n_t];
            for (tot, p) in totals.iter_mut().zip(row) {
                *tot += p;
            }
        }
        for tot in totals.iter_mut() {
            *tot /= n_chips as f64;
        }
        Ok(totals)
    }

    fn sweep_batch_hint(&self) -> usize {
        // Each call pays a full traversal of the count histograms; batching
        // a handful of times per visit is nearly free.
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{BlockSpec, ChipSpec};
    use crate::engines::st_fast::{StFast, StFastConfig};
    use statobd_device::ClosedFormTech;
    use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

    fn analysis(devices: u64) -> ChipAnalysis {
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(5).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let mut spec = ChipSpec::new();
        spec.add_block(
            BlockSpec::new(
                "core",
                devices as f64 * 0.4,
                (devices as f64 * 0.4) as u64,
                368.15,
                1.2,
                vec![(0, 0.5), (6, 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        spec.add_block(
            BlockSpec::new(
                "cache",
                devices as f64 * 0.6,
                (devices as f64 * 0.6) as u64,
                341.15,
                1.2,
                vec![(12, 0.7), (13, 0.3)],
            )
            .unwrap(),
        )
        .unwrap();
        ChipAnalysis::new(spec, model, &ClosedFormTech::nominal_45nm()).unwrap()
    }

    #[test]
    fn mc_agrees_with_st_fast() {
        // The paper's central result: st_fast within ~1-2 % of MC.
        let a = analysis(50_000);
        let mut mc = MonteCarlo::build(
            &a,
            MonteCarloConfig {
                n_chips: 600,
                ..Default::default()
            },
        )
        .unwrap();
        let mut fast = StFast::new(
            &a,
            StFastConfig {
                l0: 50,
                ..Default::default()
            },
        );
        for &t in &[3e8, 1e9] {
            let pm = mc.failure_probability(t).unwrap();
            let pf = fast.failure_probability(t).unwrap();
            let rel = ((pm - pf) / pf).abs();
            assert!(
                rel < 0.12,
                "MC {pm:.4e} vs st_fast {pf:.4e} at t={t:e} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let a = analysis(5_000);
        let base = MonteCarloConfig {
            n_chips: 50,
            threads: Some(1),
            ..Default::default()
        };
        let mut one = MonteCarlo::build(&a, base).unwrap();
        let mut four = MonteCarlo::build(
            &a,
            MonteCarloConfig {
                threads: Some(4),
                ..base
            },
        )
        .unwrap();
        assert_eq!(
            one.failure_probability(1e9).unwrap(),
            four.failure_probability(1e9).unwrap()
        );
    }

    #[test]
    fn per_chip_failure_bounds_and_mean() {
        let a = analysis(5_000);
        let mut mc = MonteCarlo::build(
            &a,
            MonteCarloConfig {
                n_chips: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let t = 1e9;
        let per_chip = mc.per_chip_failure(t);
        assert_eq!(per_chip.len(), 100);
        assert!(per_chip.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let mean: f64 = per_chip.iter().sum::<f64>() / 100.0;
        assert!((mean - mc.failure_probability(t).unwrap()).abs() < 1e-15);
    }

    #[test]
    fn chip_uv_matches_blod_statistics() {
        // Across chips, the sampled (u, v) must match the analytic BLOD
        // moments — tying the MC reference back to eqs. 22/24.
        let a = analysis(20_000);
        let mc = MonteCarlo::build(
            &a,
            MonteCarloConfig {
                n_chips: 4000,
                ..Default::default()
            },
        )
        .unwrap();
        let mut u_stats = statobd_num::stats::OnlineStats::new();
        let mut v_stats = statobd_num::stats::OnlineStats::new();
        for chip in 0..4000 {
            let (u, v) = mc.chip_block_uv(chip, 0);
            u_stats.push(u);
            v_stats.push(v);
        }
        let m = a.blocks()[0].moments();
        assert!((u_stats.mean() - m.u_nominal()).abs() < 3e-3 * m.u_nominal());
        assert!((u_stats.std_dev() - m.u_sigma()).abs() < 0.05 * m.u_sigma());
        let v_expected = m.v_floor() + m.q_trace();
        assert!(
            (v_stats.mean() - v_expected).abs() < 0.05 * v_expected,
            "v mean {} vs {}",
            v_stats.mean(),
            v_expected
        );
    }

    #[test]
    fn rejects_degenerate_config() {
        let a = analysis(5_000);
        assert!(MonteCarlo::build(
            &a,
            MonteCarloConfig {
                n_chips: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(MonteCarlo::build(
            &a,
            MonteCarloConfig {
                bins: 4,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn sampled_failure_times_match_the_reliability_curve() {
        let a = analysis(5_000);
        let mut mc = MonteCarlo::build(
            &a,
            MonteCarloConfig {
                n_chips: 60,
                ..Default::default()
            },
        )
        .unwrap();
        // Median of sampled failure times across chips should match the
        // t where P(t) = 0.5.
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let mut times: Vec<f64> = (0..60)
            .flat_map(|chip| {
                (0..20)
                    .map(|_| mc.sample_failure_time(chip, &mut rng))
                    .collect::<Vec<_>>()
            })
            .collect();
        times.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let median = times[times.len() / 2];
        let t_half = crate::lifetime::solve_lifetime(&mut mc, 0.5, (1e6, 1e12)).unwrap();
        let rel = ((median - t_half) / t_half).abs();
        assert!(rel < 0.25, "median {median:e} vs P=0.5 time {t_half:e}");
    }

    #[test]
    fn multi_breakdown_consistency() {
        let a = analysis(5_000);
        let mut mc = MonteCarlo::build(
            &a,
            MonteCarloConfig {
                n_chips: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let t = 1e10;
        // k = 1 equals the engine probability exactly (same hazards).
        let p1 = mc.failure_probability_multi(t, 1).unwrap();
        let p_engine = mc.failure_probability(t).unwrap();
        assert!((p1 - p_engine).abs() < 1e-15);
        // Decreasing in k, and a 2-SBD-tolerant design lives longer.
        let p2 = mc.failure_probability_multi(t, 2).unwrap();
        assert!(p2 < p1);
        assert!(mc.failure_probability_multi(t, 0).is_err());
    }

    #[test]
    fn failure_probability_is_monotone() {
        let a = analysis(5_000);
        let mut mc = MonteCarlo::build(
            &a,
            MonteCarloConfig {
                n_chips: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let mut prev = 0.0;
        for i in 0..8 {
            let t = 10f64.powf(7.0 + i as f64);
            let p = mc.failure_probability(t).unwrap();
            assert!(p >= prev - 1e-15);
            prev = p;
        }
    }
}
