//! Block-level oxide-thickness distribution (BLOD) characterization
//! (paper Sec. IV-A/IV-C).
//!
//! For block `j` with device weights `w_g` over the correlation grids, the
//! BLOD sample mean and variance as functions of the principal components
//! `z` are
//!
//! ```text
//! u_j(z) = u_{j,0} + Σ_k u_{j,k} z_k                    (eq. 22)
//! v_j(z) = λ_r² + zᵀ Q_j z                              (eq. 24, corrected)
//! Q_j    = Σ_g w_g (λ_g − u_j)(λ_g − u_j)ᵀ
//! ```
//!
//! (The paper's printed eq. 24 has a sign typo; the centered quadratic
//! form above is the correct covariance-of-deviations expression — see
//! DESIGN.md. Its positive semidefiniteness is what makes the χ²
//! approximation applicable.)
//!
//! `u_j` is Gaussian. `v_j` is a quadratic form in Gaussians, approximated
//! by the Yuan–Bentler two-moment fit (eqs. 29–30):
//!
//! ```text
//! v_j ≈ λ_r² + â·χ²_b̂,   â = tr(Q²)/tr(Q),   b̂ = tr(Q)²/tr(Q²)
//! ```

use crate::chip::BlockSpec;
use crate::Result;
use statobd_num::dist::{ContinuousDistribution, Gamma, Normal};
use statobd_num::eigen::{SpectralOptions, SymmetricEigen};
use statobd_num::matrix::DMatrix;
use statobd_num::simd;
use statobd_variation::ThicknessModel;

/// Fraction of `tr(Q)` the retained low-rank projection of `Q` must
/// capture (used by the sampling-based engines to evaluate `v(z)`).
///
/// The within-block dispersion spectrum decays fast — neighbouring grids
/// are strongly correlated — so a handful of components carry virtually
/// all of `tr(Q)`; truncating at `1 − 10⁻⁴` keeps `v(z)` accurate to a
/// relative 10⁻⁴ — two orders below the method's ~1 % accuracy target —
/// while making the `st_MC` sampling an order of magnitude cheaper.
const PROJECTION_ENERGY: f64 = 1.0 - 1e-4;

/// Distribution of the BLOD sample mean `u_j`.
#[derive(Debug, Clone)]
pub enum MeanDist {
    /// No correlated components: `u_j` is a constant.
    Deterministic(f64),
    /// `u_j ~ N(u_{j,0}, σ_u²)`.
    Gaussian(Normal),
}

impl MeanDist {
    /// Mean of `u_j`.
    pub fn mean(&self) -> f64 {
        match self {
            MeanDist::Deterministic(u) => *u,
            MeanDist::Gaussian(n) => n.mean(),
        }
    }

    /// Standard deviation of `u_j`.
    pub fn std_dev(&self) -> f64 {
        match self {
            MeanDist::Deterministic(_) => 0.0,
            MeanDist::Gaussian(n) => n.std_dev(),
        }
    }
}

/// Distribution of the BLOD sample variance `v_j` (the χ² approximation
/// of the quadratic form, eqs. 29–30).
#[derive(Debug, Clone)]
pub enum VarianceDist {
    /// The block sits inside one grid (or has no correlated variation):
    /// `v_j` is constant.
    Deterministic(f64),
    /// `v_j = floor + G`, `G ~ Gamma(b̂/2, 2â)`.
    ShiftedGamma {
        /// The deterministic floor `v_{j,0} = λ_r²` (plus any systematic
        /// within-block spread).
        floor: f64,
        /// The fitted gamma component.
        gamma: Gamma,
    },
}

impl VarianceDist {
    /// Mean of `v_j`.
    pub fn mean(&self) -> f64 {
        match self {
            VarianceDist::Deterministic(v) => *v,
            VarianceDist::ShiftedGamma { floor, gamma } => floor + gamma.mean(),
        }
    }

    /// Variance of `v_j`.
    pub fn variance(&self) -> f64 {
        match self {
            VarianceDist::Deterministic(_) => 0.0,
            VarianceDist::ShiftedGamma { gamma, .. } => gamma.variance(),
        }
    }

    /// Quantile of `v_j`.
    ///
    /// # Errors
    ///
    /// Propagates quantile domain errors for `p ∉ [0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        match self {
            VarianceDist::Deterministic(v) => Ok(*v),
            VarianceDist::ShiftedGamma { floor, gamma } => Ok(floor + gamma.quantile(p)?),
        }
    }

    /// CDF of `v_j` at `v`.
    pub fn cdf(&self, v: f64) -> f64 {
        match self {
            VarianceDist::Deterministic(v0) => {
                if v >= *v0 {
                    1.0
                } else {
                    0.0
                }
            }
            VarianceDist::ShiftedGamma { floor, gamma } => gamma.cdf(v - floor),
        }
    }

    /// Moment-generating function `E[e^{s·v}]` (used by the closed-form
    /// engine).
    ///
    /// # Errors
    ///
    /// Returns a domain error when the gamma MGF diverges (`s·scale ≥ 1`).
    pub fn mgf(&self, s: f64) -> Result<f64> {
        match self {
            VarianceDist::Deterministic(v) => Ok((s * v).exp()),
            VarianceDist::ShiftedGamma { floor, gamma } => Ok((s * floor).exp() * gamma.mgf(s)?),
        }
    }
}

/// The characterized BLOD of one block.
#[derive(Debug, Clone)]
pub struct BlodMoments {
    /// Nominal sample mean `u_{j,0}`.
    u_nominal: f64,
    /// Principal-component sensitivities `u_{j,k}` (eq. 22).
    u_coeffs: Vec<f64>,
    /// `σ_u = ‖u_coeffs‖`.
    u_sigma: f64,
    /// `v_{j,0}`: the independent-variance floor (plus systematic spread).
    v_floor: f64,
    /// `tr(Q_j)`.
    q_trace: f64,
    /// `tr(Q_j²)`.
    q_trace_sq: f64,
    /// Low-rank projection vectors `a_r` with `zᵀQz = Σ_r (a_rᵀ z)²`.
    v_projections: Vec<Vec<f64>>,
    /// The fitted χ² scale `â` (0 when `Q = 0`).
    chi2_scale: f64,
    /// The fitted χ² degrees of freedom `b̂` (0 when `Q = 0`).
    chi2_dof: f64,
}

// Manual (de)serialization instead of `impl_json_struct`: the component
// arrays scale with the model size, so they use the packed bit-exact
// float encoding to keep persisted artifacts cheap to load.
impl statobd_num::json::ToJson for BlodMoments {
    fn to_json(&self) -> statobd_num::json::Json {
        use statobd_num::json::{pack_f64s, Json};
        Json::Object(vec![
            ("u_nominal".to_string(), self.u_nominal.to_json()),
            ("u_coeffs".to_string(), pack_f64s(&self.u_coeffs)),
            ("u_sigma".to_string(), self.u_sigma.to_json()),
            ("v_floor".to_string(), self.v_floor.to_json()),
            ("q_trace".to_string(), self.q_trace.to_json()),
            ("q_trace_sq".to_string(), self.q_trace_sq.to_json()),
            (
                "v_projections".to_string(),
                Json::Array(self.v_projections.iter().map(|p| pack_f64s(p)).collect()),
            ),
            ("chi2_scale".to_string(), self.chi2_scale.to_json()),
            ("chi2_dof".to_string(), self.chi2_dof.to_json()),
        ])
    }
}

impl statobd_num::json::FromJson for BlodMoments {
    fn from_json(v: &statobd_num::json::Json) -> statobd_num::json::Result<Self> {
        use statobd_num::json::{unpack_f64s, Json, JsonError};
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| JsonError::new(format!("missing field '{k}' in BlodMoments")))
        };
        let v_projections = match field("v_projections")? {
            Json::Array(rows) => rows
                .iter()
                .map(unpack_f64s)
                .collect::<statobd_num::json::Result<Vec<_>>>()?,
            other => {
                return Err(JsonError::new(format!(
                    "expected an array of packed projections, got {other}"
                )))
            }
        };
        Ok(BlodMoments {
            u_nominal: f64::from_json(field("u_nominal")?)?,
            u_coeffs: unpack_f64s(field("u_coeffs")?)?,
            u_sigma: f64::from_json(field("u_sigma")?)?,
            v_floor: f64::from_json(field("v_floor")?)?,
            q_trace: f64::from_json(field("q_trace")?)?,
            q_trace_sq: f64::from_json(field("q_trace_sq")?)?,
            v_projections,
            chi2_scale: f64::from_json(field("chi2_scale")?)?,
            chi2_dof: f64::from_json(field("chi2_dof")?)?,
        })
    }
}

impl BlodMoments {
    /// Characterizes the BLOD of `block` under `model` (eqs. 22/24/29/30).
    ///
    /// # Errors
    ///
    /// Propagates eigendecomposition failures from the Gram-matrix
    /// low-rank projection ([`crate::CoreError::Numerical`]).
    ///
    /// # Panics
    ///
    /// Panics if the block references grids outside the model (the
    /// [`crate::ChipAnalysis`] constructor validates this).
    pub fn characterize(model: &ThicknessModel, block: &BlockSpec) -> Result<Self> {
        let n_pc = model.n_components();
        let weights = block.grid_weights();

        // u coefficients (eq. 22): u_k = Σ_g w_g λ[g, k].
        let mut u_coeffs = vec![0.0; n_pc];
        let mut u_nominal = 0.0;
        for &(g, w) in weights {
            u_nominal += w * model.nominal()[g];
            let row = model.loadings().row(g);
            for (uk, l) in u_coeffs.iter_mut().zip(row) {
                *uk += w * l;
            }
        }
        let u_sigma = u_coeffs.iter().map(|c| c * c).sum::<f64>().sqrt();

        // Centered factor rows: F[r] = sqrt(w_g) (λ_g − u_coeffs), so that
        // Q = FᵀF. Also accumulate the systematic nominal spread into the
        // floor (approximation documented in DESIGN.md).
        let n_bg = weights.len();
        let mut f = DMatrix::zeros(n_bg, n_pc);
        let mut nominal_spread = 0.0;
        for (r, &(g, w)) in weights.iter().enumerate() {
            let sw = w.sqrt();
            let row = model.loadings().row(g);
            for k in 0..n_pc {
                f[(r, k)] = sw * (row[k] - u_coeffs[k]);
            }
            let dn = model.nominal()[g] - u_nominal;
            nominal_spread += w * dn * dn;
        }
        let v_floor = model.sigma_ind().powi(2) + nominal_spread;

        // Gram matrix G = F·Fᵀ (n_bg × n_bg): tr(Q) = tr(G),
        // tr(Q²) = Σ G_ik², and the eigenvectors of G give the low-rank
        // projection of Q.
        let gram = f.mul(&f.transpose())?;
        let q_trace = gram.trace();
        let q_trace_sq = gram.as_slice().iter().map(|x| x * x).sum::<f64>();

        // Yuan–Bentler fit (eqs. 29–30, repaired form):
        // â = tr(Q²)/tr(Q), b̂ = tr(Q)²/tr(Q²).
        let (chi2_scale, chi2_dof) = if q_trace > 1e-30 && q_trace_sq > 0.0 {
            (q_trace_sq / q_trace, q_trace * q_trace / q_trace_sq)
        } else {
            (0.0, 0.0)
        };

        // Low-rank projections a_r = Fᵀ·y_r (y_r eigenvectors of G), so
        // zᵀQz = Σ_r (a_rᵀz)². Retained until PROJECTION_ENERGY of tr(Q).
        let mut v_projections = Vec::new();
        if q_trace > 1e-30 {
            // The truncated solve computes only the retained components:
            // on large blocks the Gram decomposition drops from O(m³) to
            // O(k·m²).
            let eig =
                SymmetricEigen::with_options(&gram, &SpectralOptions::energy(PROJECTION_ENERGY))?;
            for (r, &mu) in eig.eigenvalues().iter().enumerate() {
                if mu <= 0.0 {
                    break;
                }
                let y: Vec<f64> = eig.eigenvectors().column(r);
                // a_r = Fᵀ y_r.
                let mut a = vec![0.0; n_pc];
                for (row_idx, &yv) in y.iter().enumerate() {
                    if yv == 0.0 {
                        continue;
                    }
                    let frow = f.row(row_idx);
                    for (ak, fv) in a.iter_mut().zip(frow) {
                        *ak += yv * fv;
                    }
                }
                v_projections.push(a);
            }
        }

        Ok(BlodMoments {
            u_nominal,
            u_coeffs,
            u_sigma,
            v_floor,
            q_trace,
            q_trace_sq,
            v_projections,
            chi2_scale,
            chi2_dof,
        })
    }

    /// Nominal sample mean `u_{j,0}`.
    pub fn u_nominal(&self) -> f64 {
        self.u_nominal
    }

    /// Principal-component sensitivities of the sample mean.
    pub fn u_coeffs(&self) -> &[f64] {
        &self.u_coeffs
    }

    /// Standard deviation of the sample mean.
    pub fn u_sigma(&self) -> f64 {
        self.u_sigma
    }

    /// The variance floor `v_{j,0}`.
    pub fn v_floor(&self) -> f64 {
        self.v_floor
    }

    /// `tr(Q_j)` — the mean of the quadratic-form part of `v_j`.
    pub fn q_trace(&self) -> f64 {
        self.q_trace
    }

    /// `tr(Q_j²)` — half the variance of the quadratic-form part.
    pub fn q_trace_sq(&self) -> f64 {
        self.q_trace_sq
    }

    /// Fitted χ² scale `â`.
    pub fn chi2_scale(&self) -> f64 {
        self.chi2_scale
    }

    /// Fitted χ² degrees of freedom `b̂`.
    pub fn chi2_dof(&self) -> f64 {
        self.chi2_dof
    }

    /// Number of retained low-rank projection vectors for `v(z)`.
    pub fn n_projections(&self) -> usize {
        self.v_projections.len()
    }

    /// The retained eigenvalues of the quadratic form `Q_j` (the squared
    /// norms of the projection vectors) — the input to the exact Imhof
    /// evaluation of the sample-variance distribution.
    pub fn q_eigenvalues(&self) -> Vec<f64> {
        self.v_projections
            .iter()
            .map(|a| a.iter().map(|x| x * x).sum())
            .collect()
    }

    /// Quantile of `v_j` computed by the *exact* Imhof inversion of the
    /// quadratic form instead of the χ² two-moment fit — the ablation the
    /// paper's reference to Imhof (its ref. 32) invites.
    ///
    /// # Errors
    ///
    /// Propagates quantile domain and Imhof convergence failures.
    pub fn v_quantile_imhof(&self, p: f64) -> Result<f64> {
        if self.q_trace <= 1e-30 {
            return Ok(self.v_floor + self.q_trace);
        }
        let eigen = self.q_eigenvalues();
        Ok(self.v_floor + statobd_num::quadform::imhof_quantile(&eigen, p)?)
    }

    /// Distribution of the sample mean `u_j`.
    pub fn u_dist(&self) -> MeanDist {
        if self.u_sigma > 0.0 {
            MeanDist::Gaussian(Normal::new(self.u_nominal, self.u_sigma).expect("validated sigma"))
        } else {
            MeanDist::Deterministic(self.u_nominal)
        }
    }

    /// Distribution of the sample variance `v_j` (χ² approximation).
    pub fn v_dist(&self) -> VarianceDist {
        if self.chi2_dof > 0.0 {
            VarianceDist::ShiftedGamma {
                floor: self.v_floor,
                gamma: Gamma::new(self.chi2_dof / 2.0, 2.0 * self.chi2_scale)
                    .expect("validated chi2 parameters"),
            }
        } else {
            VarianceDist::Deterministic(self.v_floor + self.q_trace)
        }
    }

    /// Exact `(u_j, v_j)` for a given principal-component draw `z`
    /// (used by the `st_MC` engine and by validation tests).
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` does not match the model's component count.
    pub fn uv_given_z(&self, z: &[f64]) -> (f64, f64) {
        assert_eq!(z.len(), self.u_coeffs.len(), "component count mismatch");
        let mut u = self.u_nominal;
        for (c, zk) in self.u_coeffs.iter().zip(z) {
            u += c * zk;
        }
        let mut v = self.v_floor;
        for a in &self.v_projections {
            let mut d = 0.0;
            for (ak, zk) in a.iter().zip(z) {
                d += ak * zk;
            }
            v += d * d;
        }
        (u, v)
    }

    /// Exact `(u_j, v_j)` for `W` principal-component draws at once,
    /// lane dimension across draws: `z_tile[k·W + w]` holds component `k`
    /// of draw `w` (SoA), and `u[w]`/`v[w]` receive draw `w`'s moments.
    ///
    /// Every lane accumulates in the same `k`-sequential order as
    /// [`BlodMoments::uv_given_z`], so lane `w` is **bit-identical** to
    /// the scalar evaluation of its draw at any `W` — the property that
    /// lets the fleet's chip tiles and the `st_MC` chunk fill adopt this
    /// without changing a single reported number.
    ///
    /// # Panics
    ///
    /// Panics if `z_tile.len()` is not `W` times the component count.
    pub fn uv_given_z_tile<const W: usize>(
        &self,
        z_tile: &[f64],
        u: &mut [f64; W],
        v: &mut [f64; W],
    ) {
        assert_eq!(
            z_tile.len(),
            self.u_coeffs.len() * W,
            "component tile size mismatch"
        );
        *u = [self.u_nominal; W];
        simd::lane_dot_acc::<W>(&self.u_coeffs, z_tile, u);
        *v = [self.v_floor; W];
        for a in &self.v_projections {
            simd::lane_dot_sq_acc::<W>(a, z_tile, v);
        }
    }
}

/// Computes the exact `(u_j, v_j)` of a block directly from a sampled
/// grid base field (`base[g]` = correlated thickness of grid `g`), as the
/// per-device Monte-Carlo reference does:
///
/// `u = Σ w_g·base_g`, `v = σ_ind² + Σ w_g·(base_g − u)²`.
pub fn uv_from_grid_base(
    grid_weights: &[(usize, f64)],
    base: &[f64],
    sigma_ind: f64,
) -> (f64, f64) {
    let mut u = 0.0;
    for &(g, w) in grid_weights {
        u += w * base[g];
    }
    let mut v = sigma_ind * sigma_ind;
    for &(g, w) in grid_weights {
        let d = base[g] - u;
        v += w * d * d;
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::BlockSpec;
    use statobd_num::rng::{NormalSampler, Xoshiro256pp};
    use statobd_num::stats::OnlineStats;
    use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

    fn model(n: usize) -> ThicknessModel {
        ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(n).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap()
    }

    fn block(grids: Vec<(usize, f64)>) -> BlockSpec {
        BlockSpec::new("b", 10_000.0, 10_000, 350.0, 1.2, grids).unwrap()
    }

    #[test]
    fn uv_tile_lanes_match_scalar_bitwise() {
        // Every lane of the SoA tile evaluation must reproduce the
        // scalar uv_given_z of its draw bit for bit, at both tile widths
        // and for tiles that exercise multiple v projections.
        let m = model(5);
        let mom =
            BlodMoments::characterize(&m, &block(vec![(0, 0.3), (7, 0.3), (20, 0.4)])).unwrap();
        let n_pc = m.n_components();
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let mut normal = NormalSampler::new();
        fn check<const W: usize>(
            mom: &BlodMoments,
            n_pc: usize,
            rng: &mut Xoshiro256pp,
            normal: &mut NormalSampler,
        ) {
            let mut tile = vec![0.0; n_pc * W];
            let mut draws = vec![vec![0.0; n_pc]; W];
            for (w, draw) in draws.iter_mut().enumerate() {
                normal.fill(rng, draw);
                for k in 0..n_pc {
                    tile[k * W + w] = draw[k];
                }
            }
            let (mut u, mut v) = ([0.0; W], [0.0; W]);
            mom.uv_given_z_tile::<W>(&tile, &mut u, &mut v);
            for (w, draw) in draws.iter().enumerate() {
                let (su, sv) = mom.uv_given_z(draw);
                assert_eq!(u[w].to_bits(), su.to_bits(), "u lane {w} of {W}");
                assert_eq!(v[w].to_bits(), sv.to_bits(), "v lane {w} of {W}");
            }
        }
        check::<4>(&mom, n_pc, &mut rng, &mut normal);
        check::<8>(&mom, n_pc, &mut rng, &mut normal);
    }

    #[test]
    fn single_grid_block_has_deterministic_variance() {
        let m = model(4);
        let mom = BlodMoments::characterize(&m, &block(vec![(5, 1.0)])).unwrap();
        assert_eq!(mom.q_trace(), 0.0);
        assert!(matches!(mom.v_dist(), VarianceDist::Deterministic(v)
            if (v - m.sigma_ind().powi(2)).abs() < 1e-18));
        // u sigma equals that grid's correlated sigma.
        assert!((mom.u_sigma() - m.grid_sigma(5)).abs() < 1e-12);
        assert!((mom.u_nominal() - 2.2).abs() < 1e-12);
    }

    #[test]
    fn multi_grid_block_gains_variance_spread() {
        let m = model(4);
        // Far-apart grids: within-block dispersion is large.
        let mom = BlodMoments::characterize(&m, &block(vec![(0, 0.5), (15, 0.5)])).unwrap();
        assert!(mom.q_trace() > 0.0);
        let v = mom.v_dist();
        assert!(v.mean() > m.sigma_ind().powi(2));
        // Mean of the χ² fit matches tr(Q) by construction.
        assert!((v.mean() - (mom.v_floor() + mom.q_trace())).abs() < 1e-15);
        // Variance matches 2·tr(Q²).
        assert!((v.variance() - 2.0 * mom.q_trace_sq()).abs() < 1e-18);
    }

    #[test]
    fn uv_given_z_matches_brute_force_quadratic_form() {
        let m = model(5);
        let b = block(vec![(0, 0.25), (1, 0.25), (7, 0.5)]);
        let mom = BlodMoments::characterize(&m, &b).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut ns = NormalSampler::new();
        for _ in 0..50 {
            let mut z = vec![0.0; m.n_components()];
            ns.fill(&mut rng, &mut z);
            let (u, v) = mom.uv_given_z(&z);
            // Brute force via the grid base field. The projection is
            // truncated at PROJECTION_ENERGY, so v matches to a relative
            // ~1e-6, u exactly.
            let base = m.grid_base(&z);
            let (u_ref, v_ref) = uv_from_grid_base(b.grid_weights(), &base, m.sigma_ind());
            assert!((u - u_ref).abs() < 1e-12, "u {u} vs {u_ref}");
            assert!((v - v_ref).abs() < 1e-3 * v_ref, "v {v} vs {v_ref}");
        }
    }

    #[test]
    fn monte_carlo_moments_match_analytic() {
        let m = model(5);
        let b = block(vec![(0, 0.3), (6, 0.4), (24, 0.3)]);
        let mom = BlodMoments::characterize(&m, &b).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let mut ns = NormalSampler::new();
        let mut u_stats = OnlineStats::new();
        let mut v_stats = OnlineStats::new();
        for _ in 0..40_000 {
            let mut z = vec![0.0; m.n_components()];
            ns.fill(&mut rng, &mut z);
            let (u, v) = mom.uv_given_z(&z);
            u_stats.push(u);
            v_stats.push(v);
        }
        // E[u] and SD[u].
        assert!((u_stats.mean() - mom.u_nominal()).abs() < 5e-4);
        assert!((u_stats.std_dev() - mom.u_sigma()).abs() < 0.02 * mom.u_sigma());
        // E[v] = floor + tr(Q); Var[v] = 2 tr(Q²).
        let v_mean_expected = mom.v_floor() + mom.q_trace();
        assert!(
            (v_stats.mean() - v_mean_expected).abs() < 0.02 * v_mean_expected,
            "v mean {} vs {}",
            v_stats.mean(),
            v_mean_expected
        );
        let v_var_expected = 2.0 * mom.q_trace_sq();
        assert!(
            (v_stats.sample_variance() - v_var_expected).abs() < 0.1 * v_var_expected,
            "v var {} vs {}",
            v_stats.sample_variance(),
            v_var_expected
        );
    }

    #[test]
    fn chi2_fit_matches_quadratic_form_cdf() {
        // The Fig. 8 validation in unit-test form: the χ² CDF should track
        // the empirical CDF of the quadratic form.
        let m = model(5);
        let b = block(vec![(0, 0.2), (3, 0.2), (12, 0.2), (20, 0.2), (24, 0.2)]);
        let mom = BlodMoments::characterize(&m, &b).unwrap();
        let vd = mom.v_dist();
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let mut ns = NormalSampler::new();
        let mut samples: Vec<f64> = (0..20_000)
            .map(|_| {
                let mut z = vec![0.0; m.n_components()];
                ns.fill(&mut rng, &mut z);
                mom.uv_given_z(&z).1
            })
            .collect();
        let ks = statobd_num::stats::ks_distance(&mut samples, |v| vd.cdf(v)).unwrap();
        assert!(ks < 0.05, "KS distance {ks} too large for the χ² fit");
    }

    #[test]
    fn mean_dist_variants() {
        let m = model(3);
        let mom = BlodMoments::characterize(&m, &block(vec![(0, 1.0)])).unwrap();
        match mom.u_dist() {
            MeanDist::Gaussian(n) => {
                assert!((n.mean() - 2.2).abs() < 1e-12);
            }
            MeanDist::Deterministic(_) => panic!("expected Gaussian u"),
        }
    }

    #[test]
    fn variance_dist_quantile_and_cdf_consistency() {
        let m = model(4);
        let mom = BlodMoments::characterize(&m, &block(vec![(0, 0.5), (15, 0.5)])).unwrap();
        let vd = mom.v_dist();
        for &p in &[0.01, 0.5, 0.99] {
            let q = vd.quantile(p).unwrap();
            assert!((vd.cdf(q) - p).abs() < 1e-8);
        }
        // Deterministic variant.
        let det = VarianceDist::Deterministic(0.5);
        assert_eq!(det.quantile(0.3).unwrap(), 0.5);
        assert_eq!(det.cdf(0.49), 0.0);
        assert_eq!(det.cdf(0.5), 1.0);
        assert_eq!(det.mgf(2.0).unwrap(), (1.0f64).exp());
    }

    #[test]
    fn uv_from_grid_base_weighted_mean() {
        let base = vec![2.0, 3.0, 4.0];
        let (u, v) = uv_from_grid_base(&[(0, 0.5), (2, 0.5)], &base, 0.1);
        assert!((u - 3.0).abs() < 1e-15);
        // v = 0.01 + 0.5·1 + 0.5·1 = 1.01
        assert!((v - 1.01).abs() < 1e-15);
    }
}
