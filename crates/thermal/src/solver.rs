//! Steady-state grid RC thermal solver (the HotSpot-grid-style substrate).
//!
//! The die is discretized into `nx × ny` thermal cells. Each cell exchanges
//! heat laterally with its 4-neighbours through the silicon substrate
//! (conductance `k_si · t_die` per unit aspect) and vertically to ambient
//! through an effective package resistance. The steady state solves
//!
//! ```text
//! (L + diag(G_v)) · T = P + G_v · T_amb
//! ```
//!
//! with `L` the weighted graph Laplacian of lateral conductances — an SPD
//! system handled by conjugate gradients. Leakage power depends on
//! temperature, so the solver iterates the leakage–temperature fixed point
//! to convergence.

use crate::floorplan::{Floorplan, Rect};
use crate::power::PowerModel;
use crate::{Result, ThermalError};
use statobd_num::cg::{solve_cg, CgOptions};
use statobd_num::impl_json_struct;
use statobd_num::sparse::CooMatrix;

/// Physical and numerical configuration of the thermal solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalConfig {
    /// Thermal grid resolution along x.
    pub nx: usize,
    /// Thermal grid resolution along y.
    pub ny: usize,
    /// Silicon thermal conductivity (W/(m·K)); ~100 near operating
    /// temperatures.
    pub k_silicon: f64,
    /// Die (substrate) thickness (m).
    pub die_thickness: f64,
    /// Heat-spreader thermal conductivity (W/(m·K)); copper ≈ 400. The
    /// spreader is lumped into the lateral sheet conductance, mirroring
    /// HotSpot's spreader layer.
    pub k_spreader: f64,
    /// Heat-spreader thickness (m).
    pub spreader_thickness: f64,
    /// Effective vertical junction-to-ambient specific resistance
    /// (K·m²/W): package, spreader and heatsink lumped per unit area.
    pub r_package: f64,
    /// Ambient temperature (K).
    pub ambient_k: f64,
    /// Leakage e-folding temperature (K) — leakage multiplies by `e` every
    /// `theta` kelvin.
    pub leakage_theta_k: f64,
    /// Maximum leakage fixed-point iterations.
    pub max_leakage_iters: usize,
    /// Convergence tolerance on the temperature update (K).
    pub leakage_tol_k: f64,
    /// Volumetric heat capacity of silicon (J/(m³·K)) — used only by the
    /// transient solver.
    pub c_volumetric: f64,
}

impl_json_struct!(ThermalConfig {
    nx,
    ny,
    k_silicon,
    die_thickness,
    k_spreader,
    spreader_thickness,
    r_package,
    ambient_k,
    leakage_theta_k,
    max_leakage_iters,
    leakage_tol_k,
    c_volumetric,
});

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig {
            nx: 64,
            ny: 64,
            k_silicon: 100.0,
            die_thickness: 0.5e-3,
            k_spreader: 400.0,
            spreader_thickness: 0.5e-3,
            r_package: 1.3e-4,
            ambient_k: 318.15, // 45 °C case/ambient, HotSpot-style
            leakage_theta_k: 30.0,
            max_leakage_iters: 25,
            leakage_tol_k: 1e-3,
            c_volumetric: 1.63e6,
        }
    }
}

impl ThermalConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] on non-physical values.
    pub fn validate(&self) -> Result<()> {
        if self.nx == 0 || self.ny == 0 {
            return Err(ThermalError::InvalidParameter {
                detail: "thermal grid must be non-empty".to_string(),
            });
        }
        for (name, v) in [
            ("k_silicon", self.k_silicon),
            ("die_thickness", self.die_thickness),
            ("k_spreader", self.k_spreader),
            ("spreader_thickness", self.spreader_thickness),
            ("r_package", self.r_package),
            ("ambient_k", self.ambient_k),
            ("leakage_theta_k", self.leakage_theta_k),
            ("c_volumetric", self.c_volumetric),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(ThermalError::InvalidParameter {
                    detail: format!("{name} must be positive, got {v}"),
                });
            }
        }
        Ok(())
    }
}

/// Per-block temperature summary extracted from a [`TemperatureMap`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockTempStats {
    /// Area-weighted mean temperature (K).
    pub mean_k: f64,
    /// Maximum cell temperature (K) — the paper's "block-level worst-case
    /// operating temperature".
    pub max_k: f64,
    /// Minimum cell temperature (K).
    pub min_k: f64,
}

/// A solved steady-state temperature field.
#[derive(Debug, Clone)]
pub struct TemperatureMap {
    nx: usize,
    ny: usize,
    die_w: f64,
    die_h: f64,
    /// Cell temperatures (K), row-major: index `iy * nx + ix`.
    temps: Vec<f64>,
    /// Leakage iterations the solve took.
    leakage_iterations: usize,
}

impl TemperatureMap {
    /// Assembles a map from raw parts (used by the transient solver).
    ///
    /// # Panics
    ///
    /// Panics if `temps.len() != nx * ny`.
    pub(crate) fn from_parts(
        nx: usize,
        ny: usize,
        die_w: f64,
        die_h: f64,
        temps: Vec<f64>,
    ) -> Self {
        assert_eq!(temps.len(), nx * ny, "temperature vector length mismatch");
        TemperatureMap {
            nx,
            ny,
            die_w,
            die_h,
            temps,
            leakage_iterations: 0,
        }
    }

    /// Grid resolution `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// All cell temperatures (K), row-major.
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Leakage fixed-point iterations performed.
    pub fn leakage_iterations(&self) -> usize {
        self.leakage_iterations
    }

    /// Temperature (K) of cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn cell(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.nx && iy < self.ny, "cell index out of range");
        self.temps[iy * self.nx + ix]
    }

    /// Temperature (K) at die coordinates `(x, y)` (nearest cell).
    pub fn at(&self, x: f64, y: f64) -> f64 {
        let ix = ((x / self.die_w * self.nx as f64).floor().max(0.0) as usize).min(self.nx - 1);
        let iy = ((y / self.die_h * self.ny as f64).floor().max(0.0) as usize).min(self.ny - 1);
        self.cell(ix, iy)
    }

    /// Hottest cell temperature (K).
    pub fn max_k(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coolest cell temperature (K).
    pub fn min_k(&self) -> f64 {
        self.temps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean cell temperature (K).
    pub fn mean_k(&self) -> f64 {
        self.temps.iter().sum::<f64>() / self.temps.len() as f64
    }

    /// Temperature statistics over the cells covered by `rect`.
    ///
    /// Cells are attributed by center point; a rectangle smaller than one
    /// cell still picks up its containing cell.
    pub fn block_stats(&self, rect: &Rect) -> BlockTempStats {
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        let cw = self.die_w / self.nx as f64;
        let ch = self.die_h / self.ny as f64;
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let cx = (ix as f64 + 0.5) * cw;
                let cy = (iy as f64 + 0.5) * ch;
                if rect.contains(cx, cy) {
                    let t = self.temps[iy * self.nx + ix];
                    sum += t;
                    count += 1;
                    max = max.max(t);
                    min = min.min(t);
                }
            }
        }
        if count == 0 {
            // Degenerate rect: sample its center.
            let (cx, cy) = rect.center();
            let t = self.at(cx, cy);
            return BlockTempStats {
                mean_k: t,
                max_k: t,
                min_k: t,
            };
        }
        BlockTempStats {
            mean_k: sum / count as f64,
            max_k: max,
            min_k: min,
        }
    }

    /// Renders the map as an ASCII heat chart (one character per cell,
    /// coarsened to at most `max_cols` columns), hottest = '@'.
    pub fn ascii_render(&self, max_cols: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max_cols = max_cols.max(1);
        let step = self.nx.div_ceil(max_cols);
        let lo = self.min_k();
        let hi = self.max_k();
        let span = (hi - lo).max(1e-9);
        let mut out = String::new();
        for iy in (0..self.ny).step_by(step).rev() {
            for ix in (0..self.nx).step_by(step) {
                let t = self.cell(ix, iy);
                let level = (((t - lo) / span) * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[level.min(RAMP.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// Steady-state thermal solver.
#[derive(Debug, Clone)]
pub struct ThermalSolver {
    config: ThermalConfig,
}

impl ThermalSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: ThermalConfig) -> Self {
        ThermalSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Solves the steady-state temperature field for a floorplan and power
    /// model, iterating the leakage–temperature fixed point.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidParameter`] for an invalid configuration,
    /// * [`ThermalError::SolveFailed`] if the fixed point diverges
    ///   (thermal runaway) or CG fails.
    pub fn solve(&self, floorplan: &Floorplan, power: &PowerModel) -> Result<TemperatureMap> {
        self.config.validate()?;
        let cfg = &self.config;
        let (nx, ny) = (cfg.nx, cfg.ny);
        let n = nx * ny;
        let cw = floorplan.die_w() / nx as f64;
        let ch = floorplan.die_h() / ny as f64;
        let cell_area = cw * ch;

        // Lateral conductance between adjacent cells: the silicon substrate
        // and the heat spreader act as parallel conduction sheets, so the
        // sheet conductance is k_si·t_die + k_sp·t_sp, times the aspect of
        // the shared face over the center distance.
        let sheet = cfg.k_silicon * cfg.die_thickness + cfg.k_spreader * cfg.spreader_thickness;
        let g_x = sheet * ch / cw;
        let g_y = sheet * cw / ch;
        let g_v = cell_area / cfg.r_package;

        // Assemble (L + diag(G_v)) once.
        let mut coo = CooMatrix::new(n, n);
        for iy in 0..ny {
            for ix in 0..nx {
                let i = iy * nx + ix;
                let mut diag = g_v;
                if ix + 1 < nx {
                    let j = iy * nx + ix + 1;
                    coo.push(i, j, -g_x);
                    coo.push(j, i, -g_x);
                    diag += g_x;
                }
                if ix > 0 {
                    diag += g_x;
                }
                if iy + 1 < ny {
                    let j = (iy + 1) * nx + ix;
                    coo.push(i, j, -g_y);
                    coo.push(j, i, -g_y);
                    diag += g_y;
                }
                if iy > 0 {
                    diag += g_y;
                }
                coo.push(i, i, diag);
            }
        }
        let a = coo.to_csr();

        // Distribute each block's power uniformly over its area; build the
        // per-cell dynamic and reference-leakage density maps.
        let mut dyn_cell = vec![0.0; n];
        let mut leak_cell_ref = vec![0.0; n];
        for block in floorplan.blocks() {
            let Some(bp) = power.block_power(block.name()) else {
                continue;
            };
            let r = block.rect();
            let dyn_density = bp.dynamic_w() / r.area();
            let leak_density = bp.leakage_ref_w() / r.area();
            // Apportion by cell-block overlap area.
            let ix0 = ((r.x() / cw).floor().max(0.0) as usize).min(nx - 1);
            let ix1 = (((r.x1() / cw).ceil().max(1.0) as usize) - 1).min(nx - 1);
            let iy0 = ((r.y() / ch).floor().max(0.0) as usize).min(ny - 1);
            let iy1 = (((r.y1() / ch).ceil().max(1.0) as usize) - 1).min(ny - 1);
            for iy in iy0..=iy1 {
                for ix in ix0..=ix1 {
                    let cx0 = ix as f64 * cw;
                    let cy0 = iy as f64 * ch;
                    let ox = (r.x1().min(cx0 + cw) - r.x().max(cx0)).max(0.0);
                    let oy = (r.y1().min(cy0 + ch) - r.y().max(cy0)).max(0.0);
                    let overlap = ox * oy;
                    if overlap > 0.0 {
                        dyn_cell[iy * nx + ix] += dyn_density * overlap;
                        leak_cell_ref[iy * nx + ix] += leak_density * overlap;
                    }
                }
            }
        }

        // Leakage–temperature fixed point.
        let mut temps = vec![cfg.ambient_k; n];
        let cg_opts = CgOptions {
            rel_tol: 1e-9,
            max_iter: 50_000,
            jacobi_precondition: true,
        };
        let threads = statobd_num::parallel::resolve_threads(None);
        let mut iterations = 0;
        for iter in 0..cfg.max_leakage_iters {
            iterations = iter + 1;
            // Temperature-dependent leakage makes the per-cell source
            // assembly the sweep's hot loop (an exp per cell per
            // iteration); fan it out over fixed-size chunks so the field
            // is identical at any thread count.
            let mut rhs = vec![0.0; n];
            {
                let temps = &temps;
                let dyn_cell = &dyn_cell;
                let leak_cell_ref = &leak_cell_ref;
                statobd_num::parallel::for_each_chunk_mut(&mut rhs, 1024, threads, |ci, chunk| {
                    let base = ci * 1024;
                    for (k, r) in chunk.iter_mut().enumerate() {
                        let i = base + k;
                        let leak = leak_cell_ref[i]
                            * ((temps[i] - crate::power::LEAKAGE_REF_K) / cfg.leakage_theta_k)
                                .exp();
                        *r = dyn_cell[i] + leak + g_v * cfg.ambient_k;
                    }
                });
            }
            let sol = solve_cg(&a, &rhs, &cg_opts).map_err(|e| ThermalError::SolveFailed {
                detail: format!("CG failed: {e}"),
            })?;
            let max_delta = sol
                .x
                .iter()
                .zip(&temps)
                .map(|(new, old)| (new - old).abs())
                .fold(0.0f64, f64::max);
            temps = sol.x;
            let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if !hottest.is_finite() || hottest > cfg.ambient_k + 500.0 {
                return Err(ThermalError::SolveFailed {
                    detail: format!("thermal runaway: hottest cell {hottest:.1} K"),
                });
            }
            if max_delta < cfg.leakage_tol_k {
                break;
            }
        }

        Ok(TemperatureMap {
            nx,
            ny,
            die_w: floorplan.die_w(),
            die_h: floorplan.die_h(),
            temps,
            leakage_iterations: iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Block, Floorplan, Rect};
    use crate::power::{BlockPower, PowerModel};

    fn one_block_chip(power_w: f64) -> (Floorplan, PowerModel) {
        let mut fp = Floorplan::new(0.016, 0.016).unwrap();
        fp.add_block(Block::new("all", Rect::new(0.0, 0.0, 0.016, 0.016).unwrap()).unwrap())
            .unwrap();
        let mut pm = PowerModel::new();
        pm.set_block_power("all", BlockPower::new(power_w, 0.0).unwrap())
            .unwrap();
        (fp, pm)
    }

    #[test]
    fn zero_power_gives_ambient() {
        let (fp, pm) = one_block_chip(0.0);
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        for &t in map.temps() {
            assert!((t - 318.15).abs() < 1e-6, "temp {t}");
        }
    }

    #[test]
    fn uniform_power_matches_analytic_rise() {
        // Uniform power density: no lateral flow; ΔT = P·r_package/A.
        let p = 50.0;
        let (fp, pm) = one_block_chip(p);
        let cfg = ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        };
        let solver = ThermalSolver::new(cfg);
        let map = solver.solve(&fp, &pm).unwrap();
        let expected = cfg.ambient_k + p * cfg.r_package / (0.016 * 0.016);
        for &t in map.temps() {
            assert!((t - expected).abs() < 1e-3, "temp {t} vs {expected}");
        }
    }

    #[test]
    fn hotspot_structure_matches_figure_one() {
        // A small hot block on an otherwise idle die: the hot spot should
        // sit tens of kelvin above the far corner, echoing Fig. 1.
        let mut fp = Floorplan::new(0.016, 0.016).unwrap();
        fp.add_block(Block::new("hot", Rect::new(0.001, 0.001, 0.003, 0.003).unwrap()).unwrap())
            .unwrap();
        fp.add_block(Block::new("idle", Rect::new(0.008, 0.008, 0.008, 0.008).unwrap()).unwrap())
            .unwrap();
        let mut pm = PowerModel::new();
        pm.set_block_power("hot", BlockPower::new(18.0, 1.0).unwrap())
            .unwrap();
        pm.set_block_power("idle", BlockPower::new(1.0, 0.5).unwrap())
            .unwrap();
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 32,
            ny: 32,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        let hot = map.block_stats(fp.block("hot").unwrap().rect());
        let idle = map.block_stats(fp.block("idle").unwrap().rect());
        let delta = hot.max_k - idle.min_k;
        assert!(
            (10.0..80.0).contains(&delta),
            "hot-to-idle spread {delta:.1} K out of the expected range"
        );
        // Hot spot is local: the die max is inside the hot block.
        assert!((map.max_k() - hot.max_k).abs() < 1e-9);
    }

    #[test]
    fn leakage_feedback_raises_temperature() {
        let mut fp = Floorplan::new(0.016, 0.016).unwrap();
        fp.add_block(Block::new("b", Rect::new(0.0, 0.0, 0.016, 0.016).unwrap()).unwrap())
            .unwrap();
        let mut no_leak = PowerModel::new();
        no_leak
            .set_block_power("b", BlockPower::new(40.0, 0.0).unwrap())
            .unwrap();
        let mut with_leak = PowerModel::new();
        with_leak
            .set_block_power("b", BlockPower::new(40.0, 8.0).unwrap())
            .unwrap();
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 8,
            ny: 8,
            ..ThermalConfig::default()
        });
        let cold = solver.solve(&fp, &no_leak).unwrap();
        let warm = solver.solve(&fp, &with_leak).unwrap();
        assert!(warm.max_k() > cold.max_k());
        assert!(warm.leakage_iterations() >= 2);
    }

    #[test]
    fn block_stats_and_point_queries_agree() {
        let (fp, pm) = one_block_chip(30.0);
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        let stats = map.block_stats(fp.block("all").unwrap().rect());
        assert!(stats.min_k <= stats.mean_k && stats.mean_k <= stats.max_k);
        let t = map.at(0.008, 0.008);
        assert!(t >= stats.min_k && t <= stats.max_k);
    }

    #[test]
    fn tiny_block_stats_fall_back_to_center_sample() {
        let (fp, pm) = one_block_chip(30.0);
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 4,
            ny: 4,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        // A rect much smaller than a cell, positioned between cell centers.
        let tiny = Rect::new(0.0039, 0.0039, 0.0002, 0.0002).unwrap();
        let stats = map.block_stats(&tiny);
        assert_eq!(stats.min_k, stats.max_k);
    }

    #[test]
    fn ascii_render_has_expected_shape() {
        let (fp, pm) = one_block_chip(30.0);
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        let art = map.ascii_render(8);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.len() == 8));
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = ThermalConfig {
            nx: 0,
            ..ThermalConfig::default()
        };
        let (fp, pm) = one_block_chip(1.0);
        assert!(ThermalSolver::new(cfg).solve(&fp, &pm).is_err());
        let cfg = ThermalConfig {
            k_silicon: -1.0,
            ..ThermalConfig::default()
        };
        assert!(ThermalSolver::new(cfg).solve(&fp, &pm).is_err());
    }

    #[test]
    fn unpowered_blocks_are_cool() {
        let mut fp = Floorplan::new(0.01, 0.01).unwrap();
        fp.add_block(Block::new("hot", Rect::new(0.0, 0.0, 0.002, 0.002).unwrap()).unwrap())
            .unwrap();
        fp.add_block(Block::new("cold", Rect::new(0.007, 0.007, 0.003, 0.003).unwrap()).unwrap())
            .unwrap();
        let mut pm = PowerModel::new();
        pm.set_block_power("hot", BlockPower::new(8.0, 0.0).unwrap())
            .unwrap();
        // "cold" gets no assignment at all.
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 20,
            ny: 20,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        let hot = map.block_stats(fp.block("hot").unwrap().rect());
        let cold = map.block_stats(fp.block("cold").unwrap().rect());
        assert!(hot.mean_k > cold.mean_k + 5.0);
    }
}
