//! Steady-state grid RC thermal solver (the HotSpot-grid-style substrate).
//!
//! The die is discretized into `nx × ny` thermal cells. Each cell exchanges
//! heat laterally with its 4-neighbours through the silicon substrate
//! (conductance `k_si · t_die` per unit aspect) and vertically to ambient
//! through an effective package resistance. The steady state solves
//!
//! ```text
//! (L + diag(G_v)) · T = P + G_v · T_amb
//! ```
//!
//! with `L` the weighted graph Laplacian of lateral conductances — an SPD
//! system handled by preconditioned conjugate gradients. Leakage power
//! depends on temperature, so the solver iterates the leakage–temperature
//! fixed point to convergence, warm-starting each linear solve from the
//! previous temperature field.
//!
//! The linear-solver backend is tiered ([`ThermalSolverKind`]), mirroring
//! the spectral pipeline's `SpectralOptions` dispatch: plain CG and
//! Jacobi-PCG for reference, zero-fill incomplete Cholesky (`IC(0)`) PCG
//! for small/medium grids, and multigrid-preconditioned CG (MGCG) — whose
//! iteration count does not grow with resolution — for large ones.
//! [`ThermalSolverKind::Auto`] picks by grid size.

use crate::floorplan::{Floorplan, Rect};
use crate::power::PowerModel;
use crate::{Result, ThermalError};
use statobd_num::cg::{
    solve_pcg, CgOptions, IdentityPreconditioner, JacobiPreconditioner, Preconditioner,
};
use statobd_num::impl_json_struct;
use statobd_num::json::{FromJson, Json, JsonError, ToJson};
use statobd_num::multigrid::{Multigrid, MultigridOptions};
use statobd_num::precond::Ic0;
use statobd_num::sparse::{CooMatrix, CsrMatrix};

/// Which linear-solver variant backs the thermal solve.
///
/// All variants produce the same temperature field to solver tolerance;
/// they differ only in cost. `Auto` dispatches by grid size the way the
/// spectral pipeline's `SpectralOptions` dispatches eigensolvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThermalSolverKind {
    /// Choose by grid size: MGCG from
    /// [`ThermalSolverKind::MGCG_MIN_CELLS`] cells upward, `IC(0)`-PCG
    /// below.
    Auto,
    /// Unpreconditioned conjugate gradients (reference/baseline).
    PlainCg,
    /// Jacobi (diagonal) preconditioned CG — the historical default.
    JacobiPcg,
    /// Zero-fill incomplete-Cholesky preconditioned CG.
    Ic0Pcg,
    /// Geometric-multigrid V-cycle preconditioned CG.
    Mgcg,
}

impl ThermalSolverKind {
    /// Grid size (cells) from which `Auto` dispatches to MGCG: below this
    /// the `IC(0)` factorization's cheap setup wins, above it the
    /// resolution-independent multigrid iteration count does (measured
    /// crossover on the alpha profile, see `BENCH_thermal.json`).
    pub const MGCG_MIN_CELLS: usize = 64 * 64;

    /// Stable lower-case name for logs, stats and benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            ThermalSolverKind::Auto => "auto",
            ThermalSolverKind::PlainCg => "plain_cg",
            ThermalSolverKind::JacobiPcg => "jacobi_pcg",
            ThermalSolverKind::Ic0Pcg => "ic0_pcg",
            ThermalSolverKind::Mgcg => "mgcg",
        }
    }

    /// Parses a solver name (accepting a few aliases).
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(ThermalSolverKind::Auto),
            "plain_cg" | "plain" | "cg" => Some(ThermalSolverKind::PlainCg),
            "jacobi_pcg" | "jacobi" => Some(ThermalSolverKind::JacobiPcg),
            "ic0_pcg" | "ic0" => Some(ThermalSolverKind::Ic0Pcg),
            "mgcg" | "multigrid" => Some(ThermalSolverKind::Mgcg),
            _ => None,
        }
    }

    /// Resolves `Auto` for a grid of `n_cells`; concrete kinds map to
    /// themselves.
    pub fn resolve(self, n_cells: usize) -> Self {
        match self {
            ThermalSolverKind::Auto => {
                if n_cells >= Self::MGCG_MIN_CELLS {
                    ThermalSolverKind::Mgcg
                } else {
                    ThermalSolverKind::Ic0Pcg
                }
            }
            kind => kind,
        }
    }
}

impl ToJson for ThermalSolverKind {
    fn to_json(&self) -> Json {
        Json::String(self.name().to_string())
    }
}

impl FromJson for ThermalSolverKind {
    fn from_json(v: &Json) -> statobd_num::json::Result<Self> {
        let name = v
            .as_str()
            .ok_or_else(|| JsonError::new(format!("expected a solver name string, got {v}")))?;
        ThermalSolverKind::parse(name)
            .ok_or_else(|| JsonError::new(format!("unknown thermal solver {name:?}")))
    }

    fn from_missing() -> Option<Self> {
        Some(ThermalSolverKind::Auto)
    }
}

/// Physical and numerical configuration of the thermal solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalConfig {
    /// Thermal grid resolution along x.
    pub nx: usize,
    /// Thermal grid resolution along y.
    pub ny: usize,
    /// Silicon thermal conductivity (W/(m·K)); ~100 near operating
    /// temperatures.
    pub k_silicon: f64,
    /// Die (substrate) thickness (m).
    pub die_thickness: f64,
    /// Heat-spreader thermal conductivity (W/(m·K)); copper ≈ 400. The
    /// spreader is lumped into the lateral sheet conductance, mirroring
    /// HotSpot's spreader layer.
    pub k_spreader: f64,
    /// Heat-spreader thickness (m).
    pub spreader_thickness: f64,
    /// Effective vertical junction-to-ambient specific resistance
    /// (K·m²/W): package, spreader and heatsink lumped per unit area.
    pub r_package: f64,
    /// Ambient temperature (K).
    pub ambient_k: f64,
    /// Leakage e-folding temperature (K) — leakage multiplies by `e` every
    /// `theta` kelvin.
    pub leakage_theta_k: f64,
    /// Maximum leakage fixed-point iterations.
    pub max_leakage_iters: usize,
    /// Convergence tolerance on the temperature update (K).
    pub leakage_tol_k: f64,
    /// Volumetric heat capacity of silicon (J/(m³·K)) — used only by the
    /// transient solver.
    pub c_volumetric: f64,
    /// Linear-solver variant ([`ThermalSolverKind::Auto`] dispatches by
    /// grid size).
    pub solver: ThermalSolverKind,
    /// Relative residual tolerance of each CG solve.
    pub cg_rel_tol: f64,
    /// Iteration cap of each CG solve.
    pub cg_max_iter: usize,
    /// Warm-start each leakage iteration (and transient step) from the
    /// previous temperature field instead of from zero.
    pub warm_start: bool,
}

impl_json_struct!(ThermalConfig {
    nx,
    ny,
    k_silicon,
    die_thickness,
    k_spreader,
    spreader_thickness,
    r_package,
    ambient_k,
    leakage_theta_k,
    max_leakage_iters,
    leakage_tol_k,
    c_volumetric,
    solver,
    cg_rel_tol,
    cg_max_iter,
    warm_start,
});

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig {
            nx: 64,
            ny: 64,
            k_silicon: 100.0,
            die_thickness: 0.5e-3,
            k_spreader: 400.0,
            spreader_thickness: 0.5e-3,
            r_package: 1.3e-4,
            ambient_k: 318.15, // 45 °C case/ambient, HotSpot-style
            leakage_theta_k: 30.0,
            max_leakage_iters: 25,
            leakage_tol_k: 1e-3,
            c_volumetric: 1.63e6,
            solver: ThermalSolverKind::Auto,
            cg_rel_tol: 1e-9,
            cg_max_iter: 50_000,
            warm_start: true,
        }
    }
}

impl ThermalConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] on non-physical values.
    pub fn validate(&self) -> Result<()> {
        if self.nx == 0 || self.ny == 0 {
            return Err(ThermalError::InvalidParameter {
                detail: "thermal grid must be non-empty".to_string(),
            });
        }
        for (name, v) in [
            ("k_silicon", self.k_silicon),
            ("die_thickness", self.die_thickness),
            ("k_spreader", self.k_spreader),
            ("spreader_thickness", self.spreader_thickness),
            ("r_package", self.r_package),
            ("ambient_k", self.ambient_k),
            ("leakage_theta_k", self.leakage_theta_k),
            ("c_volumetric", self.c_volumetric),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(ThermalError::InvalidParameter {
                    detail: format!("{name} must be positive, got {v}"),
                });
            }
        }
        if !(self.cg_rel_tol > 0.0) || self.cg_rel_tol >= 1.0 {
            return Err(ThermalError::InvalidParameter {
                detail: format!("cg_rel_tol must be in (0, 1), got {}", self.cg_rel_tol),
            });
        }
        if self.cg_max_iter == 0 {
            return Err(ThermalError::InvalidParameter {
                detail: "cg_max_iter must be at least 1".to_string(),
            });
        }
        Ok(())
    }

    /// The CG options every linear solve in this configuration uses.
    pub(crate) fn cg_options(&self) -> CgOptions {
        CgOptions {
            rel_tol: self.cg_rel_tol,
            max_iter: self.cg_max_iter,
            jacobi_precondition: false,
        }
    }
}

/// The assembled grid operator shared by the steady-state and transient
/// paths: the conductance matrix `L + diag(G_v)` plus the per-cell
/// constants it was built from.
#[derive(Debug, Clone)]
pub(crate) struct GridOperator {
    /// Vertical cell-to-ambient conductance (W/K).
    pub(crate) g_v: f64,
    /// Heat capacity of one cell (J/K) — the transient stepper's `C`.
    pub(crate) c_cell: f64,
    /// `L + diag(G_v)`, SPD.
    pub(crate) matrix: CsrMatrix,
}

/// Assembles the conductance operator for `cfg` on a `die_w × die_h` die.
///
/// This is the single source of truth for the grid RC constants — the
/// steady-state solve and the transient stepper both build on it, so the
/// two paths can never drift apart.
pub(crate) fn assemble_conductance(cfg: &ThermalConfig, die_w: f64, die_h: f64) -> GridOperator {
    let (nx, ny) = (cfg.nx, cfg.ny);
    let n = nx * ny;
    let cw = die_w / nx as f64;
    let ch = die_h / ny as f64;
    let cell_area = cw * ch;

    // Lateral conductance between adjacent cells: the silicon substrate
    // and the heat spreader act as parallel conduction sheets, so the
    // sheet conductance is k_si·t_die + k_sp·t_sp, times the aspect of
    // the shared face over the center distance.
    let sheet = cfg.k_silicon * cfg.die_thickness + cfg.k_spreader * cfg.spreader_thickness;
    let g_x = sheet * ch / cw;
    let g_y = sheet * cw / ch;
    let g_v = cell_area / cfg.r_package;
    let c_cell = cfg.c_volumetric * cell_area * cfg.die_thickness;

    let mut coo = CooMatrix::new(n, n);
    for iy in 0..ny {
        for ix in 0..nx {
            let i = iy * nx + ix;
            let mut diag = g_v;
            if ix + 1 < nx {
                let j = iy * nx + ix + 1;
                coo.push(i, j, -g_x);
                coo.push(j, i, -g_x);
                diag += g_x;
            }
            if ix > 0 {
                diag += g_x;
            }
            if iy + 1 < ny {
                let j = (iy + 1) * nx + ix;
                coo.push(i, j, -g_y);
                coo.push(j, i, -g_y);
                diag += g_y;
            }
            if iy > 0 {
                diag += g_y;
            }
            coo.push(i, i, diag);
        }
    }
    GridOperator {
        g_v,
        c_cell,
        matrix: coo.to_csr(),
    }
}

/// Rasterizes block powers onto the thermal grid: per-cell dynamic power
/// and reference leakage, apportioned by cell–block overlap area. Shared
/// by the steady-state and transient paths.
pub(crate) fn rasterize_power(
    floorplan: &Floorplan,
    power: &PowerModel,
    nx: usize,
    ny: usize,
) -> (Vec<f64>, Vec<f64>) {
    let cw = floorplan.die_w() / nx as f64;
    let ch = floorplan.die_h() / ny as f64;
    let n = nx * ny;
    let mut dyn_cell = vec![0.0; n];
    let mut leak_cell_ref = vec![0.0; n];
    for block in floorplan.blocks() {
        let Some(bp) = power.block_power(block.name()) else {
            continue;
        };
        let r = block.rect();
        let dyn_density = bp.dynamic_w() / r.area();
        let leak_density = bp.leakage_ref_w() / r.area();
        let ix0 = ((r.x() / cw).floor().max(0.0) as usize).min(nx - 1);
        let ix1 = (((r.x1() / cw).ceil().max(1.0) as usize) - 1).min(nx - 1);
        let iy0 = ((r.y() / ch).floor().max(0.0) as usize).min(ny - 1);
        let iy1 = (((r.y1() / ch).ceil().max(1.0) as usize) - 1).min(ny - 1);
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let cx0 = ix as f64 * cw;
                let cy0 = iy as f64 * ch;
                let ox = (r.x1().min(cx0 + cw) - r.x().max(cx0)).max(0.0);
                let oy = (r.y1().min(cy0 + ch) - r.y().max(cy0)).max(0.0);
                let overlap = ox * oy;
                if overlap > 0.0 {
                    dyn_cell[iy * nx + ix] += dyn_density * overlap;
                    leak_cell_ref[iy * nx + ix] += leak_density * overlap;
                }
            }
        }
    }
    (dyn_cell, leak_cell_ref)
}

/// A built preconditioner, dispatched from a resolved
/// [`ThermalSolverKind`] and reused across every solve on the same
/// operator (all leakage iterations, all transient steps).
#[derive(Debug)]
pub(crate) enum BuiltPreconditioner {
    /// No preconditioning (plain CG).
    Identity(IdentityPreconditioner),
    /// Diagonal scaling.
    Jacobi(JacobiPreconditioner),
    /// Zero-fill incomplete Cholesky.
    Ic0(Ic0),
    /// Geometric-multigrid V-cycle (MGCG).
    Multigrid(Box<Multigrid>),
}

impl BuiltPreconditioner {
    /// Builds the preconditioner `kind` (must be resolved, not `Auto`)
    /// for the operator `a` on an `nx × ny` grid.
    pub(crate) fn build(
        kind: ThermalSolverKind,
        a: &CsrMatrix,
        nx: usize,
        ny: usize,
    ) -> Result<Self> {
        let fail = |e: statobd_num::NumError| ThermalError::SolveFailed {
            detail: format!("building {} preconditioner: {e}", kind.name()),
        };
        Ok(match kind.resolve(nx * ny) {
            ThermalSolverKind::Auto => unreachable!("resolve never returns Auto"),
            ThermalSolverKind::PlainCg => BuiltPreconditioner::Identity(IdentityPreconditioner),
            ThermalSolverKind::JacobiPcg => {
                BuiltPreconditioner::Jacobi(JacobiPreconditioner::new(a).map_err(fail)?)
            }
            ThermalSolverKind::Ic0Pcg => BuiltPreconditioner::Ic0(Ic0::new(a).map_err(fail)?),
            ThermalSolverKind::Mgcg => BuiltPreconditioner::Multigrid(Box::new(
                Multigrid::new(a, nx, ny, &MultigridOptions::default()).map_err(fail)?,
            )),
        })
    }

    /// The trait object the CG solver consumes.
    pub(crate) fn as_dyn(&self) -> &dyn Preconditioner {
        match self {
            BuiltPreconditioner::Identity(m) => m,
            BuiltPreconditioner::Jacobi(m) => m,
            BuiltPreconditioner::Ic0(m) => m,
            BuiltPreconditioner::Multigrid(m) => m.as_ref(),
        }
    }
}

/// Wall-time and convergence breakdown of a steady-state solve, carried on
/// the [`TemperatureMap`] so `--timings` and the benchmarks can report the
/// real cost.
#[derive(Debug, Clone, Default)]
pub struct SolveBreakdown {
    /// Resolved linear-solver name (`plain_cg`, `jacobi_pcg`, `ic0_pcg`,
    /// `mgcg`).
    pub solver: String,
    /// Conductance assembly plus power rasterization seconds.
    pub assembly_s: f64,
    /// Preconditioner construction seconds (IC(0) factorization or
    /// multigrid hierarchy build).
    pub precond_s: f64,
    /// Accumulated CG seconds over all leakage iterations.
    pub solve_s: f64,
    /// CG iterations of each leakage fixed-point iteration.
    pub cg_iterations: Vec<usize>,
    /// Relative residual of the final CG solve.
    pub final_residual: f64,
}

impl SolveBreakdown {
    /// Total CG iterations across the leakage loop.
    pub fn total_cg_iterations(&self) -> usize {
        self.cg_iterations.iter().sum()
    }
}

/// Per-block temperature summary extracted from a [`TemperatureMap`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockTempStats {
    /// Area-weighted mean temperature (K).
    pub mean_k: f64,
    /// Maximum cell temperature (K) — the paper's "block-level worst-case
    /// operating temperature".
    pub max_k: f64,
    /// Minimum cell temperature (K).
    pub min_k: f64,
}

/// A solved steady-state temperature field.
#[derive(Debug, Clone)]
pub struct TemperatureMap {
    nx: usize,
    ny: usize,
    die_w: f64,
    die_h: f64,
    /// Cell temperatures (K), row-major: index `iy * nx + ix`.
    temps: Vec<f64>,
    /// Solver breakdown; `cg_iterations.len()` is the leakage iteration
    /// count.
    breakdown: SolveBreakdown,
}

impl TemperatureMap {
    /// Assembles a map from raw parts (used by the transient solver).
    ///
    /// # Panics
    ///
    /// Panics if `temps.len() != nx * ny`.
    pub(crate) fn from_parts(
        nx: usize,
        ny: usize,
        die_w: f64,
        die_h: f64,
        temps: Vec<f64>,
    ) -> Self {
        assert_eq!(temps.len(), nx * ny, "temperature vector length mismatch");
        TemperatureMap {
            nx,
            ny,
            die_w,
            die_h,
            temps,
            breakdown: SolveBreakdown::default(),
        }
    }

    /// Grid resolution `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// All cell temperatures (K), row-major.
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Leakage fixed-point iterations performed.
    pub fn leakage_iterations(&self) -> usize {
        self.breakdown.cg_iterations.len()
    }

    /// CG iterations of each leakage fixed-point iteration.
    pub fn cg_iterations(&self) -> &[usize] {
        &self.breakdown.cg_iterations
    }

    /// Total CG iterations across the whole solve.
    pub fn total_cg_iterations(&self) -> usize {
        self.breakdown.total_cg_iterations()
    }

    /// Relative residual of the final CG solve.
    pub fn final_residual(&self) -> f64 {
        self.breakdown.final_residual
    }

    /// Wall-time and convergence breakdown of the solve that produced this
    /// map (empty for maps assembled by the transient stepper, which has
    /// its own per-run stats).
    pub fn breakdown(&self) -> &SolveBreakdown {
        &self.breakdown
    }

    /// Temperature (K) of cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn cell(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.nx && iy < self.ny, "cell index out of range");
        self.temps[iy * self.nx + ix]
    }

    /// Temperature (K) at die coordinates `(x, y)` (nearest cell).
    pub fn at(&self, x: f64, y: f64) -> f64 {
        let ix = ((x / self.die_w * self.nx as f64).floor().max(0.0) as usize).min(self.nx - 1);
        let iy = ((y / self.die_h * self.ny as f64).floor().max(0.0) as usize).min(self.ny - 1);
        self.cell(ix, iy)
    }

    /// Hottest cell temperature (K).
    pub fn max_k(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coolest cell temperature (K).
    pub fn min_k(&self) -> f64 {
        self.temps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean cell temperature (K).
    pub fn mean_k(&self) -> f64 {
        self.temps.iter().sum::<f64>() / self.temps.len() as f64
    }

    /// Temperature statistics over the cells covered by `rect`.
    ///
    /// Cells are attributed by center point; a rectangle smaller than one
    /// cell still picks up its containing cell.
    pub fn block_stats(&self, rect: &Rect) -> BlockTempStats {
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        let cw = self.die_w / self.nx as f64;
        let ch = self.die_h / self.ny as f64;
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let cx = (ix as f64 + 0.5) * cw;
                let cy = (iy as f64 + 0.5) * ch;
                if rect.contains(cx, cy) {
                    let t = self.temps[iy * self.nx + ix];
                    sum += t;
                    count += 1;
                    max = max.max(t);
                    min = min.min(t);
                }
            }
        }
        if count == 0 {
            // Degenerate rect: sample its center.
            let (cx, cy) = rect.center();
            let t = self.at(cx, cy);
            return BlockTempStats {
                mean_k: t,
                max_k: t,
                min_k: t,
            };
        }
        BlockTempStats {
            mean_k: sum / count as f64,
            max_k: max,
            min_k: min,
        }
    }

    /// Renders the map as an ASCII heat chart (one character per cell,
    /// coarsened to at most `max_cols` columns), hottest = '@'.
    pub fn ascii_render(&self, max_cols: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max_cols = max_cols.max(1);
        let step = self.nx.div_ceil(max_cols);
        let lo = self.min_k();
        let hi = self.max_k();
        let span = (hi - lo).max(1e-9);
        let mut out = String::new();
        for iy in (0..self.ny).step_by(step).rev() {
            for ix in (0..self.nx).step_by(step) {
                let t = self.cell(ix, iy);
                let level = (((t - lo) / span) * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[level.min(RAMP.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// Steady-state thermal solver.
#[derive(Debug, Clone)]
pub struct ThermalSolver {
    config: ThermalConfig,
}

impl ThermalSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: ThermalConfig) -> Self {
        ThermalSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Solves the steady-state temperature field for a floorplan and power
    /// model, iterating the leakage–temperature fixed point.
    ///
    /// The conductance operator and the preconditioner are built once and
    /// reused across all fixed-point iterations; with
    /// [`ThermalConfig::warm_start`] each iteration's CG starts from the
    /// previous temperature field, which cuts later iterations to a
    /// handful of CG steps.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidParameter`] for an invalid configuration,
    /// * [`ThermalError::SolveFailed`] if the fixed point diverges
    ///   (thermal runaway) or CG fails.
    pub fn solve(&self, floorplan: &Floorplan, power: &PowerModel) -> Result<TemperatureMap> {
        self.config.validate()?;
        let cfg = &self.config;
        let (nx, ny) = (cfg.nx, cfg.ny);
        let n = nx * ny;

        let t_assembly = std::time::Instant::now();
        let op = assemble_conductance(cfg, floorplan.die_w(), floorplan.die_h());
        let (dyn_cell, leak_cell_ref) = rasterize_power(floorplan, power, nx, ny);
        let assembly_s = t_assembly.elapsed().as_secs_f64();

        let resolved = cfg.solver.resolve(n);
        let t_precond = std::time::Instant::now();
        let precond = BuiltPreconditioner::build(resolved, &op.matrix, nx, ny)?;
        let precond_s = t_precond.elapsed().as_secs_f64();

        // Leakage–temperature fixed point.
        let g_v = op.g_v;
        let mut temps = vec![cfg.ambient_k; n];
        let cg_opts = cfg.cg_options();
        let threads = statobd_num::parallel::resolve_threads(None);
        let mut cg_iterations = Vec::new();
        let mut final_residual = 0.0;
        let mut solve_s = 0.0;
        for _ in 0..cfg.max_leakage_iters {
            // Temperature-dependent leakage makes the per-cell source
            // assembly the sweep's hot loop (an exp per cell per
            // iteration); fan it out over fixed-size chunks so the field
            // is identical at any thread count.
            let mut rhs = vec![0.0; n];
            {
                let temps = &temps;
                let dyn_cell = &dyn_cell;
                let leak_cell_ref = &leak_cell_ref;
                statobd_num::parallel::for_each_chunk_mut(&mut rhs, 1024, threads, |ci, chunk| {
                    let base = ci * 1024;
                    for (k, r) in chunk.iter_mut().enumerate() {
                        let i = base + k;
                        let leak = leak_cell_ref[i]
                            * ((temps[i] - crate::power::LEAKAGE_REF_K) / cfg.leakage_theta_k)
                                .exp();
                        *r = dyn_cell[i] + leak + g_v * cfg.ambient_k;
                    }
                });
            }
            let guess = cfg.warm_start.then_some(temps.as_slice());
            let t_solve = std::time::Instant::now();
            let sol =
                solve_pcg(&op.matrix, &rhs, guess, precond.as_dyn(), &cg_opts).map_err(|e| {
                    ThermalError::SolveFailed {
                        detail: format!("{} failed: {e}", resolved.name()),
                    }
                })?;
            solve_s += t_solve.elapsed().as_secs_f64();
            cg_iterations.push(sol.iterations);
            final_residual = sol.relative_residual;
            let max_delta = sol
                .x
                .iter()
                .zip(&temps)
                .map(|(new, old)| (new - old).abs())
                .fold(0.0f64, f64::max);
            temps = sol.x;
            let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if !hottest.is_finite() || hottest > cfg.ambient_k + 500.0 {
                return Err(ThermalError::SolveFailed {
                    detail: format!("thermal runaway: hottest cell {hottest:.1} K"),
                });
            }
            if max_delta < cfg.leakage_tol_k {
                break;
            }
        }

        let mut map =
            TemperatureMap::from_parts(nx, ny, floorplan.die_w(), floorplan.die_h(), temps);
        map.breakdown = SolveBreakdown {
            solver: resolved.name().to_string(),
            assembly_s,
            precond_s,
            solve_s,
            cg_iterations,
            final_residual,
        };
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Block, Floorplan, Rect};
    use crate::power::{BlockPower, PowerModel};

    fn one_block_chip(power_w: f64) -> (Floorplan, PowerModel) {
        let mut fp = Floorplan::new(0.016, 0.016).unwrap();
        fp.add_block(Block::new("all", Rect::new(0.0, 0.0, 0.016, 0.016).unwrap()).unwrap())
            .unwrap();
        let mut pm = PowerModel::new();
        pm.set_block_power("all", BlockPower::new(power_w, 0.0).unwrap())
            .unwrap();
        (fp, pm)
    }

    #[test]
    fn zero_power_gives_ambient() {
        let (fp, pm) = one_block_chip(0.0);
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        for &t in map.temps() {
            assert!((t - 318.15).abs() < 1e-6, "temp {t}");
        }
    }

    #[test]
    fn uniform_power_matches_analytic_rise() {
        // Uniform power density: no lateral flow; ΔT = P·r_package/A.
        let p = 50.0;
        let (fp, pm) = one_block_chip(p);
        let cfg = ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        };
        let solver = ThermalSolver::new(cfg);
        let map = solver.solve(&fp, &pm).unwrap();
        let expected = cfg.ambient_k + p * cfg.r_package / (0.016 * 0.016);
        for &t in map.temps() {
            assert!((t - expected).abs() < 1e-3, "temp {t} vs {expected}");
        }
    }

    #[test]
    fn hotspot_structure_matches_figure_one() {
        // A small hot block on an otherwise idle die: the hot spot should
        // sit tens of kelvin above the far corner, echoing Fig. 1.
        let mut fp = Floorplan::new(0.016, 0.016).unwrap();
        fp.add_block(Block::new("hot", Rect::new(0.001, 0.001, 0.003, 0.003).unwrap()).unwrap())
            .unwrap();
        fp.add_block(Block::new("idle", Rect::new(0.008, 0.008, 0.008, 0.008).unwrap()).unwrap())
            .unwrap();
        let mut pm = PowerModel::new();
        pm.set_block_power("hot", BlockPower::new(18.0, 1.0).unwrap())
            .unwrap();
        pm.set_block_power("idle", BlockPower::new(1.0, 0.5).unwrap())
            .unwrap();
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 32,
            ny: 32,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        let hot = map.block_stats(fp.block("hot").unwrap().rect());
        let idle = map.block_stats(fp.block("idle").unwrap().rect());
        let delta = hot.max_k - idle.min_k;
        assert!(
            (10.0..80.0).contains(&delta),
            "hot-to-idle spread {delta:.1} K out of the expected range"
        );
        // Hot spot is local: the die max is inside the hot block.
        assert!((map.max_k() - hot.max_k).abs() < 1e-9);
    }

    #[test]
    fn leakage_feedback_raises_temperature() {
        let mut fp = Floorplan::new(0.016, 0.016).unwrap();
        fp.add_block(Block::new("b", Rect::new(0.0, 0.0, 0.016, 0.016).unwrap()).unwrap())
            .unwrap();
        let mut no_leak = PowerModel::new();
        no_leak
            .set_block_power("b", BlockPower::new(40.0, 0.0).unwrap())
            .unwrap();
        let mut with_leak = PowerModel::new();
        with_leak
            .set_block_power("b", BlockPower::new(40.0, 8.0).unwrap())
            .unwrap();
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 8,
            ny: 8,
            ..ThermalConfig::default()
        });
        let cold = solver.solve(&fp, &no_leak).unwrap();
        let warm = solver.solve(&fp, &with_leak).unwrap();
        assert!(warm.max_k() > cold.max_k());
        assert!(warm.leakage_iterations() >= 2);
    }

    #[test]
    fn block_stats_and_point_queries_agree() {
        let (fp, pm) = one_block_chip(30.0);
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        let stats = map.block_stats(fp.block("all").unwrap().rect());
        assert!(stats.min_k <= stats.mean_k && stats.mean_k <= stats.max_k);
        let t = map.at(0.008, 0.008);
        assert!(t >= stats.min_k && t <= stats.max_k);
    }

    #[test]
    fn tiny_block_stats_fall_back_to_center_sample() {
        let (fp, pm) = one_block_chip(30.0);
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 4,
            ny: 4,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        // A rect much smaller than a cell, positioned between cell centers.
        let tiny = Rect::new(0.0039, 0.0039, 0.0002, 0.0002).unwrap();
        let stats = map.block_stats(&tiny);
        assert_eq!(stats.min_k, stats.max_k);
    }

    #[test]
    fn ascii_render_has_expected_shape() {
        let (fp, pm) = one_block_chip(30.0);
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        let art = map.ascii_render(8);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.len() == 8));
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = ThermalConfig {
            nx: 0,
            ..ThermalConfig::default()
        };
        let (fp, pm) = one_block_chip(1.0);
        assert!(ThermalSolver::new(cfg).solve(&fp, &pm).is_err());
        let cfg = ThermalConfig {
            k_silicon: -1.0,
            ..ThermalConfig::default()
        };
        assert!(ThermalSolver::new(cfg).solve(&fp, &pm).is_err());
        let cfg = ThermalConfig {
            cg_rel_tol: 0.0,
            ..ThermalConfig::default()
        };
        assert!(ThermalSolver::new(cfg).solve(&fp, &pm).is_err());
        let cfg = ThermalConfig {
            cg_max_iter: 0,
            ..ThermalConfig::default()
        };
        assert!(ThermalSolver::new(cfg).solve(&fp, &pm).is_err());
    }

    #[test]
    fn unpowered_blocks_are_cool() {
        let mut fp = Floorplan::new(0.01, 0.01).unwrap();
        fp.add_block(Block::new("hot", Rect::new(0.0, 0.0, 0.002, 0.002).unwrap()).unwrap())
            .unwrap();
        fp.add_block(Block::new("cold", Rect::new(0.007, 0.007, 0.003, 0.003).unwrap()).unwrap())
            .unwrap();
        let mut pm = PowerModel::new();
        pm.set_block_power("hot", BlockPower::new(8.0, 0.0).unwrap())
            .unwrap();
        // "cold" gets no assignment at all.
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 20,
            ny: 20,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        let hot = map.block_stats(fp.block("hot").unwrap().rect());
        let cold = map.block_stats(fp.block("cold").unwrap().rect());
        assert!(hot.mean_k > cold.mean_k + 5.0);
    }

    #[test]
    fn solver_kind_parse_and_names_round_trip() {
        for kind in [
            ThermalSolverKind::Auto,
            ThermalSolverKind::PlainCg,
            ThermalSolverKind::JacobiPcg,
            ThermalSolverKind::Ic0Pcg,
            ThermalSolverKind::Mgcg,
        ] {
            assert_eq!(ThermalSolverKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(
            ThermalSolverKind::parse("multigrid"),
            Some(ThermalSolverKind::Mgcg)
        );
        assert_eq!(ThermalSolverKind::parse("nope"), None);
    }

    #[test]
    fn auto_dispatch_follows_grid_size() {
        assert_eq!(
            ThermalSolverKind::Auto.resolve(32 * 32),
            ThermalSolverKind::Ic0Pcg
        );
        assert_eq!(
            ThermalSolverKind::Auto.resolve(ThermalSolverKind::MGCG_MIN_CELLS),
            ThermalSolverKind::Mgcg
        );
        assert_eq!(
            ThermalSolverKind::PlainCg.resolve(1 << 20),
            ThermalSolverKind::PlainCg
        );
    }

    #[test]
    fn config_json_round_trips_solver_kind() {
        let cfg = ThermalConfig {
            solver: ThermalSolverKind::Mgcg,
            cg_rel_tol: 1e-8,
            ..ThermalConfig::default()
        };
        let json = statobd_num::json::to_string(&cfg);
        let back: ThermalConfig = statobd_num::json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn breakdown_reports_convergence_cost() {
        let (fp, pm) = one_block_chip(30.0);
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        let b = map.breakdown();
        assert_eq!(b.solver, "ic0_pcg");
        assert_eq!(b.cg_iterations.len(), map.leakage_iterations());
        assert!(map.total_cg_iterations() > 0);
        assert!(map.final_residual() <= solver.config().cg_rel_tol);
        assert!(b.assembly_s >= 0.0 && b.precond_s >= 0.0 && b.solve_s > 0.0);
    }

    #[test]
    fn all_solver_kinds_agree_on_a_hotspot() {
        let mut fp = Floorplan::new(0.016, 0.016).unwrap();
        fp.add_block(Block::new("hot", Rect::new(0.001, 0.001, 0.004, 0.004).unwrap()).unwrap())
            .unwrap();
        fp.add_block(Block::new("rest", Rect::new(0.008, 0.008, 0.008, 0.008).unwrap()).unwrap())
            .unwrap();
        let mut pm = PowerModel::new();
        pm.set_block_power("hot", BlockPower::new(15.0, 2.0).unwrap())
            .unwrap();
        pm.set_block_power("rest", BlockPower::new(2.0, 0.5).unwrap())
            .unwrap();
        let reference = ThermalSolver::new(ThermalConfig {
            nx: 24,
            ny: 24,
            solver: ThermalSolverKind::PlainCg,
            ..ThermalConfig::default()
        })
        .solve(&fp, &pm)
        .unwrap();
        for kind in [
            ThermalSolverKind::JacobiPcg,
            ThermalSolverKind::Ic0Pcg,
            ThermalSolverKind::Mgcg,
        ] {
            let map = ThermalSolver::new(ThermalConfig {
                nx: 24,
                ny: 24,
                solver: kind,
                ..ThermalConfig::default()
            })
            .solve(&fp, &pm)
            .unwrap();
            for (a, b) in map.temps().iter().zip(reference.temps()) {
                assert!((a - b).abs() < 1e-6, "{} diverged: {a} vs {b}", kind.name());
            }
        }
    }
}
