//! Compact thermal simulation substrate for the OBD reliability analysis.
//!
//! The paper obtains its block-level temperature profiles from HotSpot
//! (Skadron et al.) driven by Wattch power estimates. This crate provides
//! the equivalent, self-contained pipeline:
//!
//! 1. a [`Floorplan`] of named rectangular functional blocks on a die,
//! 2. a [`PowerModel`] assigning each block dynamic power (an
//!    activity-based, Wattch-style estimate) and temperature-dependent
//!    leakage,
//! 3. a [`ThermalSolver`] that discretizes the die into a grid of thermal
//!    cells with lateral silicon conductances and a vertical
//!    package-to-ambient path, and solves the steady state with
//!    preconditioned conjugate gradients — tiered backends from plain CG
//!    through `IC(0)` to multigrid-preconditioned CG, chosen by
//!    [`ThermalSolverKind`] — iterating the warm-started
//!    leakage–temperature fixed point,
//! 4. a [`TemperatureMap`] from which per-block worst-case/mean
//!    temperatures are extracted for the reliability model.
//!
//! The default physical constants are calibrated so a mid-2000s
//! processor-class design shows the structure of the paper's Fig. 1:
//! hot spots confined to a small region sitting ~30 °C above the
//! inactive areas.
//!
//! # Example
//!
//! ```
//! use statobd_thermal::*;
//!
//! let mut fp = Floorplan::new(0.016, 0.016)?;
//! fp.add_block(Block::new("core", Rect::new(0.002, 0.002, 0.004, 0.004)?)?)?;
//! fp.add_block(Block::new("cache", Rect::new(0.008, 0.008, 0.006, 0.006)?)?)?;
//! let mut power = PowerModel::new();
//! power.set_block_power("core", BlockPower::new(25.0, 3.0)?)?;
//! power.set_block_power("cache", BlockPower::new(4.0, 1.0)?)?;
//! let solver = ThermalSolver::new(ThermalConfig::default());
//! let map = solver.solve(&fp, &power)?;
//! let core = map.block_stats(fp.block("core").unwrap().rect());
//! let cache = map.block_stats(fp.block("cache").unwrap().rect());
//! assert!(core.max_k > cache.max_k); // the core runs hotter
//! # Ok::<(), ThermalError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod floorplan;
mod power;
mod profiles;
mod solver;
mod transient;

pub use floorplan::{Block, Floorplan, Rect};
pub use power::{dynamic_power, BlockPower, PowerModel, LEAKAGE_REF_K};
pub use profiles::{alpha_ev6_floorplan, alpha_ev6_power, many_core_floorplan, many_core_power};
pub use solver::{
    BlockTempStats, SolveBreakdown, TemperatureMap, ThermalConfig, ThermalSolver, ThermalSolverKind,
};
pub use transient::{TransientResult, TransientStats};

use statobd_num::NumError;

/// Kelvin value of 0 °C, for conversions at API boundaries.
pub const ZERO_CELSIUS_K: f64 = 273.15;

/// Converts °C to K.
pub fn celsius_to_kelvin(c: f64) -> f64 {
    c + ZERO_CELSIUS_K
}

/// Converts K to °C.
pub fn kelvin_to_celsius(k: f64) -> f64 {
    k - ZERO_CELSIUS_K
}

/// Errors produced by the thermal pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// A geometric or physical parameter was invalid.
    InvalidParameter {
        /// Description of the offending parameter.
        detail: String,
    },
    /// A block name was duplicated or referenced without being defined.
    UnknownBlock {
        /// The offending block name.
        name: String,
    },
    /// The iterative solve failed (CG breakdown or leakage runaway).
    SolveFailed {
        /// Description of the failure.
        detail: String,
    },
    /// An underlying numerical routine failed.
    Numerical(NumError),
}

impl std::fmt::Display for ThermalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThermalError::InvalidParameter { detail } => write!(f, "invalid parameter: {detail}"),
            ThermalError::UnknownBlock { name } => write!(f, "unknown block: {name}"),
            ThermalError::SolveFailed { detail } => write!(f, "thermal solve failed: {detail}"),
            ThermalError::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for ThermalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ThermalError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for ThermalError {
    fn from(e: NumError) -> Self {
        ThermalError::Numerical(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ThermalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_conversions_round_trip() {
        assert_eq!(celsius_to_kelvin(0.0), 273.15);
        assert_eq!(kelvin_to_celsius(celsius_to_kelvin(85.0)), 85.0);
    }
}
