//! Floorplans: named rectangular functional blocks on a die.

use crate::{Result, ThermalError};
use statobd_num::impl_json_struct;

/// An axis-aligned rectangle (meters), origin at the die's lower-left.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    x: f64,
    y: f64,
    w: f64,
    h: f64,
}

impl_json_struct!(Rect { x, y, w, h });

impl Rect {
    /// Creates a rectangle at `(x, y)` with size `w × h`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for negative origins or
    /// non-positive sizes.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Result<Self> {
        if x < 0.0 || y < 0.0 || !(w > 0.0) || !(h > 0.0) {
            return Err(ThermalError::InvalidParameter {
                detail: format!("invalid rect ({x}, {y}, {w}, {h})"),
            });
        }
        if [x, y, w, h].iter().any(|v| !v.is_finite()) {
            return Err(ThermalError::InvalidParameter {
                detail: "rect parameters must be finite".to_string(),
            });
        }
        Ok(Rect { x, y, w, h })
    }

    /// Left edge.
    pub fn x(&self) -> f64 {
        self.x
    }

    /// Bottom edge.
    pub fn y(&self) -> f64 {
        self.y
    }

    /// Width.
    pub fn w(&self) -> f64 {
        self.w
    }

    /// Height.
    pub fn h(&self) -> f64 {
        self.h
    }

    /// Right edge.
    pub fn x1(&self) -> f64 {
        self.x + self.w
    }

    /// Top edge.
    pub fn y1(&self) -> f64 {
        self.y + self.h
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Center point.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Returns `true` if `(px, py)` lies inside (half-open on the far
    /// edges).
    pub fn contains(&self, px: f64, py: f64) -> bool {
        px >= self.x && px < self.x1() && py >= self.y && py < self.y1()
    }

    /// Area of overlap with another rectangle.
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let ox = (self.x1().min(other.x1()) - self.x.max(other.x)).max(0.0);
        let oy = (self.y1().min(other.y1()) - self.y.max(other.y)).max(0.0);
        ox * oy
    }
}

/// A named functional block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    name: String,
    rect: Rect,
}

impl_json_struct!(Block { name, rect });

impl Block {
    /// Creates a block.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] if the name is empty.
    pub fn new(name: impl Into<String>, rect: Rect) -> Result<Self> {
        let name = name.into();
        if name.is_empty() {
            return Err(ThermalError::InvalidParameter {
                detail: "block name must be non-empty".to_string(),
            });
        }
        Ok(Block { name, rect })
    }

    /// The block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The block geometry.
    pub fn rect(&self) -> &Rect {
        &self.rect
    }
}

/// A die with named functional blocks.
///
/// Blocks must lie within the die. Overlaps are permitted (hierarchical
/// floorplans often overlay clock/power regions) but the area accounting
/// helpers report them so callers can detect unintended overlap.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    die_w: f64,
    die_h: f64,
    blocks: Vec<Block>,
}

impl_json_struct!(Floorplan {
    die_w,
    die_h,
    blocks,
});

impl Floorplan {
    /// Creates an empty floorplan for a `die_w × die_h` die (meters).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for non-positive sizes.
    pub fn new(die_w: f64, die_h: f64) -> Result<Self> {
        if !(die_w > 0.0) || !(die_h > 0.0) || !die_w.is_finite() || !die_h.is_finite() {
            return Err(ThermalError::InvalidParameter {
                detail: format!("die dimensions must be positive, got {die_w} x {die_h}"),
            });
        }
        Ok(Floorplan {
            die_w,
            die_h,
            blocks: Vec::new(),
        })
    }

    /// Die width (m).
    pub fn die_w(&self) -> f64 {
        self.die_w
    }

    /// Die height (m).
    pub fn die_h(&self) -> f64 {
        self.die_h
    }

    /// Die area (m²).
    pub fn die_area(&self) -> f64 {
        self.die_w * self.die_h
    }

    /// Adds a block.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidParameter`] if the block extends beyond the
    ///   die,
    /// * [`ThermalError::UnknownBlock`] (with the duplicate name) if a
    ///   block of the same name exists.
    pub fn add_block(&mut self, block: Block) -> Result<()> {
        let r = block.rect();
        if r.x1() > self.die_w * (1.0 + 1e-12) || r.y1() > self.die_h * (1.0 + 1e-12) {
            return Err(ThermalError::InvalidParameter {
                detail: format!(
                    "block '{}' extends beyond the {} x {} die",
                    block.name(),
                    self.die_w,
                    self.die_h
                ),
            });
        }
        if self.blocks.iter().any(|b| b.name() == block.name()) {
            return Err(ThermalError::UnknownBlock {
                name: format!("duplicate block name '{}'", block.name()),
            });
        }
        self.blocks.push(block);
        Ok(())
    }

    /// The blocks in insertion order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Looks up a block by name.
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.name() == name)
    }

    /// Total block area (m²); exceeds the die area if blocks overlap.
    pub fn total_block_area(&self) -> f64 {
        self.blocks.iter().map(|b| b.rect().area()).sum()
    }

    /// Maximum pairwise overlap area between blocks (0 for a clean
    /// floorplan).
    pub fn max_overlap(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.blocks.len() {
            for j in (i + 1)..self.blocks.len() {
                worst = worst.max(self.blocks[i].rect().overlap_area(self.blocks[j].rect()));
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0).unwrap();
        assert_eq!(r.x1(), 4.0);
        assert_eq!(r.y1(), 6.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), (2.5, 4.0));
        assert!(r.contains(1.0, 2.0));
        assert!(!r.contains(4.0, 4.0));
    }

    #[test]
    fn rect_rejects_bad_params() {
        assert!(Rect::new(-1.0, 0.0, 1.0, 1.0).is_err());
        assert!(Rect::new(0.0, 0.0, 0.0, 1.0).is_err());
        assert!(Rect::new(0.0, 0.0, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn overlap_area_cases() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0).unwrap();
        let b = Rect::new(1.0, 1.0, 2.0, 2.0).unwrap();
        let c = Rect::new(5.0, 5.0, 1.0, 1.0).unwrap();
        assert_eq!(a.overlap_area(&b), 1.0);
        assert_eq!(a.overlap_area(&c), 0.0);
        assert_eq!(a.overlap_area(&a), 4.0);
    }

    #[test]
    fn floorplan_bounds_and_duplicates() {
        let mut fp = Floorplan::new(0.01, 0.01).unwrap();
        fp.add_block(Block::new("a", Rect::new(0.0, 0.0, 0.005, 0.005).unwrap()).unwrap())
            .unwrap();
        // Out of bounds.
        let oob = Block::new("b", Rect::new(0.008, 0.0, 0.005, 0.005).unwrap()).unwrap();
        assert!(fp.add_block(oob).is_err());
        // Duplicate name.
        let dup = Block::new("a", Rect::new(0.005, 0.005, 0.001, 0.001).unwrap()).unwrap();
        assert!(fp.add_block(dup).is_err());
        assert_eq!(fp.blocks().len(), 1);
        assert!(fp.block("a").is_some());
        assert!(fp.block("missing").is_none());
    }

    #[test]
    fn area_accounting() {
        let mut fp = Floorplan::new(1.0, 1.0).unwrap();
        fp.add_block(Block::new("a", Rect::new(0.0, 0.0, 0.5, 0.5).unwrap()).unwrap())
            .unwrap();
        fp.add_block(Block::new("b", Rect::new(0.25, 0.25, 0.5, 0.5).unwrap()).unwrap())
            .unwrap();
        assert_eq!(fp.total_block_area(), 0.5);
        assert_eq!(fp.max_overlap(), 0.0625);
    }

    #[test]
    fn json_round_trip() {
        let mut fp = Floorplan::new(0.02, 0.02).unwrap();
        fp.add_block(Block::new("alu", Rect::new(0.0, 0.0, 0.01, 0.01).unwrap()).unwrap())
            .unwrap();
        let json = statobd_num::json::to_string(&fp);
        let back: Floorplan = statobd_num::json::from_str(&json).unwrap();
        assert_eq!(fp, back);
    }
}
