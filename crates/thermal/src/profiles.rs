//! Reference floorplans and power profiles.
//!
//! Two designs echo the paper's Fig. 1: an Alpha-processor-class
//! floorplan with 15 functional modules (design C6 of the evaluation) and
//! a 16-core many-core design. Powers are representative architectural
//! estimates in the Wattch style; the resulting thermal maps show the
//! paper's structure — compact hot spots ~30 °C above the inactive
//! regions.

use crate::floorplan::{Block, Floorplan, Rect};
use crate::power::{BlockPower, PowerModel};
use crate::Result;

/// Millimeters to meters.
const MM: f64 = 1e-3;

/// The 15 functional modules of the Alpha-class floorplan, with geometry
/// (mm) and (dynamic W, leakage W) assignments.
const ALPHA_BLOCKS: &[(&str, f64, f64, f64, f64, f64, f64)] = &[
    // name, x, y, w, h, dynamic_w, leakage_w
    ("l2_left", 0.0, 0.0, 4.0, 8.0, 2.5, 0.8),
    ("l2_center", 4.0, 0.0, 8.0, 8.0, 5.0, 1.6),
    ("l2_right", 12.0, 0.0, 4.0, 8.0, 2.5, 0.8),
    ("icache", 0.0, 8.0, 4.0, 4.0, 5.0, 0.6),
    ("dcache", 4.0, 8.0, 4.0, 4.0, 6.0, 0.6),
    ("ldstq", 8.0, 8.0, 2.0, 4.0, 3.4, 0.3),
    ("intq", 10.0, 8.0, 2.0, 4.0, 3.8, 0.3),
    ("intreg", 12.0, 8.0, 2.0, 4.0, 4.7, 0.3),
    ("intexec", 14.0, 8.0, 2.0, 4.0, 7.6, 0.4),
    ("bpred", 0.0, 12.0, 2.0, 4.0, 3.0, 0.3),
    ("tlb", 2.0, 12.0, 2.0, 4.0, 1.7, 0.2),
    ("fpadd", 4.0, 12.0, 3.0, 4.0, 4.2, 0.3),
    ("fpmul", 7.0, 12.0, 3.0, 4.0, 4.7, 0.3),
    ("fpreg", 10.0, 12.0, 2.0, 4.0, 2.1, 0.2),
    ("intmap", 12.0, 12.0, 4.0, 4.0, 3.4, 0.4),
];

/// Alpha-processor-class floorplan: a 16 mm × 16 mm die with 15 functional
/// modules (L2 banks, caches, integer/floating-point clusters) that tiles
/// the die exactly.
///
/// # Errors
///
/// Never fails in practice; the signature propagates constructor errors.
///
/// # Example
///
/// ```
/// let fp = statobd_thermal::alpha_ev6_floorplan()?;
/// assert_eq!(fp.blocks().len(), 15);
/// assert!((fp.total_block_area() - fp.die_area()).abs() < 1e-12);
/// # Ok::<(), statobd_thermal::ThermalError>(())
/// ```
pub fn alpha_ev6_floorplan() -> Result<Floorplan> {
    let mut fp = Floorplan::new(16.0 * MM, 16.0 * MM)?;
    for &(name, x, y, w, h, _, _) in ALPHA_BLOCKS {
        fp.add_block(Block::new(
            name,
            Rect::new(x * MM, y * MM, w * MM, h * MM)?,
        )?)?;
    }
    Ok(fp)
}

/// Power model matching [`alpha_ev6_floorplan`]: ~60 W total with the
/// integer execution cluster as the dominant hot spot.
///
/// # Errors
///
/// Never fails in practice; the signature propagates constructor errors.
pub fn alpha_ev6_power() -> Result<PowerModel> {
    let mut pm = PowerModel::new();
    for &(name, _, _, _, _, dyn_w, leak_w) in ALPHA_BLOCKS {
        pm.set_block_power(name, BlockPower::new(dyn_w, leak_w)?)?;
    }
    Ok(pm)
}

/// A 16-core many-core floorplan: 4 × 4 cores of 3 mm × 3 mm on a
/// 16 mm × 16 mm die, with the inter-core fabric as a separate "uncore"
/// block (the remaining area is modeled as unpowered silicon).
///
/// Core `k` (0–15) is named `core_k`, laid out row-major from the
/// lower-left.
///
/// # Errors
///
/// Never fails in practice; the signature propagates constructor errors.
pub fn many_core_floorplan() -> Result<Floorplan> {
    let mut fp = Floorplan::new(16.0 * MM, 16.0 * MM)?;
    for k in 0..16 {
        let col = (k % 4) as f64;
        let row = (k / 4) as f64;
        let x = (0.5 + col * 4.0) * MM;
        let y = (0.5 + row * 4.0) * MM;
        fp.add_block(Block::new(
            format!("core_{k}"),
            Rect::new(x, y, 3.0 * MM, 3.0 * MM)?,
        )?)?;
    }
    Ok(fp)
}

/// Power model for [`many_core_floorplan`] with the given cores active.
///
/// Active cores draw `active_w` dynamic watts; the rest idle at 10 % of
/// that. This reproduces the many-core panel of the paper's Fig. 1, where
/// a handful of busy cores form isolated hot spots.
///
/// # Errors
///
/// Returns an error if `active_w` is negative (via [`BlockPower::new`]).
///
/// # Example
///
/// ```
/// let pm = statobd_thermal::many_core_power(&[5, 6, 9], 6.0)?;
/// assert!(pm.block_power("core_5").unwrap().dynamic_w() > 5.0);
/// assert!(pm.block_power("core_0").unwrap().dynamic_w() < 1.0);
/// # Ok::<(), statobd_thermal::ThermalError>(())
/// ```
pub fn many_core_power(active_cores: &[usize], active_w: f64) -> Result<PowerModel> {
    let mut pm = PowerModel::new();
    for k in 0..16usize {
        let dyn_w = if active_cores.contains(&k) {
            active_w
        } else {
            active_w * 0.1
        };
        pm.set_block_power(format!("core_{k}"), BlockPower::new(dyn_w, dyn_w * 0.1)?)?;
    }
    Ok(pm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{ThermalConfig, ThermalSolver};

    #[test]
    fn alpha_floorplan_tiles_die_exactly() {
        let fp = alpha_ev6_floorplan().unwrap();
        assert_eq!(fp.blocks().len(), 15);
        assert!((fp.total_block_area() - fp.die_area()).abs() < 1e-12);
        assert_eq!(fp.max_overlap(), 0.0);
    }

    #[test]
    fn alpha_power_totals_are_processor_class() {
        let pm = alpha_ev6_power().unwrap();
        let total = pm.total_dynamic_w() + pm.total_leakage_ref_w();
        assert!((40.0..90.0).contains(&total), "total {total} W");
    }

    #[test]
    fn alpha_profile_shows_fig1_structure() {
        let fp = alpha_ev6_floorplan().unwrap();
        let pm = alpha_ev6_power().unwrap();
        let solver = ThermalSolver::new(ThermalConfig::default());
        let map = solver.solve(&fp, &pm).unwrap();
        let spread = map.max_k() - map.min_k();
        assert!(
            (15.0..50.0).contains(&spread),
            "Fig.1-style spread expected, got {spread:.1} K"
        );
        // Hottest block is the integer execution cluster.
        let mut hottest = ("", f64::NEG_INFINITY);
        for b in fp.blocks() {
            let s = map.block_stats(b.rect());
            if s.max_k > hottest.1 {
                hottest = (b.name(), s.max_k);
            }
        }
        assert_eq!(hottest.0, "intexec");
        // Temperatures are physically plausible (between 45 and 125 °C).
        assert!(map.min_k() > 318.0 && map.max_k() < 398.0);
    }

    #[test]
    fn many_core_hot_spots_are_local() {
        let fp = many_core_floorplan().unwrap();
        let pm = many_core_power(&[5, 10], 7.0).unwrap();
        let solver = ThermalSolver::new(ThermalConfig::default());
        let map = solver.solve(&fp, &pm).unwrap();
        let hot = map.block_stats(fp.block("core_5").unwrap().rect());
        let cold = map.block_stats(fp.block("core_3").unwrap().rect());
        assert!(hot.max_k > cold.max_k + 5.0);
    }

    #[test]
    fn many_core_idle_cores_draw_ten_percent() {
        let pm = many_core_power(&[0], 10.0).unwrap();
        assert_eq!(pm.block_power("core_0").unwrap().dynamic_w(), 10.0);
        assert_eq!(pm.block_power("core_7").unwrap().dynamic_w(), 1.0);
    }
}
