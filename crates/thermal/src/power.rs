//! Architectural power modeling (the Wattch-style substrate).
//!
//! Each block carries a dynamic power (externally estimated or computed
//! from the activity-based [`dynamic_power`] helper) and a reference
//! leakage power that the thermal solver scales exponentially with
//! temperature during the leakage–temperature fixed-point iteration.

use crate::{Result, ThermalError};
use statobd_num::impl_json_struct;
use std::collections::BTreeMap;

/// Reference temperature (K) at which block leakage powers are specified.
pub const LEAKAGE_REF_K: f64 = 358.15; // 85 °C

/// Per-block power assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockPower {
    dynamic_w: f64,
    leakage_ref_w: f64,
}

impl_json_struct!(BlockPower {
    dynamic_w,
    leakage_ref_w,
});

impl BlockPower {
    /// Creates a block power: dynamic watts plus leakage watts at the
    /// reference temperature ([`LEAKAGE_REF_K`]).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for negative or
    /// non-finite powers.
    pub fn new(dynamic_w: f64, leakage_ref_w: f64) -> Result<Self> {
        if dynamic_w < 0.0
            || leakage_ref_w < 0.0
            || !dynamic_w.is_finite()
            || !leakage_ref_w.is_finite()
        {
            return Err(ThermalError::InvalidParameter {
                detail: format!("powers must be non-negative, got ({dynamic_w}, {leakage_ref_w})"),
            });
        }
        Ok(BlockPower {
            dynamic_w,
            leakage_ref_w,
        })
    }

    /// Dynamic power (W).
    pub fn dynamic_w(&self) -> f64 {
        self.dynamic_w
    }

    /// Leakage power (W) at the reference temperature.
    pub fn leakage_ref_w(&self) -> f64 {
        self.leakage_ref_w
    }

    /// Leakage power at temperature `t_k`, using an exponential
    /// sensitivity with e-folding temperature `theta_k` (the solver's
    /// configured value; HotSpot-era silicon roughly doubles leakage every
    /// ~20–30 K).
    pub fn leakage_at(&self, t_k: f64, theta_k: f64) -> f64 {
        self.leakage_ref_w * ((t_k - LEAKAGE_REF_K) / theta_k).exp()
    }

    /// Total power at temperature `t_k`.
    pub fn total_at(&self, t_k: f64, theta_k: f64) -> f64 {
        self.dynamic_w + self.leakage_at(t_k, theta_k)
    }
}

/// Power assignments for the blocks of a floorplan.
///
/// Blocks without an assignment are treated as zero power (inactive
/// regions — exactly the "cool areas" of the paper's Fig. 1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerModel {
    blocks: BTreeMap<String, BlockPower>,
}

impl_json_struct!(PowerModel { blocks });

impl PowerModel {
    /// Creates an empty power model.
    pub fn new() -> Self {
        PowerModel {
            blocks: BTreeMap::new(),
        }
    }

    /// Assigns power to a block (replacing any existing assignment).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] if the name is empty.
    pub fn set_block_power(&mut self, name: impl Into<String>, power: BlockPower) -> Result<()> {
        let name = name.into();
        if name.is_empty() {
            return Err(ThermalError::InvalidParameter {
                detail: "block name must be non-empty".to_string(),
            });
        }
        self.blocks.insert(name, power);
        Ok(())
    }

    /// Looks up a block's power.
    pub fn block_power(&self, name: &str) -> Option<&BlockPower> {
        self.blocks.get(name)
    }

    /// Iterates over `(name, power)` assignments.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &BlockPower)> {
        self.blocks.iter().map(|(n, p)| (n.as_str(), p))
    }

    /// Total dynamic power (W).
    pub fn total_dynamic_w(&self) -> f64 {
        self.blocks.values().map(|p| p.dynamic_w()).sum()
    }

    /// Total leakage power (W) at the reference temperature.
    pub fn total_leakage_ref_w(&self) -> f64 {
        self.blocks.values().map(|p| p.leakage_ref_w()).sum()
    }
}

/// Wattch-style dynamic power estimate:
/// `P = activity · c_eff · V² · f`, with `c_eff` the block's effective
/// switched capacitance (F).
///
/// # Example
///
/// ```
/// use statobd_thermal::dynamic_power;
///
/// // 2 nF effective capacitance, 1.2 V, 2 GHz, 30 % activity.
/// let p = dynamic_power(0.3, 2e-9, 1.2, 2e9);
/// assert!((p - 1.728).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if any argument is negative (programming error at call sites —
/// these are design constants, not data).
pub fn dynamic_power(activity: f64, c_eff_f: f64, vdd_v: f64, freq_hz: f64) -> f64 {
    assert!(
        activity >= 0.0 && c_eff_f >= 0.0 && vdd_v >= 0.0 && freq_hz >= 0.0,
        "power parameters must be non-negative"
    );
    activity * c_eff_f * vdd_v * vdd_v * freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_scales_exponentially() {
        let p = BlockPower::new(10.0, 2.0).unwrap();
        assert!((p.leakage_at(LEAKAGE_REF_K, 30.0) - 2.0).abs() < 1e-12);
        // +30 K at theta = 30 K multiplies by e.
        let hot = p.leakage_at(LEAKAGE_REF_K + 30.0, 30.0);
        assert!((hot - 2.0 * std::f64::consts::E).abs() < 1e-10);
        // Cooler than reference → less leakage.
        assert!(p.leakage_at(LEAKAGE_REF_K - 20.0, 30.0) < 2.0);
    }

    #[test]
    fn total_power_combines_components() {
        let p = BlockPower::new(5.0, 1.0).unwrap();
        assert!((p.total_at(LEAKAGE_REF_K, 30.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn model_accounting() {
        let mut m = PowerModel::new();
        m.set_block_power("a", BlockPower::new(10.0, 1.0).unwrap())
            .unwrap();
        m.set_block_power("b", BlockPower::new(5.0, 0.5).unwrap())
            .unwrap();
        assert_eq!(m.total_dynamic_w(), 15.0);
        assert_eq!(m.total_leakage_ref_w(), 1.5);
        assert!(m.block_power("a").is_some());
        assert!(m.block_power("zz").is_none());
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn replace_assignment() {
        let mut m = PowerModel::new();
        m.set_block_power("a", BlockPower::new(1.0, 0.0).unwrap())
            .unwrap();
        m.set_block_power("a", BlockPower::new(2.0, 0.0).unwrap())
            .unwrap();
        assert_eq!(m.block_power("a").unwrap().dynamic_w(), 2.0);
    }

    #[test]
    fn rejects_invalid() {
        assert!(BlockPower::new(-1.0, 0.0).is_err());
        assert!(BlockPower::new(0.0, f64::INFINITY).is_err());
        let mut m = PowerModel::new();
        assert!(m
            .set_block_power("", BlockPower::new(1.0, 0.0).unwrap())
            .is_err());
    }

    #[test]
    fn dynamic_power_formula() {
        assert_eq!(dynamic_power(0.0, 1e-9, 1.2, 1e9), 0.0);
        let p = dynamic_power(1.0, 1e-9, 1.0, 1e9);
        assert!((p - 1.0).abs() < 1e-12);
    }
}
