//! Transient thermal simulation (HotSpot's transient mode, as a compact
//! explicit integrator).
//!
//! The same grid RC network as the steady-state solver, plus a heat
//! capacity per cell: `C·dT/dt = P(T) + G_v·T_amb − (L + diag(G_v))·T`.
//! Integration is explicit Euler with an automatically chosen stable
//! sub-step (`dt ≤ stability_factor · C / max_row_conductance`), which is
//! cheap because the thermal RC time constants of a die are far longer
//! than the stability limit of its lateral network.
//!
//! Transient analysis matters to the reliability flow because application
//! phases with different power maps produce different *worst-case block
//! temperatures*; the paper handles this by taking the block-level
//! worst case over the lifetime — this module lets a user derive exactly
//! that from a power trace.

use crate::floorplan::Floorplan;
use crate::power::PowerModel;
use crate::solver::{TemperatureMap, ThermalSolver};
use crate::{Result, ThermalError};

/// Fraction of the explicit-Euler stability limit to use as the sub-step.
const STABILITY_FACTOR: f64 = 0.5;

/// A transient simulation result: snapshots at the requested times.
#[derive(Debug)]
pub struct TransientResult {
    /// `(time (s), temperature field)` pairs, in increasing time order.
    pub snapshots: Vec<(f64, TemperatureMap)>,
}

impl TransientResult {
    /// The final temperature map.
    ///
    /// # Panics
    ///
    /// Panics if the result has no snapshots (the solver always produces
    /// at least one).
    pub fn final_map(&self) -> &TemperatureMap {
        &self.snapshots.last().expect("at least one snapshot").1
    }
}

impl ThermalSolver {
    /// Integrates the transient response from a uniform `t_init_k` start
    /// under the given power model, recording `n_snapshots` equally spaced
    /// snapshots over `duration_s`.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidParameter`] for a non-positive duration,
    ///   zero snapshots, or an invalid configuration,
    /// * [`ThermalError::SolveFailed`] on thermal runaway.
    pub fn solve_transient(
        &self,
        floorplan: &Floorplan,
        power: &PowerModel,
        t_init_k: f64,
        duration_s: f64,
        n_snapshots: usize,
    ) -> Result<TransientResult> {
        let cfg = self.config();
        cfg.validate()?;
        if !(duration_s > 0.0) || n_snapshots == 0 || !(t_init_k > 0.0) {
            return Err(ThermalError::InvalidParameter {
                detail: format!(
                    "need duration > 0, snapshots > 0 and t_init > 0, got {duration_s}, {n_snapshots}, {t_init_k}"
                ),
            });
        }
        let (nx, ny) = (cfg.nx, cfg.ny);
        let n = nx * ny;
        let cw = floorplan.die_w() / nx as f64;
        let ch = floorplan.die_h() / ny as f64;
        let cell_area = cw * ch;

        // Reuse the steady-state assembly helpers by rebuilding the
        // conductance structure inline (same constants as `solve`).
        let sheet = cfg.k_silicon * cfg.die_thickness + cfg.k_spreader * cfg.spreader_thickness;
        let g_x = sheet * ch / cw;
        let g_y = sheet * cw / ch;
        let g_v = cell_area / cfg.r_package;
        let c_cell = cfg.c_volumetric * cell_area * cfg.die_thickness;

        // Per-cell dynamic power and reference leakage (uniform density
        // over each block).
        let (dyn_cell, leak_cell_ref) = rasterize_power(floorplan, power, nx, ny, cw, ch);

        // Stability: dt <= factor * C / (sum of conductances at a cell).
        let max_row_g = g_v + 2.0 * g_x + 2.0 * g_y;
        let dt = STABILITY_FACTOR * c_cell / max_row_g;
        let snap_every = duration_s / n_snapshots as f64;

        let mut temps = vec![t_init_k; n];
        let mut next = vec![0.0; n];
        let mut snapshots = Vec::with_capacity(n_snapshots);
        let mut t_now = 0.0;
        let mut next_snap = snap_every;
        while t_now < duration_s - 1e-12 {
            let step = dt.min(duration_s - t_now).min(next_snap - t_now + 1e-15);
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = iy * nx + ix;
                    let t_i = temps[i];
                    let mut flow = g_v * (cfg.ambient_k - t_i);
                    if ix + 1 < nx {
                        flow += g_x * (temps[i + 1] - t_i);
                    }
                    if ix > 0 {
                        flow += g_x * (temps[i - 1] - t_i);
                    }
                    if iy + 1 < ny {
                        flow += g_y * (temps[i + nx] - t_i);
                    }
                    if iy > 0 {
                        flow += g_y * (temps[i - nx] - t_i);
                    }
                    let leak = leak_cell_ref[i]
                        * ((t_i - crate::power::LEAKAGE_REF_K) / cfg.leakage_theta_k).exp();
                    next[i] = t_i + step * (dyn_cell[i] + leak + flow) / c_cell;
                }
            }
            std::mem::swap(&mut temps, &mut next);
            t_now += step;
            let hottest = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if !hottest.is_finite() || hottest > cfg.ambient_k + 500.0 {
                return Err(ThermalError::SolveFailed {
                    detail: format!("transient thermal runaway at t = {t_now:.3e} s"),
                });
            }
            if t_now >= next_snap - 1e-12 {
                snapshots.push((
                    t_now,
                    TemperatureMap::from_parts(
                        nx,
                        ny,
                        floorplan.die_w(),
                        floorplan.die_h(),
                        temps.clone(),
                    ),
                ));
                next_snap += snap_every;
            }
        }
        if snapshots.is_empty() {
            snapshots.push((
                t_now,
                TemperatureMap::from_parts(nx, ny, floorplan.die_w(), floorplan.die_h(), temps),
            ));
        }
        Ok(TransientResult { snapshots })
    }
}

/// Rasterizes block powers onto the thermal grid (shared with the
/// steady-state path's logic).
fn rasterize_power(
    floorplan: &Floorplan,
    power: &PowerModel,
    nx: usize,
    ny: usize,
    cw: f64,
    ch: f64,
) -> (Vec<f64>, Vec<f64>) {
    let n = nx * ny;
    let mut dyn_cell = vec![0.0; n];
    let mut leak_cell_ref = vec![0.0; n];
    for block in floorplan.blocks() {
        let Some(bp) = power.block_power(block.name()) else {
            continue;
        };
        let r = block.rect();
        let dyn_density = bp.dynamic_w() / r.area();
        let leak_density = bp.leakage_ref_w() / r.area();
        let ix0 = ((r.x() / cw).floor().max(0.0) as usize).min(nx - 1);
        let ix1 = (((r.x1() / cw).ceil().max(1.0) as usize) - 1).min(nx - 1);
        let iy0 = ((r.y() / ch).floor().max(0.0) as usize).min(ny - 1);
        let iy1 = (((r.y1() / ch).ceil().max(1.0) as usize) - 1).min(ny - 1);
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let cx0 = ix as f64 * cw;
                let cy0 = iy as f64 * ch;
                let ox = (r.x1().min(cx0 + cw) - r.x().max(cx0)).max(0.0);
                let oy = (r.y1().min(cy0 + ch) - r.y().max(cy0)).max(0.0);
                let overlap = ox * oy;
                if overlap > 0.0 {
                    dyn_cell[iy * nx + ix] += dyn_density * overlap;
                    leak_cell_ref[iy * nx + ix] += leak_density * overlap;
                }
            }
        }
    }
    (dyn_cell, leak_cell_ref)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Block, Rect};
    use crate::power::BlockPower;
    use crate::solver::ThermalConfig;

    fn setup(power_w: f64) -> (Floorplan, PowerModel, ThermalSolver) {
        let mut fp = Floorplan::new(0.008, 0.008).unwrap();
        fp.add_block(Block::new("b", Rect::new(0.0, 0.0, 0.008, 0.008).unwrap()).unwrap())
            .unwrap();
        let mut pm = PowerModel::new();
        pm.set_block_power("b", BlockPower::new(power_w, 0.0).unwrap())
            .unwrap();
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 8,
            ny: 8,
            ..ThermalConfig::default()
        });
        (fp, pm, solver)
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let (fp, pm, solver) = setup(10.0);
        let steady = solver.solve(&fp, &pm).unwrap();
        // Several vertical time constants: τ = C/G_v ≈ r_pkg·c_v·t_die.
        let duration = 5.0 * 1.3e-4 * 1.63e6 * 0.5e-3;
        let transient = solver
            .solve_transient(&fp, &pm, 318.15, duration, 4)
            .unwrap();
        let final_map = transient.final_map();
        for (t_tr, t_ss) in final_map.temps().iter().zip(steady.temps()) {
            assert!(
                (t_tr - t_ss).abs() < 0.05 * (t_ss - 318.15).max(0.1),
                "transient {t_tr} vs steady {t_ss}"
            );
        }
    }

    #[test]
    fn temperature_rises_monotonically_from_cold_start() {
        let (fp, pm, solver) = setup(10.0);
        let result = solver.solve_transient(&fp, &pm, 318.15, 0.05, 5).unwrap();
        let mut prev = 318.15;
        for (_, map) in &result.snapshots {
            let mean = map.mean_k();
            assert!(mean >= prev - 1e-9, "mean {mean} dropped below {prev}");
            prev = mean;
        }
        assert_eq!(result.snapshots.len(), 5);
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let (fp, pm, solver) = setup(0.0);
        let result = solver.solve_transient(&fp, &pm, 318.15, 0.01, 2).unwrap();
        for &t in result.final_map().temps() {
            assert!((t - 318.15).abs() < 1e-9);
        }
    }

    #[test]
    fn hot_start_cools_toward_steady_state() {
        let (fp, pm, solver) = setup(5.0);
        let steady = solver.solve(&fp, &pm).unwrap();
        let duration = 8.0 * 1.3e-4 * 1.63e6 * 0.5e-3;
        let result = solver
            .solve_transient(&fp, &pm, steady.max_k() + 30.0, duration, 3)
            .unwrap();
        let final_mean = result.final_map().mean_k();
        assert!(
            (final_mean - steady.mean_k()).abs() < 1.0,
            "cooled to {final_mean} vs steady {}",
            steady.mean_k()
        );
    }

    #[test]
    fn rejects_bad_arguments() {
        let (fp, pm, solver) = setup(1.0);
        assert!(solver.solve_transient(&fp, &pm, 318.15, 0.0, 2).is_err());
        assert!(solver.solve_transient(&fp, &pm, 318.15, 0.1, 0).is_err());
        assert!(solver.solve_transient(&fp, &pm, 0.0, 0.1, 2).is_err());
    }
}
