//! Transient thermal simulation (HotSpot's transient mode, as an implicit
//! integrator).
//!
//! The same grid RC network as the steady-state solver, plus a heat
//! capacity per cell: `C·dT/dt = P(T) + G_v·T_amb − (L + diag(G_v))·T`.
//! Integration is backward Euler: each step solves
//!
//! ```text
//! (A + (C/dt)·I) · T_{n+1} = P(T_n) + G_v·T_amb + (C/dt)·T_n
//! ```
//!
//! with `A = L + diag(G_v)` the steady-state operator. Backward Euler is
//! unconditionally stable, so the sub-step is chosen to *resolve the
//! physics* — a fraction of the vertical RC time constant
//! `τ_v = r_package·c_volumetric·t_die` — instead of being pinned to the
//! explicit stability limit of the much stiffer lateral network. The
//! stepped operator and its preconditioner are assembled **once** and
//! reused across every step, and each solve warm-starts from the previous
//! field, so a step typically costs only a handful of CG iterations.
//! Leakage is handled semi-implicitly (evaluated at `T_n`).
//!
//! Transient analysis matters to the reliability flow because application
//! phases with different power maps produce different *worst-case block
//! temperatures*; the paper handles this by taking the block-level
//! worst case over the lifetime — this module lets a user derive exactly
//! that from a power trace.

use crate::floorplan::Floorplan;
use crate::power::PowerModel;
use crate::solver::{
    assemble_conductance, rasterize_power, BuiltPreconditioner, TemperatureMap, ThermalSolver,
};
use crate::{Result, ThermalError};
use statobd_num::cg::solve_pcg;

/// How many backward-Euler sub-steps resolve one vertical RC time
/// constant `τ_v` (sets the target `dt = τ_v / TAU_RESOLUTION`).
const TAU_RESOLUTION: f64 = 16.0;

/// Cost accounting of a transient run — proof that the stepper reuses one
/// assembled operator and preconditioner across all steps.
#[derive(Debug, Clone, Default)]
pub struct TransientStats {
    /// Resolved linear-solver name backing every step.
    pub solver: String,
    /// Backward-Euler steps taken.
    pub steps: usize,
    /// Sub-step length (s).
    pub dt_s: f64,
    /// Times the stepped operator `A + (C/dt)·I` was assembled (always 1).
    pub operator_assemblies: usize,
    /// Times the preconditioner was built (always 1).
    pub preconditioner_builds: usize,
    /// CG iterations summed over all steps.
    pub total_cg_iterations: usize,
    /// Operator assembly plus power rasterization seconds.
    pub assembly_s: f64,
    /// Preconditioner construction seconds.
    pub precond_s: f64,
    /// Accumulated CG seconds over all steps.
    pub solve_s: f64,
}

/// A transient simulation result: snapshots at the requested times.
#[derive(Debug)]
pub struct TransientResult {
    /// `(time (s), temperature field)` pairs, in increasing time order.
    pub snapshots: Vec<(f64, TemperatureMap)>,
    /// Cost accounting of the run.
    pub stats: TransientStats,
}

impl TransientResult {
    /// The final temperature map.
    ///
    /// # Panics
    ///
    /// Panics if the result has no snapshots (the solver always produces
    /// at least one).
    pub fn final_map(&self) -> &TemperatureMap {
        &self.snapshots.last().expect("at least one snapshot").1
    }
}

impl ThermalSolver {
    /// Integrates the transient response from a uniform `t_init_k` start
    /// under the given power model, recording `n_snapshots` equally spaced
    /// snapshots over `duration_s`.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidParameter`] for a non-positive duration,
    ///   zero snapshots, or an invalid configuration,
    /// * [`ThermalError::SolveFailed`] on thermal runaway or CG failure.
    pub fn solve_transient(
        &self,
        floorplan: &Floorplan,
        power: &PowerModel,
        t_init_k: f64,
        duration_s: f64,
        n_snapshots: usize,
    ) -> Result<TransientResult> {
        let cfg = self.config();
        cfg.validate()?;
        if !(duration_s > 0.0) || n_snapshots == 0 || !(t_init_k > 0.0) {
            return Err(ThermalError::InvalidParameter {
                detail: format!(
                    "need duration > 0, snapshots > 0 and t_init > 0, got {duration_s}, {n_snapshots}, {t_init_k}"
                ),
            });
        }
        let (nx, ny) = (cfg.nx, cfg.ny);
        let n = nx * ny;

        let t_assembly = std::time::Instant::now();
        let op = assemble_conductance(cfg, floorplan.die_w(), floorplan.die_h());
        let (dyn_cell, leak_cell_ref) = rasterize_power(floorplan, power, nx, ny);

        // Sub-step: resolve the slowest (vertical) RC time constant
        // τ_v = C/G_v = r_pkg·c_v·t_die — grid-independent — while landing
        // exactly on each snapshot boundary.
        let tau_v = cfg.r_package * cfg.c_volumetric * cfg.die_thickness;
        let snap_every = duration_s / n_snapshots as f64;
        let steps_per_snap = ((snap_every * TAU_RESOLUTION / tau_v).ceil() as usize).max(1);
        let dt = snap_every / steps_per_snap as f64;

        // Backward-Euler operator M = A + (C/dt)·I, assembled once for the
        // whole run.
        let shift = op.c_cell / dt;
        let m = op.matrix.with_shifted_diagonal(shift)?;
        let assembly_s = t_assembly.elapsed().as_secs_f64();

        let resolved = cfg.solver.resolve(n);
        let t_precond = std::time::Instant::now();
        let precond = BuiltPreconditioner::build(resolved, &m, nx, ny)?;
        let precond_s = t_precond.elapsed().as_secs_f64();

        let g_v = op.g_v;
        let cg_opts = cfg.cg_options();
        let mut temps = vec![t_init_k; n];
        let mut rhs = vec![0.0; n];
        let mut snapshots = Vec::with_capacity(n_snapshots);
        let mut total_cg_iterations = 0usize;
        let mut solve_s = 0.0;
        for snap in 0..n_snapshots {
            for _ in 0..steps_per_snap {
                for i in 0..n {
                    let leak = leak_cell_ref[i]
                        * ((temps[i] - crate::power::LEAKAGE_REF_K) / cfg.leakage_theta_k).exp();
                    rhs[i] = dyn_cell[i] + leak + g_v * cfg.ambient_k + shift * temps[i];
                }
                let guess = cfg.warm_start.then_some(temps.as_slice());
                let t_solve = std::time::Instant::now();
                let sol = solve_pcg(&m, &rhs, guess, precond.as_dyn(), &cg_opts).map_err(|e| {
                    ThermalError::SolveFailed {
                        detail: format!("transient {} failed: {e}", resolved.name()),
                    }
                })?;
                solve_s += t_solve.elapsed().as_secs_f64();
                total_cg_iterations += sol.iterations;
                temps = sol.x;
                let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if !hottest.is_finite() || hottest > cfg.ambient_k + 500.0 {
                    return Err(ThermalError::SolveFailed {
                        detail: format!("transient thermal runaway: hottest cell {hottest:.1} K"),
                    });
                }
            }
            snapshots.push((
                (snap + 1) as f64 * snap_every,
                TemperatureMap::from_parts(
                    nx,
                    ny,
                    floorplan.die_w(),
                    floorplan.die_h(),
                    temps.clone(),
                ),
            ));
        }
        Ok(TransientResult {
            snapshots,
            stats: TransientStats {
                solver: resolved.name().to_string(),
                steps: n_snapshots * steps_per_snap,
                dt_s: dt,
                operator_assemblies: 1,
                preconditioner_builds: 1,
                total_cg_iterations,
                assembly_s,
                precond_s,
                solve_s,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Block, Rect};
    use crate::power::BlockPower;
    use crate::solver::ThermalConfig;

    fn setup(power_w: f64) -> (Floorplan, PowerModel, ThermalSolver) {
        let mut fp = Floorplan::new(0.008, 0.008).unwrap();
        fp.add_block(Block::new("b", Rect::new(0.0, 0.0, 0.008, 0.008).unwrap()).unwrap())
            .unwrap();
        let mut pm = PowerModel::new();
        pm.set_block_power("b", BlockPower::new(power_w, 0.0).unwrap())
            .unwrap();
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 8,
            ny: 8,
            ..ThermalConfig::default()
        });
        (fp, pm, solver)
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let (fp, pm, solver) = setup(10.0);
        let steady = solver.solve(&fp, &pm).unwrap();
        // Several vertical time constants: τ = C/G_v ≈ r_pkg·c_v·t_die.
        let duration = 5.0 * 1.3e-4 * 1.63e6 * 0.5e-3;
        let transient = solver
            .solve_transient(&fp, &pm, 318.15, duration, 4)
            .unwrap();
        let final_map = transient.final_map();
        for (t_tr, t_ss) in final_map.temps().iter().zip(steady.temps()) {
            assert!(
                (t_tr - t_ss).abs() < 0.05 * (t_ss - 318.15).max(0.1),
                "transient {t_tr} vs steady {t_ss}"
            );
        }
    }

    #[test]
    fn temperature_rises_monotonically_from_cold_start() {
        let (fp, pm, solver) = setup(10.0);
        let result = solver.solve_transient(&fp, &pm, 318.15, 0.05, 5).unwrap();
        let mut prev = 318.15;
        for (_, map) in &result.snapshots {
            let mean = map.mean_k();
            assert!(mean >= prev - 1e-9, "mean {mean} dropped below {prev}");
            prev = mean;
        }
        assert_eq!(result.snapshots.len(), 5);
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let (fp, pm, solver) = setup(0.0);
        let result = solver.solve_transient(&fp, &pm, 318.15, 0.01, 2).unwrap();
        for &t in result.final_map().temps() {
            assert!((t - 318.15).abs() < 1e-9);
        }
    }

    #[test]
    fn hot_start_cools_toward_steady_state() {
        let (fp, pm, solver) = setup(5.0);
        let steady = solver.solve(&fp, &pm).unwrap();
        let duration = 8.0 * 1.3e-4 * 1.63e6 * 0.5e-3;
        let result = solver
            .solve_transient(&fp, &pm, steady.max_k() + 30.0, duration, 3)
            .unwrap();
        let final_mean = result.final_map().mean_k();
        assert!(
            (final_mean - steady.mean_k()).abs() < 1.0,
            "cooled to {final_mean} vs steady {}",
            steady.mean_k()
        );
    }

    #[test]
    fn rejects_bad_arguments() {
        let (fp, pm, solver) = setup(1.0);
        assert!(solver.solve_transient(&fp, &pm, 318.15, 0.0, 2).is_err());
        assert!(solver.solve_transient(&fp, &pm, 318.15, 0.1, 0).is_err());
        assert!(solver.solve_transient(&fp, &pm, 0.0, 0.1, 2).is_err());
    }

    #[test]
    fn stepper_assembles_operator_and_preconditioner_once() {
        let (fp, pm, solver) = setup(10.0);
        let result = solver.solve_transient(&fp, &pm, 318.15, 0.05, 5).unwrap();
        let s = &result.stats;
        assert_eq!(s.operator_assemblies, 1);
        assert_eq!(s.preconditioner_builds, 1);
        assert!(s.steps >= 5, "expected at least one step per snapshot");
        assert!(s.dt_s > 0.0);
        assert!(s.total_cg_iterations > 0);
        assert_eq!(s.solver, "ic0_pcg");
    }

    #[test]
    fn snapshot_times_land_on_uniform_boundaries() {
        let (fp, pm, solver) = setup(4.0);
        let result = solver.solve_transient(&fp, &pm, 318.15, 0.1, 4).unwrap();
        for (k, (t, _)) in result.snapshots.iter().enumerate() {
            let want = (k + 1) as f64 * 0.025;
            assert!((t - want).abs() < 1e-12, "snapshot {k} at {t}, want {want}");
        }
    }
}
