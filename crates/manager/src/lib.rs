//! Runtime dynamic reliability management (DRM) on the hybrid lookup
//! tables — the use-case behind the paper's title: the hybrid `(γ, b)`
//! engine exists explicitly to be "embedded into a dynamic system for
//! reliability monitoring that usually requires very fast response"
//! (Sec. IV-E). This crate turns that sentence into a subsystem, in the
//! style of Srinivasan et al.'s RAMP dynamic reliability management.
//!
//! # Architecture
//!
//! * [`DamageState`] — the damage model. Under a time-varying operating
//!   point each block's Weibull hazard advances by the *effective age*
//!   `dξ_j = dt / α_j(T(t), V(t))`; under a constant point `ξ = t/α`,
//!   so the hybrid table entry at `γ_j = ln ξ_j` is exactly the paper's
//!   constant-condition lookup made cumulative. The state is a plain
//!   `Vec<f64>` + elapsed time and checkpoints to JSON
//!   ([`statobd_num::json`]) so a deployed monitor survives restarts.
//! * [`PolicyConfig`] — the budget-driven policy: an end-of-service
//!   failure-probability budget (n-per-million), a DVFS ladder of
//!   [`DvfsLevel`]s, and a hysteresis factor so the throttle does not
//!   oscillate at the budget boundary.
//! * [`OperatingPhase`] / [`resolve_thermal_phases`] — piecewise-constant
//!   operating points, either given directly (per-block temperatures +
//!   supply voltage) or produced from per-phase [`PowerModel`]s through
//!   `statobd-thermal`'s steady/transient solvers.
//! * [`MissionProfile`] — a library of named stress histories
//!   (HTOL/LTOL qualification, datacenter, automotive, burn-in + field)
//!   expressed as design-independent [`PhaseSpec`] sequences; the fleet
//!   workload evaluates chip populations against these.
//! * [`ReliabilityManager`] — ties it together: advances damage, reads
//!   the chip failure probability off the tables (weakest-link composed
//!   on log-survival via [`statobd_core::WeakestLink`]), projects it to
//!   end of service, and walks the DVFS ladder against the budget.
//!
//! The manager's table queries share the engine-side off-grid
//! accounting: the tables are widened at build time to cover the service
//! life ([`statobd_core::HybridConfig::covering_gamma`]), and
//! [`ReliabilityManager::off_grid_queries`] must stay zero in a healthy
//! deployment.
//!
//! [`PowerModel`]: statobd_thermal::PowerModel

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod damage;
mod manager;
mod policy;
mod profile;
mod schedule;

pub use damage::DamageState;
pub use manager::{ManagerConfig, ReliabilityManager, StepReport};
pub use policy::{DvfsLevel, PolicyConfig};
pub use profile::{MissionProfile, YEAR_S};
pub use schedule::{resolve_thermal_phases, ManageSpec, OperatingPhase, PhaseSpec, ThermalPhase};

/// Errors produced by the reliability manager.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagerError {
    /// A policy, schedule or damage-state parameter was invalid.
    InvalidParameter {
        /// Description of the offending parameter.
        detail: String,
    },
    /// An underlying reliability-engine operation failed.
    Core(statobd_core::CoreError),
    /// An underlying thermal solve failed.
    Thermal(statobd_thermal::ThermalError),
}

impl std::fmt::Display for ManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagerError::InvalidParameter { detail } => write!(f, "invalid parameter: {detail}"),
            ManagerError::Core(e) => write!(f, "reliability engine failure: {e}"),
            ManagerError::Thermal(e) => write!(f, "thermal solve failure: {e}"),
        }
    }
}

impl std::error::Error for ManagerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManagerError::Core(e) => Some(e),
            ManagerError::Thermal(e) => Some(e),
            ManagerError::InvalidParameter { .. } => None,
        }
    }
}

impl From<statobd_core::CoreError> for ManagerError {
    fn from(e: statobd_core::CoreError) -> Self {
        ManagerError::Core(e)
    }
}

impl From<statobd_thermal::ThermalError> for ManagerError {
    fn from(e: statobd_thermal::ThermalError) -> Self {
        ManagerError::Thermal(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ManagerError>;
