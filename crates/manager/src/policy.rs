//! The budget-driven DVFS policy layer.

use crate::{ManagerError, Result};
use statobd_num::impl_json_struct;

/// One rung of the DVFS ladder, fastest first.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsLevel {
    /// Display name ("turbo", "nominal", "eco", ...).
    pub name: String,
    /// Supply-voltage cap (V): the level grants `min(requested, cap)`.
    pub vdd_cap_v: f64,
    /// Temperature offset (K) applied to every block when this level
    /// actually caps the requested voltage — running slower also runs
    /// cooler. Usually ≤ 0.
    pub dt_when_capped_k: f64,
}

impl_json_struct!(DvfsLevel {
    name,
    vdd_cap_v,
    dt_when_capped_k
});

/// The reliability-budget policy: how much end-of-service failure
/// probability the product may spend, over which service life, and which
/// DVFS levels the manager may retreat through to stay inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyConfig {
    /// End-of-service failure-probability budget (e.g. `1e-6` for the
    /// paper's one-per-million criterion).
    pub budget: f64,
    /// Service life (s) the budget covers.
    pub service_life_s: f64,
    /// Hysteresis factor `h ∈ (0, 1]`: after throttling down, the
    /// manager steps back up only when the projection *at the faster
    /// level* falls to `h · budget` — strictly inside the budget, so a
    /// projection hovering at the boundary cannot make the throttle
    /// oscillate. `h = 1` disables the hysteresis.
    pub hysteresis: f64,
    /// The DVFS ladder, fastest (index 0) to slowest. Caps must be
    /// strictly decreasing.
    pub levels: Vec<DvfsLevel>,
}

impl_json_struct!(PolicyConfig {
    budget,
    service_life_s,
    hysteresis,
    levels
});

impl PolicyConfig {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] for a non-positive
    /// budget or service life, a hysteresis outside `(0, 1]`, an empty
    /// ladder, or caps that are not positive and strictly decreasing.
    pub fn validate(&self) -> Result<()> {
        if !(self.budget > 0.0) || self.budget > 1.0 {
            return Err(ManagerError::InvalidParameter {
                detail: format!("budget must be in (0, 1], got {}", self.budget),
            });
        }
        if !(self.service_life_s > 0.0) || !self.service_life_s.is_finite() {
            return Err(ManagerError::InvalidParameter {
                detail: format!("service life must be positive, got {}", self.service_life_s),
            });
        }
        if !(self.hysteresis > 0.0) || self.hysteresis > 1.0 {
            return Err(ManagerError::InvalidParameter {
                detail: format!("hysteresis must be in (0, 1], got {}", self.hysteresis),
            });
        }
        if self.levels.is_empty() {
            return Err(ManagerError::InvalidParameter {
                detail: "the DVFS ladder needs at least one level".to_string(),
            });
        }
        for pair in self.levels.windows(2) {
            if !(pair[1].vdd_cap_v < pair[0].vdd_cap_v) {
                return Err(ManagerError::InvalidParameter {
                    detail: format!(
                        "DVFS caps must be strictly decreasing: '{}' ({} V) then '{}' ({} V)",
                        pair[0].name, pair[0].vdd_cap_v, pair[1].name, pair[1].vdd_cap_v
                    ),
                });
            }
        }
        if let Some(bad) = self
            .levels
            .iter()
            .find(|l| !(l.vdd_cap_v > 0.0) || !l.dt_when_capped_k.is_finite())
        {
            return Err(ManagerError::InvalidParameter {
                detail: format!("invalid DVFS level '{}'", bad.name),
            });
        }
        Ok(())
    }

    /// An unconstrained single-level policy: one rung whose cap never
    /// binds, the whole budget, no throttling in practice. Useful for
    /// pure monitoring (and for cross-validating the damage model
    /// against the static engines).
    pub fn monitoring_only(budget: f64, service_life_s: f64) -> Self {
        PolicyConfig {
            budget,
            service_life_s,
            hysteresis: 0.9,
            levels: vec![DvfsLevel {
                name: "unmanaged".to_string(),
                vdd_cap_v: f64::MAX,
                dt_when_capped_k: 0.0,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> Vec<DvfsLevel> {
        vec![
            DvfsLevel {
                name: "turbo".to_string(),
                vdd_cap_v: 1.26,
                dt_when_capped_k: 0.0,
            },
            DvfsLevel {
                name: "nominal".to_string(),
                vdd_cap_v: 1.20,
                dt_when_capped_k: -6.0,
            },
        ]
    }

    #[test]
    fn accepts_a_sane_policy() {
        let p = PolicyConfig {
            budget: 1e-6,
            service_life_s: 1.6e8,
            hysteresis: 0.8,
            levels: ladder(),
        };
        assert!(p.validate().is_ok());
        assert!(PolicyConfig::monitoring_only(1e-6, 1.6e8)
            .validate()
            .is_ok());
    }

    #[test]
    fn rejects_bad_policies() {
        let good = PolicyConfig {
            budget: 1e-6,
            service_life_s: 1.6e8,
            hysteresis: 0.8,
            levels: ladder(),
        };
        for bad in [
            PolicyConfig {
                budget: 0.0,
                ..good.clone()
            },
            PolicyConfig {
                budget: 2.0,
                ..good.clone()
            },
            PolicyConfig {
                service_life_s: -1.0,
                ..good.clone()
            },
            PolicyConfig {
                hysteresis: 0.0,
                ..good.clone()
            },
            PolicyConfig {
                hysteresis: 1.5,
                ..good.clone()
            },
            PolicyConfig {
                levels: vec![],
                ..good.clone()
            },
            PolicyConfig {
                // Caps must strictly decrease.
                levels: {
                    let mut l = ladder();
                    l[1].vdd_cap_v = 1.30;
                    l
                },
                ..good.clone()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn policy_json_round_trip() {
        let p = PolicyConfig {
            budget: 1e-6,
            service_life_s: 1.6e8,
            hysteresis: 0.8,
            levels: ladder(),
        };
        let restored: PolicyConfig =
            statobd_num::json::from_str(&statobd_num::json::to_string(&p)).unwrap();
        assert_eq!(restored, p);
    }
}
