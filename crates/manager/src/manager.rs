//! The runtime reliability manager: damage accounting, budget
//! projection, and the DVFS throttle.

use crate::damage::DamageState;
use crate::policy::PolicyConfig;
use crate::schedule::OperatingPhase;
use crate::{ManagerError, Result};
use statobd_core::{ChipAnalysis, HybridConfig, HybridTables};
use statobd_device::ObdTechnology;

/// Construction options for [`ReliabilityManager::new`].
#[derive(Debug, Clone, Copy)]
pub struct ManagerConfig {
    /// Base hybrid-table configuration. The `γ` and `b` ranges are
    /// widened automatically ([`HybridConfig::covering_gamma`] /
    /// [`HybridConfig::covering_b`]) so the whole service life stays
    /// on-grid at any operating point up to the sizing headroom.
    pub tables: HybridConfig,
    /// Temperature headroom (K) added above the hottest (and below the
    /// coolest) block specification temperature when sizing the table
    /// ranges.
    pub temp_headroom_k: f64,
    /// Safety margin added to the widened upper `γ` edge (log units).
    pub gamma_margin: f64,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            tables: HybridConfig::default(),
            temp_headroom_k: 20.0,
            gamma_margin: 0.5,
        }
    }
}

/// What one manager step observed and decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Chip failure probability at the end of the step (weakest-link
    /// composed over the block tables).
    pub p_now: f64,
    /// End-of-service projection at the step's final DVFS level, holding
    /// the step's requested operating point for the remaining life.
    pub p_projected: f64,
    /// DVFS level index after the step's policy decision (0 = fastest).
    pub level: usize,
    /// Whether the level in force *during* the step capped the requested
    /// voltage.
    pub capped: bool,
    /// The supply voltage (V) actually applied during the step.
    pub vdd_v: f64,
}

/// The dynamic reliability manager (the paper's "dynamic system for
/// reliability monitoring", Sec. IV-E, with a RAMP-style budget policy).
///
/// Built once per design from a [`ChipAnalysis`]; each runtime step
/// advances the per-block [`DamageState`] under the current operating
/// point, reads the chip failure probability off the hybrid tables at
/// `γ_j = ln ξ_j`, projects it to end of service, and walks the DVFS
/// ladder to keep the projection inside the budget.
#[derive(Debug)]
pub struct ReliabilityManager {
    tables: HybridTables,
    tech: Box<dyn ObdTechnology>,
    policy: PolicyConfig,
    damage: DamageState,
    /// Per-block `b` at the most recently applied temperatures (the
    /// lookup ordinate for "current P" queries between steps);
    /// initialized from the design's specification temperatures.
    last_b: Vec<f64>,
    block_names: Vec<String>,
    level: usize,
    transitions: u64,
}

impl ReliabilityManager {
    /// Builds the manager's lookup tables over `analysis`, sized for the
    /// policy's service life.
    ///
    /// The `γ` range is widened to
    /// `ln(service_life / α(T_max + headroom, V_max)) + margin` so the
    /// tables cover end-of-service ages even at the worst operating
    /// point the ladder can grant; the `b` range is widened to cover
    /// `b(T)` over the headroom-extended temperature window.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] for an invalid policy
    /// and propagates table-construction failures.
    pub fn new(
        analysis: &ChipAnalysis,
        tech: Box<dyn ObdTechnology>,
        policy: PolicyConfig,
        config: ManagerConfig,
    ) -> Result<Self> {
        policy.validate()?;
        let blocks = analysis.blocks();
        let t_hi = blocks
            .iter()
            .map(|b| b.spec().temperature_k())
            .fold(f64::MIN, f64::max)
            + config.temp_headroom_k;
        let t_lo = (blocks
            .iter()
            .map(|b| b.spec().temperature_k())
            .fold(f64::MAX, f64::min)
            - config.temp_headroom_k)
            .max(200.0);
        let v_spec = blocks
            .iter()
            .map(|b| b.spec().voltage_v())
            .fold(f64::MIN, f64::max);
        // Caps only ever *limit* the granted voltage, so a cap far above
        // spec (e.g. the unbounded monitoring-only rung) is not a real
        // operating point; size the grid for modest turbo headroom.
        let v_max = policy
            .levels
            .iter()
            .map(|l| l.vdd_cap_v)
            .filter(|v| v.is_finite())
            .fold(v_spec, f64::max)
            .min(1.5 * v_spec);
        // Hotter and higher-voltage → smaller α → larger end-of-service
        // γ = ln(t_svc/α); size the grid for the worst case.
        let alpha_min = tech.alpha(t_hi, v_max);
        let gamma_hi = (policy.service_life_s / alpha_min).ln() + config.gamma_margin;
        // b(T) need not be monotone for table-driven technologies:
        // sample the window.
        let (mut b_lo, mut b_hi) = (f64::MAX, f64::MIN);
        for i in 0..=64 {
            let b = tech.b(t_lo + (t_hi - t_lo) * i as f64 / 64.0);
            b_lo = b_lo.min(b);
            b_hi = b_hi.max(b);
        }
        let table_config = config
            .tables
            .covering_gamma(gamma_hi)
            .covering_b(b_lo, b_hi);
        let tables = HybridTables::build(analysis, table_config)?;
        Ok(ReliabilityManager {
            damage: DamageState::new(blocks.len()),
            last_b: blocks.iter().map(|b| b.b_per_nm()).collect(),
            block_names: blocks.iter().map(|b| b.spec().name().to_string()).collect(),
            tables,
            tech,
            policy,
            level: 0,
            transitions: 0,
        })
    }

    /// The underlying hybrid tables (their config records the widened
    /// `γ`/`b` ranges).
    pub fn tables(&self) -> &HybridTables {
        &self.tables
    }

    /// The policy in force.
    pub fn policy(&self) -> &PolicyConfig {
        &self.policy
    }

    /// The accumulated damage state (checkpoint it with
    /// [`DamageState::to_json`]).
    pub fn damage(&self) -> &DamageState {
        &self.damage
    }

    /// Block names, in table order.
    pub fn block_names(&self) -> &[String] {
        &self.block_names
    }

    /// Restores a checkpointed damage state.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] if the block count
    /// does not match this design.
    pub fn restore(&mut self, damage: DamageState) -> Result<()> {
        if damage.n_blocks() != self.last_b.len() {
            return Err(ManagerError::InvalidParameter {
                detail: format!(
                    "checkpoint has {} blocks, design has {}",
                    damage.n_blocks(),
                    self.last_b.len()
                ),
            });
        }
        self.damage = damage;
        Ok(())
    }

    /// Current DVFS level index (0 = fastest).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Name of the current DVFS level.
    pub fn level_name(&self) -> &str {
        &self.policy.levels[self.level].name
    }

    /// Ladder transitions taken so far (a chattering throttle shows up
    /// here; the hysteresis keeps this near the number of genuine
    /// budget crossings).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Table queries that ran off the non-conservative grid edges —
    /// must stay zero when the tables were sized for the service life
    /// (see [`HybridTables::off_grid_queries`]).
    pub fn off_grid_queries(&self) -> u64 {
        self.tables.off_grid_queries()
    }

    /// Records a repair event: block `block` was swapped for a pristine
    /// spare, re-baselining its effective age to zero (the rest of the
    /// chip keeps its damage). Under a redundancy-group composition this
    /// is how the analysis learns that a group's spare budget was spent
    /// on a fresh part.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] for an out-of-range
    /// block index.
    pub fn repair(&mut self, block: usize) -> Result<()> {
        self.damage.repair(block)
    }

    /// Chip failure probability at the accumulated damage, composed over
    /// the block tables at `γ_j = ln ξ_j` through the design's
    /// composition (weakest-link, or k-out-of-n redundancy groups).
    ///
    /// # Errors
    ///
    /// Propagates table-query failures.
    pub fn failure_probability_now(&self) -> Result<f64> {
        let mut chip = self
            .tables
            .composition()
            .accumulator(self.last_b.len());
        for (j, (&xi, &b)) in self
            .damage
            .effective_ages()
            .iter()
            .zip(&self.last_b)
            .enumerate()
        {
            chip.absorb(j, self.tables.block_failure_probability_at_age(j, xi, b)?);
        }
        Ok(chip.failure_probability())
    }

    /// Advances the manager by `dt_s` seconds at the requested operating
    /// point (per-block temperatures + requested voltage), then runs the
    /// budget policy.
    ///
    /// The DVFS level in force *before* the step governs the damage
    /// accrued during it (the decision the manager made last time); the
    /// projection afterwards may move the level for subsequent steps:
    /// down while the end-of-service projection exceeds the budget, up
    /// only when the projection at the next-faster level clears
    /// `hysteresis · budget`.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] for a bad operating
    /// point and propagates table-query failures.
    pub fn step(&mut self, dt_s: f64, temps_k: &[f64], vdd_req_v: f64) -> Result<StepReport> {
        if temps_k.len() != self.last_b.len() {
            return Err(ManagerError::InvalidParameter {
                detail: format!(
                    "got {} temperatures for {} blocks",
                    temps_k.len(),
                    self.last_b.len()
                ),
            });
        }
        if !(vdd_req_v > 0.0) {
            return Err(ManagerError::InvalidParameter {
                detail: format!("requested voltage must be positive, got {vdd_req_v}"),
            });
        }
        // 1. Damage accrues at the operating point the current level
        //    grants.
        let (vdd_v, capped, dt_k) = self.granted(vdd_req_v, self.level);
        let alphas: Vec<f64> = temps_k
            .iter()
            .map(|&t| self.tech.alpha(t + dt_k, vdd_v))
            .collect();
        self.damage.advance(dt_s, &alphas)?;
        for (b, &t) in self.last_b.iter_mut().zip(temps_k) {
            *b = self.tech.b(t + dt_k);
        }
        let p_now = self.failure_probability_now()?;

        // 2. Policy: walk the ladder against the end-of-service
        //    projection. Stepping down requires proj > budget at the
        //    current level; stepping back up requires proj ≤ h·budget at
        //    the faster level — mutually exclusive conditions, so one
        //    step can never both throttle and unthrottle.
        let mut p_projected = self.projected(temps_k, vdd_req_v, self.level)?;
        while self.level + 1 < self.policy.levels.len() && p_projected > self.policy.budget {
            self.level += 1;
            self.transitions += 1;
            p_projected = self.projected(temps_k, vdd_req_v, self.level)?;
        }
        while self.level > 0 {
            let faster = self.projected(temps_k, vdd_req_v, self.level - 1)?;
            if faster <= self.policy.hysteresis * self.policy.budget {
                self.level -= 1;
                self.transitions += 1;
                p_projected = faster;
            } else {
                break;
            }
        }
        Ok(StepReport {
            p_now,
            p_projected,
            level: self.level,
            capped,
            vdd_v,
        })
    }

    /// Runs a whole phase as `steps` equal damage/decision steps,
    /// returning each step's report.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] for an invalid phase
    /// or `steps == 0`.
    pub fn run_phase(&mut self, phase: &OperatingPhase, steps: usize) -> Result<Vec<StepReport>> {
        phase.validate(self.last_b.len())?;
        if steps == 0 {
            return Err(ManagerError::InvalidParameter {
                detail: "a phase needs at least one step".to_string(),
            });
        }
        let dt_s = phase.duration_s / steps as f64;
        (0..steps)
            .map(|_| self.step(dt_s, &phase.temps_k, phase.vdd_v))
            .collect()
    }

    /// The operating point level `level` grants for a request:
    /// `(granted vdd, capped?, temperature offset)`.
    fn granted(&self, vdd_req_v: f64, level: usize) -> (f64, bool, f64) {
        let lv = &self.policy.levels[level];
        let vdd_v = vdd_req_v.min(lv.vdd_cap_v);
        let capped = vdd_v < vdd_req_v;
        let dt_k = if capped { lv.dt_when_capped_k } else { 0.0 };
        (vdd_v, capped, dt_k)
    }

    /// End-of-service projection: the chip failure probability if the
    /// remaining service life is spent at the requested operating point
    /// as granted by ladder level `level`.
    fn projected(&self, temps_k: &[f64], vdd_req_v: f64, level: usize) -> Result<f64> {
        let (vdd_v, _, dt_k) = self.granted(vdd_req_v, level);
        let remaining_s = (self.policy.service_life_s - self.damage.elapsed_s()).max(0.0);
        let mut chip = self.tables.composition().accumulator(self.last_b.len());
        for (j, (&xi, &t)) in self.damage.effective_ages().iter().zip(temps_k).enumerate() {
            let t_eff = t + dt_k;
            let alpha = self.tech.alpha(t_eff, vdd_v);
            let p = self.tables.block_failure_probability_at_age(
                j,
                xi + remaining_s / alpha,
                self.tech.b(t_eff),
            )?;
            chip.absorb(j, p);
        }
        Ok(chip.failure_probability())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DvfsLevel;
    use statobd_core::{BlockSpec, ChipSpec, ReliabilityEngine};
    use statobd_device::ClosedFormTech;
    use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

    fn analysis() -> ChipAnalysis {
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(5).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let mut spec = ChipSpec::new();
        spec.add_block(
            BlockSpec::new(
                "core",
                40_000.0,
                40_000,
                368.15,
                1.2,
                vec![(0, 0.5), (6, 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        spec.add_block(
            BlockSpec::new("cache", 60_000.0, 60_000, 341.15, 1.2, vec![(12, 1.0)]).unwrap(),
        )
        .unwrap();
        ChipAnalysis::new(spec, model, &ClosedFormTech::nominal_45nm()).unwrap()
    }

    const YEAR_S: f64 = 3.156e7;

    fn monitoring_manager(a: &ChipAnalysis) -> ReliabilityManager {
        ReliabilityManager::new(
            a,
            Box::new(ClosedFormTech::nominal_45nm()),
            PolicyConfig::monitoring_only(1.0, 10.0 * YEAR_S),
            ManagerConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn constant_point_matches_direct_table_evaluation() {
        // Under a constant operating point the accumulated-damage P(t)
        // must land on the same table cells as the direct engine query —
        // the cross-validation anchor of the whole damage model.
        let a = analysis();
        let mut mgr = monitoring_manager(&a);
        let temps: Vec<f64> = a
            .blocks()
            .iter()
            .map(|b| b.spec().temperature_k())
            .collect();
        let steps = 40usize;
        let dt = 8.0 * YEAR_S / steps as f64;
        for _ in 0..steps {
            mgr.step(dt, &temps, 1.2).unwrap();
        }
        // Identical tables → the only difference is Σ(dt/α) vs (Σdt)/α
        // float rounding, many orders below the 1e-9 criterion.
        let mut direct = HybridTables::build(&a, *mgr.tables().config()).unwrap();
        let p_direct = direct
            .failure_probability(mgr.damage().elapsed_s())
            .unwrap();
        let p_mgr = mgr.failure_probability_now().unwrap();
        let rel = ((p_mgr - p_direct) / p_direct).abs();
        assert!(
            rel < 1e-12,
            "manager {p_mgr:.12e} vs direct {p_direct:.12e} (rel {rel:.3e})"
        );
        assert_eq!(mgr.off_grid_queries(), 0);
        assert_eq!(mgr.transitions(), 0);
    }

    #[test]
    fn hotter_phases_consume_life_faster() {
        let a = analysis();
        let spec_temps: Vec<f64> = a
            .blocks()
            .iter()
            .map(|b| b.spec().temperature_k())
            .collect();
        let hot: Vec<f64> = spec_temps.iter().map(|t| t + 15.0).collect();
        let mut cool_mgr = monitoring_manager(&a);
        let mut hot_mgr = monitoring_manager(&a);
        for _ in 0..12 {
            cool_mgr.step(YEAR_S / 2.0, &spec_temps, 1.2).unwrap();
            hot_mgr.step(YEAR_S / 2.0, &hot, 1.2).unwrap();
        }
        let p_cool = cool_mgr.failure_probability_now().unwrap();
        let p_hot = hot_mgr.failure_probability_now().unwrap();
        assert!(
            p_hot > 3.0 * p_cool,
            "hot {p_hot:.3e} should dwarf cool {p_cool:.3e}"
        );
    }

    #[test]
    fn throttle_engages_and_respects_hysteresis() {
        let a = analysis();
        // A budget tight enough that sustained turbo overruns it, but
        // loose enough for the nominal rung to hold.
        let policy = PolicyConfig {
            budget: 5e-6,
            service_life_s: 10.0 * YEAR_S,
            hysteresis: 0.8,
            levels: vec![
                DvfsLevel {
                    name: "turbo".to_string(),
                    vdd_cap_v: 1.26,
                    dt_when_capped_k: 0.0,
                },
                DvfsLevel {
                    name: "nominal".to_string(),
                    vdd_cap_v: 1.20,
                    dt_when_capped_k: -8.0,
                },
            ],
        };
        let mut mgr = ReliabilityManager::new(
            &a,
            Box::new(ClosedFormTech::nominal_45nm()),
            policy,
            ManagerConfig::default(),
        )
        .unwrap();
        let temps: Vec<f64> = a
            .blocks()
            .iter()
            .map(|b| b.spec().temperature_k())
            .collect();
        let mut levels = Vec::new();
        for _ in 0..120 {
            let r = mgr.step(YEAR_S / 12.0, &temps, 1.26).unwrap();
            levels.push(r.level);
        }
        // The throttle engaged...
        assert!(levels.contains(&1), "throttle never engaged");
        // ...the budget held...
        let final_p = mgr.failure_probability_now().unwrap();
        assert!(final_p <= 5e-6 * 1.05, "budget blown: P = {final_p:.3e}");
        // ...and the level sequence never chattered: no A→B→A flip
        // within consecutive steps.
        for w in levels.windows(3) {
            assert!(
                !(w[0] != w[1] && w[2] == w[0]),
                "throttle oscillated: {w:?}"
            );
        }
        assert!(
            mgr.transitions() <= 2,
            "too many transitions: {}",
            mgr.transitions()
        );
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let a = analysis();
        let temps: Vec<f64> = a
            .blocks()
            .iter()
            .map(|b| b.spec().temperature_k())
            .collect();
        let mut one = monitoring_manager(&a);
        for _ in 0..6 {
            one.step(YEAR_S, &temps, 1.2).unwrap();
        }
        // Checkpoint mid-life, restore into a fresh manager, continue.
        let json = one.damage().to_json();
        let mut two = monitoring_manager(&a);
        two.restore(DamageState::from_json(&json).unwrap()).unwrap();
        for _ in 0..4 {
            one.step(YEAR_S, &temps, 1.2).unwrap();
            two.step(YEAR_S, &temps, 1.2).unwrap();
        }
        let p1 = one.failure_probability_now().unwrap();
        let p2 = two.failure_probability_now().unwrap();
        assert_eq!(p1.to_bits(), p2.to_bits(), "{p1:e} vs {p2:e}");
        // Mismatched block counts are rejected.
        assert!(two.restore(DamageState::new(7)).is_err());
    }

    #[test]
    fn service_life_stays_on_grid() {
        // The sizing contract: a full service life at spec conditions
        // (and modestly above) never falls off the widened tables.
        let a = analysis();
        let mut mgr = monitoring_manager(&a);
        let hot: Vec<f64> = a
            .blocks()
            .iter()
            .map(|b| b.spec().temperature_k() + 10.0)
            .collect();
        for _ in 0..20 {
            mgr.step(YEAR_S / 2.0, &hot, 1.25).unwrap();
        }
        assert_eq!(mgr.off_grid_queries(), 0);
        let gamma_hi = mgr.tables().config().gamma_range.1;
        assert!(
            gamma_hi > HybridConfig::default().gamma_range.1,
            "tables were not widened: γ_hi = {gamma_hi}"
        );
    }

    #[test]
    fn repair_lowers_current_probability() {
        let a = analysis();
        let temps: Vec<f64> = a
            .blocks()
            .iter()
            .map(|b| b.spec().temperature_k())
            .collect();
        let mut mgr = monitoring_manager(&a);
        for _ in 0..10 {
            mgr.step(YEAR_S, &temps, 1.2).unwrap();
        }
        let before = mgr.failure_probability_now().unwrap();
        mgr.repair(0).unwrap();
        let after = mgr.failure_probability_now().unwrap();
        assert!(
            after < before,
            "repair should lower P: {after:.3e} vs {before:.3e}"
        );
        // ξ_0 = 0 ⇒ block 0 contributes nothing; the remainder is the
        // cache block alone.
        assert_eq!(mgr.damage().effective_ages()[0], 0.0);
        assert!(after > 0.0, "the unrepaired block still carries damage");
        assert!(mgr.repair(17).is_err());
    }

    #[test]
    fn grouped_composition_flows_through_monitoring() {
        use statobd_core::Composition;
        let wl = analysis();
        let grouped = analysis()
            .with_composition(Composition::uniform_spares(2, 1))
            .unwrap();
        let temps: Vec<f64> = wl
            .blocks()
            .iter()
            .map(|b| b.spec().temperature_k())
            .collect();
        let mut mgr_wl = monitoring_manager(&wl);
        let mut mgr_gr = monitoring_manager(&grouped);
        for _ in 0..10 {
            mgr_wl.step(YEAR_S, &temps, 1.2).unwrap();
            mgr_gr.step(YEAR_S, &temps, 1.2).unwrap();
        }
        let p_wl = mgr_wl.failure_probability_now().unwrap();
        let p_gr = mgr_gr.failure_probability_now().unwrap();
        // One spare over two blocks: the chip only fails when BOTH
        // blocks fail — orders of magnitude below weakest-link.
        assert!(
            p_gr < 1e-3 * p_wl,
            "grouped {p_gr:.3e} should be far below weakest-link {p_wl:.3e}"
        );
        // And it matches composing the same per-block table reads by hand.
        let ages = mgr_gr.damage().effective_ages().to_vec();
        let ps: Vec<f64> = ages
            .iter()
            .enumerate()
            .map(|(j, &xi)| {
                mgr_gr
                    .tables()
                    .block_failure_probability_at_age(j, xi, wl.blocks()[j].b_per_nm())
                    .unwrap()
            })
            .collect();
        let expected = Composition::uniform_spares(2, 1).compose(&ps);
        assert_eq!(p_gr.to_bits(), expected.to_bits());
    }

    #[test]
    fn step_rejects_bad_operating_points() {
        let a = analysis();
        let mut mgr = monitoring_manager(&a);
        assert!(mgr.step(1.0, &[350.0], 1.2).is_err());
        assert!(mgr.step(1.0, &[350.0, 340.0], -1.0).is_err());
        assert!(mgr.step(-1.0, &[350.0, 340.0], 1.2).is_err());
    }
}
