//! Piecewise-constant operating schedules, and their production from
//! per-phase power models through the thermal solver.

use crate::policy::PolicyConfig;
use crate::{ManagerError, Result};
use statobd_core::ChipSpec;
use statobd_num::impl_json_struct;
use statobd_thermal::{Floorplan, PowerModel, ThermalSolver};

/// One piecewise-constant operating phase: per-block temperatures and a
/// requested supply voltage, held for `duration_s`.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPhase {
    /// Display name ("compute", "memory", "idle", ...).
    pub name: String,
    /// Phase duration (s).
    pub duration_s: f64,
    /// Per-block worst-case temperature (K) during the phase, in chip
    /// block order.
    pub temps_k: Vec<f64>,
    /// Requested supply voltage (V); the manager's DVFS level may cap
    /// it.
    pub vdd_v: f64,
}

impl_json_struct!(OperatingPhase {
    name,
    duration_s,
    temps_k,
    vdd_v
});

impl OperatingPhase {
    /// Validates the phase against a block count.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] for a non-positive
    /// duration or voltage, a block-count mismatch, or a non-physical
    /// temperature.
    pub fn validate(&self, n_blocks: usize) -> Result<()> {
        if !(self.duration_s > 0.0) || !self.duration_s.is_finite() {
            return Err(ManagerError::InvalidParameter {
                detail: format!(
                    "phase '{}': duration must be positive, got {}",
                    self.name, self.duration_s
                ),
            });
        }
        if !(self.vdd_v > 0.0) {
            return Err(ManagerError::InvalidParameter {
                detail: format!(
                    "phase '{}': voltage must be positive, got {}",
                    self.name, self.vdd_v
                ),
            });
        }
        if self.temps_k.len() != n_blocks {
            return Err(ManagerError::InvalidParameter {
                detail: format!(
                    "phase '{}': {} temperatures for {} blocks",
                    self.name,
                    self.temps_k.len(),
                    n_blocks
                ),
            });
        }
        if let Some(&bad) = self.temps_k.iter().find(|t| !(**t > 0.0) || !t.is_finite()) {
            return Err(ManagerError::InvalidParameter {
                detail: format!("phase '{}': temperature {bad} K is not physical", self.name),
            });
        }
        Ok(())
    }
}

/// A design-independent phase description for schedule files: a uniform
/// temperature *offset* from each block's specified worst-case
/// temperature, plus the requested voltage. One schedule file therefore
/// works for any design.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Display name.
    pub name: String,
    /// Phase duration (s).
    pub duration_s: f64,
    /// Temperature offset (K) added to every block's spec temperature
    /// ("idle" phases run cooler, "turbo" phases hotter).
    pub dt_k: f64,
    /// Requested supply voltage (V).
    pub vdd_v: f64,
}

impl_json_struct!(PhaseSpec {
    name,
    duration_s,
    dt_k,
    vdd_v
});

impl PhaseSpec {
    /// Resolves the offset against a chip specification's per-block
    /// temperatures.
    pub fn resolve(&self, spec: &ChipSpec) -> OperatingPhase {
        OperatingPhase {
            name: self.name.clone(),
            duration_s: self.duration_s,
            temps_k: spec
                .blocks()
                .iter()
                .map(|b| b.temperature_k() + self.dt_k)
                .collect(),
            vdd_v: self.vdd_v,
        }
    }
}

/// The root of a `statobd manage` schedule file: the policy, the phase
/// pattern, and how to iterate it.
#[derive(Debug, Clone, PartialEq)]
pub struct ManageSpec {
    /// The reliability budget and DVFS ladder.
    pub policy: PolicyConfig,
    /// The phase pattern, applied in order.
    pub phases: Vec<PhaseSpec>,
    /// Manager invocations per phase (each phase is split into this many
    /// equal damage/decision steps).
    pub steps_per_phase: usize,
    /// How many times the phase pattern repeats over the service life.
    pub repeat: usize,
}

impl_json_struct!(ManageSpec {
    policy,
    phases,
    steps_per_phase,
    repeat
});

impl ManageSpec {
    /// Parses and validates a schedule file.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] for malformed JSON, an
    /// invalid policy, an empty phase list, zero steps/repeats, or a
    /// non-positive phase duration/voltage.
    pub fn from_json(json: &str) -> Result<Self> {
        let spec: ManageSpec =
            statobd_num::json::from_str(json).map_err(|e| ManagerError::InvalidParameter {
                detail: format!("schedule deserialization failed: {e}"),
            })?;
        spec.policy.validate()?;
        if spec.phases.is_empty() {
            return Err(ManagerError::InvalidParameter {
                detail: "schedule needs at least one phase".to_string(),
            });
        }
        if spec.steps_per_phase == 0 || spec.repeat == 0 {
            return Err(ManagerError::InvalidParameter {
                detail: "steps_per_phase and repeat must be positive".to_string(),
            });
        }
        for p in &spec.phases {
            if !(p.duration_s > 0.0) || !(p.vdd_v > 0.0) {
                return Err(ManagerError::InvalidParameter {
                    detail: format!("phase '{}': duration and voltage must be positive", p.name),
                });
            }
        }
        Ok(spec)
    }

    /// Serializes the schedule (the `statobd manage --template` output).
    pub fn to_json(&self) -> String {
        statobd_num::json::to_string_pretty(self)
    }
}

/// A phase given as a power model: the thermal solver turns it into the
/// per-block temperatures of an [`OperatingPhase`].
#[derive(Debug)]
pub struct ThermalPhase<'a> {
    /// Display name.
    pub name: String,
    /// Phase duration (s).
    pub duration_s: f64,
    /// The phase's power draw.
    pub power: &'a PowerModel,
    /// Requested supply voltage (V).
    pub vdd_v: f64,
}

/// Resolves a sequence of power-model phases into operating phases by
/// running the thermal solver — the coupling the paper's Sec. IV-A
/// profile analysis implies ("to ensure a correct operation throughout
/// the entire life time for any application profile").
///
/// Each phase's per-block temperature is the worst case over (a) its own
/// steady state and (b) the re-equilibration transient from the previous
/// phase's thermal state, so a hot phase's tail is charged to the cool
/// phase that follows it. The transient starts from the previous phase's
/// mean die temperature (a uniform-field approximation) and the
/// simulated window is clamped to a few vertical thermal time constants
/// `τ_v = r_package · c_vol · t_die` — die thermal equilibrium is
/// reached in milliseconds-to-seconds while phases last hours-to-months,
/// so simulating past a few `τ_v` only burns backward-Euler steps
/// without changing the worst case.
///
/// Temperatures are reported in floorplan block order; build the
/// [`ChipSpec`] from the same floorplan order so the phases line up.
///
/// # Errors
///
/// Returns [`ManagerError::InvalidParameter`] for an empty phase list or
/// non-positive durations, and propagates thermal-solve failures.
pub fn resolve_thermal_phases(
    solver: &ThermalSolver,
    floorplan: &Floorplan,
    phases: &[ThermalPhase<'_>],
) -> Result<Vec<OperatingPhase>> {
    if phases.is_empty() {
        return Err(ManagerError::InvalidParameter {
            detail: "need at least one thermal phase".to_string(),
        });
    }
    let cfg = solver.config();
    let tau_v = cfg.r_package * cfg.c_volumetric * cfg.die_thickness;
    let mut out = Vec::with_capacity(phases.len());
    let mut prev_mean_k: Option<f64> = None;
    for phase in phases {
        if !(phase.duration_s > 0.0) {
            return Err(ManagerError::InvalidParameter {
                detail: format!(
                    "thermal phase '{}': duration must be positive, got {}",
                    phase.name, phase.duration_s
                ),
            });
        }
        let steady = solver.solve(floorplan, phase.power)?;
        let mut temps_k: Vec<f64> = floorplan
            .blocks()
            .iter()
            .map(|b| steady.block_stats(b.rect()).max_k)
            .collect();
        if let Some(t0) = prev_mean_k {
            let window_s = phase.duration_s.min(8.0 * tau_v);
            let transient = solver.solve_transient(floorplan, phase.power, t0, window_s, 4)?;
            for (_, map) in &transient.snapshots {
                for (t, b) in temps_k.iter_mut().zip(floorplan.blocks()) {
                    *t = t.max(map.block_stats(b.rect()).max_k);
                }
            }
        }
        prev_mean_k = Some(steady.mean_k());
        out.push(OperatingPhase {
            name: phase.name.clone(),
            duration_s: phase.duration_s,
            temps_k,
            vdd_v: phase.vdd_v,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DvfsLevel;
    use statobd_thermal::{alpha_ev6_floorplan, alpha_ev6_power, ThermalConfig};

    #[test]
    fn phase_validation_catches_mismatches() {
        let phase = OperatingPhase {
            name: "p".to_string(),
            duration_s: 100.0,
            temps_k: vec![350.0, 340.0],
            vdd_v: 1.2,
        };
        assert!(phase.validate(2).is_ok());
        assert!(phase.validate(3).is_err());
        assert!(OperatingPhase {
            duration_s: 0.0,
            ..phase.clone()
        }
        .validate(2)
        .is_err());
        assert!(OperatingPhase {
            vdd_v: -1.0,
            ..phase.clone()
        }
        .validate(2)
        .is_err());
        assert!(OperatingPhase {
            temps_k: vec![350.0, f64::NAN],
            ..phase
        }
        .validate(2)
        .is_err());
    }

    #[test]
    fn manage_spec_round_trips_and_validates() {
        let spec = ManageSpec {
            policy: PolicyConfig {
                budget: 1e-6,
                service_life_s: 1.6e8,
                hysteresis: 0.8,
                levels: vec![
                    DvfsLevel {
                        name: "turbo".to_string(),
                        vdd_cap_v: 1.26,
                        dt_when_capped_k: 0.0,
                    },
                    DvfsLevel {
                        name: "nominal".to_string(),
                        vdd_cap_v: 1.20,
                        dt_when_capped_k: -6.0,
                    },
                ],
            },
            phases: vec![
                PhaseSpec {
                    name: "typical".to_string(),
                    duration_s: 2.63e6,
                    dt_k: 0.0,
                    vdd_v: 1.2,
                },
                PhaseSpec {
                    name: "turbo".to_string(),
                    duration_s: 2.63e6,
                    dt_k: 10.0,
                    vdd_v: 1.26,
                },
            ],
            steps_per_phase: 1,
            repeat: 30,
        };
        let restored = ManageSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(restored, spec);
        // Validation failures.
        assert!(ManageSpec::from_json("nope").is_err());
        let mut bad = spec.clone();
        bad.phases.clear();
        assert!(ManageSpec::from_json(&bad.to_json()).is_err());
        let mut bad = spec.clone();
        bad.steps_per_phase = 0;
        assert!(ManageSpec::from_json(&bad.to_json()).is_err());
        let mut bad = spec.clone();
        bad.phases[0].duration_s = -1.0;
        assert!(ManageSpec::from_json(&bad.to_json()).is_err());
        let mut bad = spec;
        bad.policy.budget = 0.0;
        assert!(ManageSpec::from_json(&bad.to_json()).is_err());
    }

    #[test]
    fn thermal_phases_charge_hot_tails_to_the_next_phase() {
        let fp = alpha_ev6_floorplan().unwrap();
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        });
        let hot = alpha_ev6_power().unwrap();
        // A cool phase: same shape, one third the power.
        let mut cool = PowerModel::new();
        for b in fp.blocks() {
            let p = hot.block_power(b.name()).unwrap();
            cool.set_block_power(
                b.name(),
                statobd_thermal::BlockPower::new(p.dynamic_w() / 3.0, p.leakage_ref_w() / 3.0)
                    .unwrap(),
            )
            .unwrap();
        }
        let phases = [
            ThermalPhase {
                name: "hot".to_string(),
                duration_s: 3600.0,
                power: &hot,
                vdd_v: 1.2,
            },
            ThermalPhase {
                name: "cool".to_string(),
                duration_s: 3600.0,
                power: &cool,
                vdd_v: 1.1,
            },
        ];
        let resolved = resolve_thermal_phases(&solver, &fp, &phases).unwrap();
        assert_eq!(resolved.len(), 2);
        assert_eq!(resolved[0].temps_k.len(), fp.blocks().len());
        // The cool phase inherits part of the hot phase's tail: its
        // worst-case temperatures exceed its own steady state...
        let cool_steady = solver.solve(&fp, &cool).unwrap();
        let steady_max: Vec<f64> = fp
            .blocks()
            .iter()
            .map(|b| cool_steady.block_stats(b.rect()).max_k)
            .collect();
        assert!(resolved[1]
            .temps_k
            .iter()
            .zip(&steady_max)
            .all(|(got, steady)| got >= steady));
        assert!(resolved[1]
            .temps_k
            .iter()
            .zip(&steady_max)
            .any(|(got, steady)| *got > steady + 0.5));
        // ...but stays below the hot phase's.
        assert!(resolved[1]
            .temps_k
            .iter()
            .zip(&resolved[0].temps_k)
            .all(|(cool, hot)| cool <= hot));
        // Empty input is rejected.
        assert!(resolve_thermal_phases(&solver, &fp, &[]).is_err());
    }
}
