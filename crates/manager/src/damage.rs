//! Per-block effective-age damage accumulation.

use crate::{ManagerError, Result};
use statobd_num::impl_json_struct;

/// Accumulated OBD damage: one effective age `ξ_j` per block plus the
/// wall-clock time it covers.
///
/// The effective age is the dimensionless integral
/// `ξ_j = ∫₀ᵗ dt' / α_j(T(t'), V(t'))`, advanced phase by phase under a
/// piecewise-constant operating history. Because the per-block failure
/// probability depends on the history only through `γ_j = ln ξ_j` (the
/// hybrid tables' abscissa), this vector is the *complete* reliability
/// state of a deployed chip — which is why it is the unit of
/// checkpoint/restore ([`DamageState::to_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DamageState {
    /// Per-block effective age `ξ_j` (dimensionless).
    xi: Vec<f64>,
    /// Wall-clock seconds of operation the ages account for.
    elapsed_s: f64,
}

impl_json_struct!(DamageState { xi, elapsed_s });

impl DamageState {
    /// A pristine chip with `n_blocks` undamaged blocks.
    pub fn new(n_blocks: usize) -> Self {
        DamageState {
            xi: vec![0.0; n_blocks],
            elapsed_s: 0.0,
        }
    }

    /// Number of blocks tracked.
    pub fn n_blocks(&self) -> usize {
        self.xi.len()
    }

    /// The per-block effective ages `ξ_j`.
    pub fn effective_ages(&self) -> &[f64] {
        &self.xi
    }

    /// Wall-clock seconds of operation accumulated so far.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Advances every block by `dξ_j = dt / α_j` under the
    /// per-block Weibull scales `alphas_s` of the current operating
    /// point.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] for a negative or
    /// non-finite `dt_s`, a mismatched `alphas_s` length, or a
    /// non-positive scale.
    pub fn advance(&mut self, dt_s: f64, alphas_s: &[f64]) -> Result<()> {
        if !(dt_s >= 0.0) || !dt_s.is_finite() {
            return Err(ManagerError::InvalidParameter {
                detail: format!("time step must be finite and non-negative, got {dt_s}"),
            });
        }
        if alphas_s.len() != self.xi.len() {
            return Err(ManagerError::InvalidParameter {
                detail: format!(
                    "got {} Weibull scales for {} blocks",
                    alphas_s.len(),
                    self.xi.len()
                ),
            });
        }
        if let Some(&bad) = alphas_s.iter().find(|a| !(**a > 0.0) || !a.is_finite()) {
            return Err(ManagerError::InvalidParameter {
                detail: format!("Weibull scales must be positive and finite, got {bad}"),
            });
        }
        for (xi, &alpha) in self.xi.iter_mut().zip(alphas_s) {
            *xi += dt_s / alpha;
        }
        self.elapsed_s += dt_s;
        Ok(())
    }

    /// Records a repair event: block `block` is swapped for a pristine
    /// spare (or repaired in place), re-baselining its effective age to
    /// zero. Wall-clock time is untouched — the rest of the chip keeps
    /// its accumulated damage.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] for an out-of-range
    /// block index.
    pub fn repair(&mut self, block: usize) -> Result<()> {
        let n = self.xi.len();
        let xi = self
            .xi
            .get_mut(block)
            .ok_or_else(|| ManagerError::InvalidParameter {
                detail: format!("repair of block {block}, but the chip has {n}"),
            })?;
        *xi = 0.0;
        Ok(())
    }

    /// The ages this state would reach after `extra_s` more seconds at
    /// the operating point described by `alphas_s` — the policy layer's
    /// end-of-service projection (does not mutate the state).
    pub fn projected_ages(&self, extra_s: f64, alphas_s: &[f64]) -> Vec<f64> {
        self.xi
            .iter()
            .zip(alphas_s)
            .map(|(&xi, &alpha)| xi + extra_s / alpha)
            .collect()
    }

    /// Serializes the state to JSON for checkpointing.
    pub fn to_json(&self) -> String {
        statobd_num::json::to_string(self)
    }

    /// Restores a checkpointed state, validating that every age is
    /// finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] for malformed JSON or
    /// physically impossible contents.
    pub fn from_json(json: &str) -> Result<Self> {
        let state: DamageState =
            statobd_num::json::from_str(json).map_err(|e| ManagerError::InvalidParameter {
                detail: format!("damage-state deserialization failed: {e}"),
            })?;
        if state.xi.iter().any(|x| !(*x >= 0.0) || !x.is_finite()) {
            return Err(ManagerError::InvalidParameter {
                detail: "checkpoint contains a negative or non-finite effective age".to_string(),
            });
        }
        if !(state.elapsed_s >= 0.0) || !state.elapsed_s.is_finite() {
            return Err(ManagerError::InvalidParameter {
                detail: format!(
                    "checkpoint elapsed time must be non-negative, got {}",
                    state.elapsed_s
                ),
            });
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates_age_and_elapsed_time() {
        let mut d = DamageState::new(2);
        d.advance(100.0, &[50.0, 200.0]).unwrap();
        d.advance(100.0, &[50.0, 200.0]).unwrap();
        assert_eq!(d.effective_ages(), &[4.0, 1.0]);
        assert_eq!(d.elapsed_s(), 200.0);
        // Constant-point identity: ξ = t/α.
        assert_eq!(d.effective_ages()[0], d.elapsed_s() / 50.0);
    }

    #[test]
    fn repair_rebaselines_one_block_only() {
        let mut d = DamageState::new(3);
        d.advance(100.0, &[10.0, 20.0, 50.0]).unwrap();
        d.repair(1).unwrap();
        assert_eq!(d.effective_ages(), &[10.0, 0.0, 2.0]);
        // Elapsed wall-clock time is not a per-block quantity.
        assert_eq!(d.elapsed_s(), 100.0);
        // The repaired block re-ages from zero.
        d.advance(40.0, &[10.0, 20.0, 50.0]).unwrap();
        assert_eq!(d.effective_ages()[1], 2.0);
        assert!(d.repair(3).is_err());
    }

    #[test]
    fn projection_does_not_mutate() {
        let mut d = DamageState::new(1);
        d.advance(10.0, &[10.0]).unwrap();
        let proj = d.projected_ages(90.0, &[10.0]);
        assert_eq!(proj, vec![10.0]);
        assert_eq!(d.effective_ages(), &[1.0]);
    }

    #[test]
    fn rejects_bad_steps() {
        let mut d = DamageState::new(2);
        assert!(d.advance(-1.0, &[1.0, 1.0]).is_err());
        assert!(d.advance(f64::NAN, &[1.0, 1.0]).is_err());
        assert!(d.advance(1.0, &[1.0]).is_err());
        assert!(d.advance(1.0, &[1.0, 0.0]).is_err());
        assert!(d.advance(1.0, &[1.0, -2.0]).is_err());
        // Failed advances leave the state untouched.
        assert_eq!(d.effective_ages(), &[0.0, 0.0]);
        assert_eq!(d.elapsed_s(), 0.0);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut d = DamageState::new(3);
        d.advance(2.63e6, &[4.0e14, 1.3e13, 7.7e15]).unwrap();
        let restored = DamageState::from_json(&d.to_json()).unwrap();
        assert_eq!(restored, d);
        // Bit-exactness matters: a checkpoint/restore cycle must not
        // perturb the monitored probability.
        for (a, b) in restored.effective_ages().iter().zip(d.effective_ages()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rejects_corrupt_checkpoints() {
        assert!(DamageState::from_json("not json").is_err());
        assert!(DamageState::from_json(r#"{"xi": [-1.0], "elapsed_s": 0.0}"#).is_err());
        assert!(DamageState::from_json(r#"{"xi": [1.0], "elapsed_s": -5.0}"#).is_err());
    }
}
