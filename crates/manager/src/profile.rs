//! A library of named mission profiles — the stress histories a real
//! reliability program runs its population against.
//!
//! Each profile is a sequence of design-independent [`PhaseSpec`]s
//! (temperature *offsets* from each block's specified worst-case
//! temperature plus a requested supply voltage), so one profile resolves
//! against any chip specification. The set covers the qualification and
//! field archetypes: JEDEC-style high/low-temperature operating life
//! stress, a datacenter duty cycle, automotive thermal cycling, and a
//! burn-in screen followed by field use (cf. the in-field repair and
//! time-zero/time-dependent variability studies in PAPERS.md).

use crate::schedule::PhaseSpec;
use crate::{ManagerError, Result};
use statobd_core::edit_distance;

/// Seconds per (Julian-ish) year used by the field profiles.
pub const YEAR_S: f64 = 3.156e7;

/// Seconds per hour.
const HOUR_S: f64 = 3600.0;

/// A named mission profile: an ordered list of operating phases covering
/// one mission (a qualification stress or a service life).
#[derive(Debug, Clone, PartialEq)]
pub struct MissionProfile {
    name: &'static str,
    description: &'static str,
    phases: Vec<PhaseSpec>,
}

impl MissionProfile {
    /// Names of all built-in profiles, in menu order.
    pub const NAMES: [&'static str; 5] =
        ["htol", "ltol", "datacenter", "automotive", "burn_in_field"];

    /// All built-in profiles, in [`MissionProfile::NAMES`] order.
    pub fn all() -> Vec<MissionProfile> {
        Self::NAMES
            .iter()
            .map(|n| Self::named(n).expect("built-in names parse"))
            .collect()
    }

    /// Looks a profile up by name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::InvalidParameter`] for an unknown name,
    /// with the closest valid name as a did-you-mean suggestion —
    /// mirroring `statobd_core::EngineKind::parse`.
    pub fn named(name: &str) -> Result<MissionProfile> {
        match Self::NAMES
            .iter()
            .find(|n| n.eq_ignore_ascii_case(name))
            .copied()
        {
            Some("htol") => Ok(Self::htol()),
            Some("ltol") => Ok(Self::ltol()),
            Some("datacenter") => Ok(Self::datacenter()),
            Some("automotive") => Ok(Self::automotive()),
            Some("burn_in_field") => Ok(Self::burn_in_field()),
            _ => {
                let lower = name.to_ascii_lowercase();
                let nearest = Self::NAMES
                    .into_iter()
                    .min_by_key(|n| edit_distance(&lower, n))
                    .unwrap_or("datacenter");
                let all = Self::NAMES.join(", ");
                Err(ManagerError::InvalidParameter {
                    detail: format!(
                        "unknown profile '{name}' (did you mean '{nearest}'? one of: {all})"
                    ),
                })
            }
        }
    }

    /// JEDEC-style high-temperature operating life: 1000 h at an elevated
    /// junction temperature and stress voltage.
    pub fn htol() -> MissionProfile {
        MissionProfile {
            name: "htol",
            description: "1000 h high-temperature operating life stress (+40 K, 1.32 V)",
            phases: vec![phase("stress", 1000.0 * HOUR_S, 40.0, 1.32)],
        }
    }

    /// Low-temperature operating life: 1000 h cold at stress voltage —
    /// exercises the opposite corner of the α(T, V) surface.
    pub fn ltol() -> MissionProfile {
        MissionProfile {
            name: "ltol",
            description: "1000 h low-temperature operating life stress (-55 K, 1.32 V)",
            phases: vec![phase("stress", 1000.0 * HOUR_S, -55.0, 1.32)],
        }
    }

    /// Ten service years of a datacenter duty cycle: mostly near-nominal
    /// load with idle troughs and turbo peaks.
    pub fn datacenter() -> MissionProfile {
        let mission = 10.0 * YEAR_S;
        MissionProfile {
            name: "datacenter",
            description: "10 y datacenter duty cycle (40% idle / 45% nominal / 15% peak)",
            phases: vec![
                phase("idle", 0.40 * mission, -15.0, 1.08),
                phase("nominal", 0.45 * mission, 0.0, 1.20),
                phase("peak", 0.15 * mission, 20.0, 1.26),
            ],
        }
    }

    /// Fifteen service years of an automotive thermal-cycling mix: long
    /// parked spans at retention voltage punctuated by driving and
    /// hot-idle excursions.
    pub fn automotive() -> MissionProfile {
        let mission = 15.0 * YEAR_S;
        MissionProfile {
            name: "automotive",
            description:
                "15 y automotive cycle (70% parked / 15% city / 10% highway / 5% hot idle)",
            phases: vec![
                phase("parked", 0.70 * mission, -45.0, 0.55),
                phase("city", 0.15 * mission, 5.0, 1.20),
                phase("highway", 0.10 * mission, 15.0, 1.20),
                phase("hot_idle", 0.05 * mission, 35.0, 1.26),
            ],
        }
    }

    /// A 48 h burn-in screen at elevated temperature and voltage followed
    /// by ten field years at nominal conditions.
    pub fn burn_in_field() -> MissionProfile {
        MissionProfile {
            name: "burn_in_field",
            description: "48 h burn-in screen (+50 K, 1.38 V) then 10 y nominal field use",
            phases: vec![
                phase("burn_in", 48.0 * HOUR_S, 50.0, 1.38),
                phase("field", 10.0 * YEAR_S, 0.0, 1.20),
            ],
        }
    }

    /// The profile's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line human description.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The ordered phase specifications.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Total mission duration (s).
    pub fn mission_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// Total mission duration (h) — the denominator of FIT conversions.
    pub fn mission_hours(&self) -> f64 {
        self.mission_s() / HOUR_S
    }
}

fn phase(name: &str, duration_s: f64, dt_k: f64, vdd_v: f64) -> PhaseSpec {
    PhaseSpec {
        name: name.to_string(),
        duration_s,
        dt_k,
        vdd_v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_resolve_and_validate() {
        let mut spec = statobd_core::ChipSpec::new();
        spec.add_block(
            statobd_core::BlockSpec::new("core", 40_000.0, 40_000, 368.15, 1.2, vec![(0, 1.0)])
                .unwrap(),
        )
        .unwrap();
        for p in MissionProfile::all() {
            assert!(!p.phases().is_empty(), "{} has phases", p.name());
            assert!(p.mission_s() > 0.0);
            for ps in p.phases() {
                let op = ps.resolve(&spec);
                op.validate(spec.blocks().len())
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", p.name(), ps.name));
            }
        }
    }

    #[test]
    fn named_is_case_insensitive_and_total() {
        for name in MissionProfile::NAMES {
            assert_eq!(MissionProfile::named(name).unwrap().name(), name);
            let upper = name.to_ascii_uppercase();
            assert_eq!(MissionProfile::named(&upper).unwrap().name(), name);
        }
    }

    #[test]
    fn unknown_profile_suggests_nearest() {
        let err = MissionProfile::named("datacentre").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("did you mean 'datacenter'"), "{msg}");
        assert!(msg.contains("burn_in_field"), "menu missing: {msg}");
    }

    #[test]
    fn mission_durations_are_sane() {
        assert!((MissionProfile::htol().mission_hours() - 1000.0).abs() < 1e-9);
        assert!((MissionProfile::datacenter().mission_s() - 10.0 * YEAR_S).abs() < 1e-6);
        assert!((MissionProfile::automotive().mission_s() - 15.0 * YEAR_S).abs() < 1e-6);
        let bif = MissionProfile::burn_in_field();
        assert!(bif.phases()[0].duration_s < bif.phases()[1].duration_s);
    }
}
