//! The full benchmark pipeline: floorplan → power → thermal →
//! [`ChipSpec`].

use crate::synthetic::synthetic_floorplan;
use crate::{Benchmark, Result};
use statobd_core::{BlockSpec, ChipSpec};
use statobd_thermal::{
    alpha_ev6_floorplan, alpha_ev6_power, many_core_floorplan, many_core_power, Floorplan,
    PowerModel, TemperatureMap, ThermalConfig, ThermalSolver,
};
use statobd_variation::GridSpec;

/// Configuration of the design-construction pipeline.
#[derive(Debug, Clone, Copy)]
pub struct DesignConfig {
    /// Correlation-grid resolution per axis (the paper's default is
    /// 25 × 25; Table V sweeps it).
    pub correlation_grid_side: usize,
    /// Thermal solver configuration.
    pub thermal: ThermalConfig,
    /// Supply voltage applied to every block (V).
    pub vdd_v: f64,
    /// Normalized gate area per device (minimum-device-area units).
    pub area_per_device: f64,
}

impl Default for DesignConfig {
    fn default() -> Self {
        DesignConfig {
            correlation_grid_side: statobd_core::params::DEFAULT_GRID_SIDE,
            thermal: ThermalConfig::default(),
            vdd_v: statobd_core::params::NOMINAL_VDD_V,
            area_per_device: 1.0,
        }
    }
}

/// A fully constructed benchmark: the reliability spec plus the substrate
/// artifacts it was derived from.
#[derive(Debug)]
pub struct BuiltDesign {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// The reliability-analysis chip specification.
    pub spec: ChipSpec,
    /// The variation-model grid matched to the die dimensions.
    pub grid: GridSpec,
    /// The floorplan.
    pub floorplan: Floorplan,
    /// The power model.
    pub power: PowerModel,
    /// The solved temperature map.
    pub map: TemperatureMap,
}

/// Builds a benchmark design end to end: generates (or loads) the
/// floorplan and power model, solves the steady-state thermal profile,
/// extracts block-level worst-case temperatures, distributes devices over
/// the correlation grids by area overlap, and assembles the
/// [`ChipSpec`].
///
/// # Errors
///
/// Propagates substrate failures ([`crate::CircuitError`]).
pub fn build_design(benchmark: Benchmark, config: &DesignConfig) -> Result<BuiltDesign> {
    let (floorplan, power) = match benchmark {
        Benchmark::C6 => (alpha_ev6_floorplan()?, alpha_ev6_power()?),
        Benchmark::ManyCore16 => {
            // A third of the cores busy — compact hot spots (Fig. 1b).
            let fp = many_core_floorplan()?;
            let pm = many_core_power(&[1, 5, 6, 10, 14], 6.5)?;
            (fp, pm)
        }
        synthetic => synthetic_floorplan(synthetic.n_blocks(), synthetic.seed())?,
    };

    let solver = ThermalSolver::new(config.thermal);
    let map = solver.solve(&floorplan, &power)?;

    let grid = GridSpec::new(
        floorplan.die_w(),
        floorplan.die_h(),
        config.correlation_grid_side,
        config.correlation_grid_side,
    )
    .map_err(|e| crate::CircuitError::InvalidParameter {
        detail: format!("correlation grid: {e}"),
    })?;

    // Device budget: distribute over blocks proportional to area, with
    // largest-remainder rounding so the total matches exactly.
    let total_devices = benchmark.target_devices();
    let total_area: f64 = floorplan.blocks().iter().map(|b| b.rect().area()).sum();
    let mut quotas: Vec<(usize, u64, f64)> = floorplan
        .blocks()
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let exact = total_devices as f64 * b.rect().area() / total_area;
            (i, exact.floor() as u64, exact.fract())
        })
        .collect();
    let assigned: u64 = quotas.iter().map(|&(_, c, _)| c).sum();
    let mut remainder = total_devices - assigned;
    quotas.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite fractions"));
    for q in quotas.iter_mut() {
        if remainder == 0 {
            break;
        }
        q.1 += 1;
        remainder -= 1;
    }
    quotas.sort_by_key(|&(i, _, _)| i);

    let mut spec = ChipSpec::new();
    for (block, &(_, m_devices, _)) in floorplan.blocks().iter().zip(&quotas) {
        let r = block.rect();
        let stats = map.block_stats(r);
        // Device distribution over correlation grids by area overlap.
        let overlaps = grid.rect_overlaps(r.x(), r.y(), r.x1(), r.y1());
        let overlap_total: f64 = overlaps.iter().map(|&(_, a)| a).sum();
        let weights: Vec<(usize, f64)> = overlaps
            .iter()
            .map(|&(g, a)| (g, a / overlap_total))
            .collect();
        spec.add_block(
            BlockSpec::new(
                block.name(),
                m_devices as f64 * config.area_per_device,
                m_devices.max(2),
                stats.max_k,
                config.vdd_v,
                weights,
            )
            .map_err(crate::CircuitError::from)?,
        )
        .map_err(crate::CircuitError::from)?;
    }

    Ok(BuiltDesign {
        benchmark,
        spec,
        grid,
        floorplan,
        power,
        map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> DesignConfig {
        DesignConfig {
            correlation_grid_side: 10,
            thermal: ThermalConfig {
                nx: 32,
                ny: 32,
                ..ThermalConfig::default()
            },
            ..DesignConfig::default()
        }
    }

    #[test]
    fn c1_builds_with_exact_device_count() {
        let built = build_design(Benchmark::C1, &quick_config()).unwrap();
        assert_eq!(built.spec.total_devices(), 50_000);
        assert_eq!(built.spec.n_blocks(), 6);
    }

    #[test]
    fn c6_is_the_alpha_processor() {
        let built = build_design(Benchmark::C6, &quick_config()).unwrap();
        assert_eq!(built.spec.n_blocks(), 15);
        assert_eq!(built.spec.total_devices(), 840_000);
        // Temperature spread echoes Fig. 1.
        let spread = built.map.max_k() - built.map.min_k();
        assert!((10.0..50.0).contains(&spread), "spread {spread:.1} K");
        // The intexec block must be among the hottest.
        let intexec = built
            .spec
            .blocks()
            .iter()
            .find(|b| b.name() == "intexec")
            .unwrap();
        let max_t = built.spec.max_temperature_k().unwrap();
        assert!((intexec.temperature_k() - max_t).abs() < 1e-9);
    }

    #[test]
    fn block_grid_weights_sum_to_one() {
        let built = build_design(Benchmark::C2, &quick_config()).unwrap();
        for b in built.spec.blocks() {
            let s: f64 = b.grid_weights().iter().map(|&(_, w)| w).sum();
            assert!((s - 1.0).abs() < 1e-9, "block {}: {s}", b.name());
        }
    }

    #[test]
    fn devices_scale_with_benchmark() {
        let c1 = build_design(Benchmark::C1, &quick_config()).unwrap();
        let c4 = build_design(Benchmark::C4, &quick_config()).unwrap();
        assert!(c4.spec.total_devices() > 3 * c1.spec.total_devices());
    }

    #[test]
    fn deterministic_rebuild() {
        let a = build_design(Benchmark::C3, &quick_config()).unwrap();
        let b = build_design(Benchmark::C3, &quick_config()).unwrap();
        assert_eq!(a.spec, b.spec);
    }

    #[test]
    fn many_core_has_sixteen_blocks() {
        let built = build_design(Benchmark::ManyCore16, &quick_config()).unwrap();
        assert_eq!(built.spec.n_blocks(), 16);
        // Active cores are hotter than idle ones.
        let active = built
            .spec
            .blocks()
            .iter()
            .find(|b| b.name() == "core_5")
            .unwrap();
        let idle = built
            .spec
            .blocks()
            .iter()
            .find(|b| b.name() == "core_3")
            .unwrap();
        assert!(active.temperature_k() > idle.temperature_k() + 3.0);
    }

    #[test]
    fn temperatures_are_physical() {
        for bench in Benchmark::table_iii() {
            let built = build_design(bench, &quick_config()).unwrap();
            for b in built.spec.blocks() {
                let t = b.temperature_k();
                assert!(
                    (318.0..420.0).contains(&t),
                    "{bench}: block {} at {t:.1} K",
                    b.name()
                );
            }
        }
    }
}
