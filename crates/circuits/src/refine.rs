//! Temperature-uniform block refinement (the paper's footnote 1: a
//! "block" may be "some sub-block that can ensure the assumption of
//! uniform temperature").
//!
//! The BLOD projection assumes each block's devices share one operating
//! temperature; a large architectural block sitting on a thermal gradient
//! violates that. [`refine_blocks`] recursively quadrisects any block
//! whose internal temperature spread exceeds a threshold, producing the
//! finer temperature-uniform partition the analysis needs.

use crate::Result;
use statobd_thermal::{Floorplan, Rect, TemperatureMap};

/// A refined (possibly split) analysis block.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinedBlock {
    /// Name: the parent block's name, with `/q<k>` suffixes per split.
    pub name: String,
    /// Geometry of the refined block.
    pub rect: Rect,
    /// Worst-case (max) temperature over the refined block (K).
    pub worst_k: f64,
    /// Internal temperature spread of the refined block (K).
    pub spread_k: f64,
}

/// Recursively splits the floorplan's blocks until every piece has an
/// internal temperature spread at most `max_spread_k` (or `max_depth`
/// quadrisections have been applied).
///
/// # Errors
///
/// Returns [`crate::CircuitError::InvalidParameter`] for a non-positive
/// spread threshold.
pub fn refine_blocks(
    floorplan: &Floorplan,
    map: &TemperatureMap,
    max_spread_k: f64,
    max_depth: usize,
) -> Result<Vec<RefinedBlock>> {
    if !(max_spread_k > 0.0) {
        return Err(crate::CircuitError::InvalidParameter {
            detail: format!("max_spread_k must be positive, got {max_spread_k}"),
        });
    }
    let mut out = Vec::new();
    for block in floorplan.blocks() {
        refine_one(
            block.name(),
            *block.rect(),
            map,
            max_spread_k,
            max_depth,
            &mut out,
        )?;
    }
    Ok(out)
}

fn refine_one(
    name: &str,
    rect: Rect,
    map: &TemperatureMap,
    max_spread_k: f64,
    depth_left: usize,
    out: &mut Vec<RefinedBlock>,
) -> Result<()> {
    let stats = map.block_stats(&rect);
    let spread = stats.max_k - stats.min_k;
    if spread <= max_spread_k || depth_left == 0 {
        out.push(RefinedBlock {
            name: name.to_string(),
            rect,
            worst_k: stats.max_k,
            spread_k: spread,
        });
        return Ok(());
    }
    // Quadrisect.
    let hw = rect.w() / 2.0;
    let hh = rect.h() / 2.0;
    for (k, (dx, dy)) in [(0.0, 0.0), (hw, 0.0), (0.0, hh), (hw, hh)]
        .into_iter()
        .enumerate()
    {
        let child =
            Rect::new(rect.x() + dx, rect.y() + dy, hw, hh).map_err(crate::CircuitError::from)?;
        refine_one(
            &format!("{name}/q{k}"),
            child,
            map,
            max_spread_k,
            depth_left - 1,
            out,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use statobd_thermal::{
        Block, BlockPower, Floorplan, PowerModel, Rect, ThermalConfig, ThermalSolver,
    };

    /// One big block with a hot corner: a strong internal gradient.
    fn gradient_setup() -> (Floorplan, TemperatureMap) {
        let mut fp = Floorplan::new(0.016, 0.016).unwrap();
        fp.add_block(Block::new("big", Rect::new(0.0, 0.0, 0.016, 0.016).unwrap()).unwrap())
            .unwrap();
        fp.add_block(Block::new("hot", Rect::new(0.001, 0.001, 0.002, 0.002).unwrap()).unwrap())
            .ok(); // overlapping heater block
        let mut pm = PowerModel::new();
        pm.set_block_power("big", BlockPower::new(8.0, 0.0).unwrap())
            .unwrap();
        pm.set_block_power("hot", BlockPower::new(10.0, 0.0).unwrap())
            .unwrap();
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 32,
            ny: 32,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        (fp, map)
    }

    #[test]
    fn gradient_block_gets_split() {
        let (fp, map) = gradient_setup();
        let spread = map.max_k() - map.min_k();
        assert!(spread > 5.0, "setup should have a gradient, got {spread}");
        let refined = refine_blocks(&fp, &map, 3.0, 4).unwrap();
        assert!(refined.len() > fp.blocks().len(), "no splitting happened");
        // Every refined piece honours the spread bound (depth permitting).
        for r in &refined {
            assert!(
                r.spread_k <= 3.0 + 1e-9 || r.name.matches("/q").count() >= 4,
                "block {} has spread {:.2}",
                r.name,
                r.spread_k
            );
        }
    }

    #[test]
    fn children_tile_the_parent() {
        let (fp, map) = gradient_setup();
        let refined = refine_blocks(&fp, &map, 3.0, 3).unwrap();
        let big_children: f64 = refined
            .iter()
            .filter(|r| r.name.starts_with("big"))
            .map(|r| r.rect.area())
            .sum();
        assert!((big_children - 0.016 * 0.016).abs() < 1e-12);
    }

    #[test]
    fn uniform_block_is_untouched() {
        let mut fp = Floorplan::new(0.01, 0.01).unwrap();
        fp.add_block(Block::new("b", Rect::new(0.0, 0.0, 0.01, 0.01).unwrap()).unwrap())
            .unwrap();
        let mut pm = PowerModel::new();
        pm.set_block_power("b", BlockPower::new(5.0, 0.0).unwrap())
            .unwrap();
        let solver = ThermalSolver::new(ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        });
        let map = solver.solve(&fp, &pm).unwrap();
        // Uniform power density: negligible spread.
        let refined = refine_blocks(&fp, &map, 2.0, 4).unwrap();
        assert_eq!(refined.len(), 1);
        assert_eq!(refined[0].name, "b");
    }

    #[test]
    fn depth_limit_is_respected() {
        let (fp, map) = gradient_setup();
        let refined = refine_blocks(&fp, &map, 0.01, 2).unwrap();
        for r in &refined {
            assert!(r.name.matches("/q").count() <= 2, "{}", r.name);
        }
    }

    #[test]
    fn rejects_bad_threshold() {
        let (fp, map) = gradient_setup();
        assert!(refine_blocks(&fp, &map, 0.0, 2).is_err());
    }
}
