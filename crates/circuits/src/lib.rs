//! The benchmark designs of the paper's evaluation (Sec. V).
//!
//! Six designs: C1–C5 are synthetic circuits from 50 K to 0.5 M devices
//! (deterministically generated), and C6 is an Alpha-processor-class
//! design with 15 functional modules and ~0.84 M transistors. A 16-core
//! many-core design (the second panel of the paper's Fig. 1) is included
//! as an extra.
//!
//! [`build_design`] runs the full substrate pipeline for a benchmark:
//! floorplan → architectural power → steady-state thermal solve →
//! block-level worst-case temperatures → [`statobd_core::ChipSpec`] with
//! the device distribution over the correlation grids.
//!
//! # Example
//!
//! ```
//! use statobd_circuits::{build_design, Benchmark, DesignConfig};
//!
//! let built = build_design(Benchmark::C1, &DesignConfig::default())?;
//! assert_eq!(built.spec.total_devices(), Benchmark::C1.target_devices());
//! // The thermal profile shows Fig. 1 structure: a hot-to-cool spread.
//! assert!(built.map.max_k() - built.map.min_k() > 5.0);
//! # Ok::<(), statobd_circuits::CircuitError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod refine;
mod synthetic;

pub use builder::{build_design, BuiltDesign, DesignConfig};
pub use refine::{refine_blocks, RefinedBlock};
pub use synthetic::synthetic_floorplan;

use statobd_core::CoreError;
use statobd_thermal::ThermalError;

/// The benchmark designs of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Synthetic, 50 K devices, 6 blocks.
    C1,
    /// Synthetic, 80 K devices, 8 blocks.
    C2,
    /// Synthetic, 0.1 M devices, 10 blocks.
    C3,
    /// Synthetic, 0.2 M devices, 12 blocks.
    C4,
    /// Synthetic, 0.5 M devices, 14 blocks.
    C5,
    /// Alpha-processor-class design, 15 functional modules, ~0.84 M
    /// transistors.
    C6,
    /// Extra: the 16-core many-core design of Fig. 1(b).
    ManyCore16,
}

impl Benchmark {
    /// Every bundled design, in order: the six Table III circuits plus the
    /// 16-core many-core extra.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::C1,
        Benchmark::C2,
        Benchmark::C3,
        Benchmark::C4,
        Benchmark::C5,
        Benchmark::C6,
        Benchmark::ManyCore16,
    ];

    /// Parses a benchmark name (case-insensitive: `C1`..`C6`, `MC16`).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] listing the valid names
    /// if `s` matches none of them.
    pub fn parse(s: &str) -> Result<Self> {
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
                CircuitError::InvalidParameter {
                    detail: format!("unknown benchmark '{s}' (one of: {})", names.join(", ")),
                }
            })
    }

    /// The six designs of Table III, in order.
    pub fn table_iii() -> [Benchmark; 6] {
        [
            Benchmark::C1,
            Benchmark::C2,
            Benchmark::C3,
            Benchmark::C4,
            Benchmark::C5,
            Benchmark::C6,
        ]
    }

    /// The display name used in the tables.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::C1 => "C1",
            Benchmark::C2 => "C2",
            Benchmark::C3 => "C3",
            Benchmark::C4 => "C4",
            Benchmark::C5 => "C5",
            Benchmark::C6 => "C6",
            Benchmark::ManyCore16 => "MC16",
        }
    }

    /// Total device count of the design.
    pub fn target_devices(&self) -> u64 {
        match self {
            Benchmark::C1 => 50_000,
            Benchmark::C2 => 80_000,
            Benchmark::C3 => 100_000,
            Benchmark::C4 => 200_000,
            Benchmark::C5 => 500_000,
            Benchmark::C6 => 840_000,
            Benchmark::ManyCore16 => 640_000,
        }
    }

    /// Number of temperature-uniform blocks.
    pub fn n_blocks(&self) -> usize {
        match self {
            Benchmark::C1 => 6,
            Benchmark::C2 => 8,
            Benchmark::C3 => 10,
            Benchmark::C4 => 12,
            Benchmark::C5 => 14,
            Benchmark::C6 => 15,
            Benchmark::ManyCore16 => 16,
        }
    }

    /// Deterministic seed for the synthetic generator.
    pub fn seed(&self) -> u64 {
        match self {
            Benchmark::C1 => 101,
            Benchmark::C2 => 102,
            Benchmark::C3 => 103,
            Benchmark::C4 => 104,
            Benchmark::C5 => 105,
            Benchmark::C6 => 106,
            Benchmark::ManyCore16 => 107,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl statobd_num::json::ToJson for Benchmark {
    fn to_json(&self) -> statobd_num::json::Json {
        statobd_num::json::Json::String(self.name().to_string())
    }
}

impl statobd_num::json::FromJson for Benchmark {
    fn from_json(
        json: &statobd_num::json::Json,
    ) -> std::result::Result<Self, statobd_num::json::JsonError> {
        let name = json
            .as_str()
            .ok_or_else(|| statobd_num::json::JsonError::new("benchmark: expected a string"))?;
        Benchmark::parse(name).map_err(|e| statobd_num::json::JsonError::new(e.to_string()))
    }
}

/// Errors from the benchmark construction pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Description of the offending parameter.
        detail: String,
    },
    /// The thermal substrate failed.
    Thermal(ThermalError),
    /// The reliability-spec construction failed.
    Core(CoreError),
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::InvalidParameter { detail } => write!(f, "invalid parameter: {detail}"),
            CircuitError::Thermal(e) => write!(f, "thermal substrate failed: {e}"),
            CircuitError::Core(e) => write!(f, "spec construction failed: {e}"),
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Thermal(e) => Some(e),
            CircuitError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ThermalError> for CircuitError {
    fn from(e: ThermalError) -> Self {
        CircuitError::Thermal(e)
    }
}

impl From<CoreError> for CircuitError {
    fn from(e: CoreError) -> Self {
        CircuitError::Core(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CircuitError>;

#[cfg(test)]
mod tests {
    use super::*;
    use statobd_num::json::{FromJson, ToJson};

    #[test]
    fn parse_accepts_every_name_case_insensitively() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::parse(b.name()).unwrap(), b);
            assert_eq!(Benchmark::parse(&b.name().to_lowercase()).unwrap(), b);
        }
    }

    #[test]
    fn parse_lists_the_menu_on_failure() {
        let err = Benchmark::parse("C9").unwrap_err().to_string();
        assert!(err.contains("C9") && err.contains("MC16"), "{err}");
    }

    #[test]
    fn benchmark_json_round_trips_as_its_name() {
        for b in Benchmark::ALL {
            let json = b.to_json();
            assert_eq!(json.as_str(), Some(b.name()));
            assert_eq!(Benchmark::from_json(&json).unwrap(), b);
        }
        assert!(Benchmark::from_json(&statobd_num::json::Json::Number(3.0)).is_err());
    }
}
