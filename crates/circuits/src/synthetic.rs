//! Deterministic synthetic floorplan and power generation for C1–C5.
//!
//! The paper's C1–C5 "were automatically generated"; this module plays
//! that role with a seeded generator so every build of a benchmark is
//! identical. Blocks tile the die in rows with varying widths; a minority
//! of blocks are "hot" (high power density), the rest near-idle — giving
//! the compact-hot-spot structure of the paper's Fig. 1.

use crate::Result;
use statobd_num::rng::Rng;
use statobd_num::rng::Xoshiro256pp;
use statobd_thermal::{Block, BlockPower, Floorplan, PowerModel, Rect};

/// Die edge for the synthetic designs (m).
const DIE_EDGE: f64 = 0.016;

/// Generates a deterministic synthetic floorplan with `n_blocks` blocks
/// tiling a 16 mm × 16 mm die, plus a matching power model.
///
/// Roughly a quarter of the blocks (at least one) are "hot": their dynamic
/// power density is ~2.5× the idle blocks'.
///
/// # Errors
///
/// Returns [`crate::CircuitError::InvalidParameter`] if `n_blocks == 0`.
pub fn synthetic_floorplan(n_blocks: usize, seed: u64) -> Result<(Floorplan, PowerModel)> {
    if n_blocks == 0 {
        return Err(crate::CircuitError::InvalidParameter {
            detail: "need at least one block".to_string(),
        });
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut fp = Floorplan::new(DIE_EDGE, DIE_EDGE)?;
    let mut pm = PowerModel::new();

    // Partition blocks into rows: rows ≈ sqrt(n), last row takes the
    // remainder.
    let rows = (n_blocks as f64).sqrt().floor().max(1.0) as usize;
    let per_row = n_blocks / rows;
    let mut remaining = n_blocks;
    let mut row_counts = Vec::with_capacity(rows);
    for r in 0..rows {
        let count = if r + 1 == rows { remaining } else { per_row };
        row_counts.push(count);
        remaining -= count;
    }

    // Choose hot blocks: every 4th index, at least one.
    let n_hot = (n_blocks / 4).max(1);
    let hot: Vec<usize> = (0..n_hot).map(|i| (i * n_blocks) / n_hot).collect();

    let row_h = DIE_EDGE / rows as f64;
    let mut block_idx = 0usize;
    for (r, &count) in row_counts.iter().enumerate() {
        // Random widths normalized to the die edge.
        let weights: Vec<f64> = (0..count).map(|_| rng.gen_range(0.6..1.6)).collect();
        let total: f64 = weights.iter().sum();
        let mut x = 0.0;
        for (c, &w) in weights.iter().enumerate() {
            let width = if c + 1 == count {
                DIE_EDGE - x // absorb rounding so the row tiles exactly
            } else {
                DIE_EDGE * w / total
            };
            let rect = Rect::new(x, r as f64 * row_h, width, row_h)?;
            let name = format!("b{block_idx}");
            fp.add_block(Block::new(name.clone(), rect)?)?;

            let area_mm2 = rect.area() * 1e6;
            let is_hot = hot.contains(&block_idx);
            let density = if is_hot {
                rng.gen_range(0.38..0.52) // W/mm²
            } else {
                rng.gen_range(0.14..0.22)
            };
            let dyn_w = density * area_mm2;
            pm.set_block_power(name, BlockPower::new(dyn_w, dyn_w * 0.12)?)?;

            x += width;
            block_idx += 1;
        }
    }
    Ok((fp, pm))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_die_exactly() {
        for n in [1, 3, 6, 8, 10, 14] {
            let (fp, _) = synthetic_floorplan(n, 42).unwrap();
            assert_eq!(fp.blocks().len(), n);
            assert!(
                (fp.total_block_area() - fp.die_area()).abs() < 1e-12,
                "n={n}: {} vs {}",
                fp.total_block_area(),
                fp.die_area()
            );
            assert_eq!(fp.max_overlap(), 0.0, "n={n} overlaps");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (fp1, pm1) = synthetic_floorplan(8, 7).unwrap();
        let (fp2, pm2) = synthetic_floorplan(8, 7).unwrap();
        assert_eq!(fp1, fp2);
        assert_eq!(pm1, pm2);
        let (fp3, _) = synthetic_floorplan(8, 8).unwrap();
        assert_ne!(fp1, fp3);
    }

    #[test]
    fn has_hot_and_cool_blocks() {
        let (fp, pm) = synthetic_floorplan(8, 1).unwrap();
        let mut densities: Vec<f64> = fp
            .blocks()
            .iter()
            .map(|b| pm.block_power(b.name()).unwrap().dynamic_w() / (b.rect().area() * 1e6))
            .collect();
        densities.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Max density should be well above the min.
        assert!(densities.last().unwrap() / densities.first().unwrap() > 1.6);
    }

    #[test]
    fn rejects_zero_blocks() {
        assert!(synthetic_floorplan(0, 1).is_err());
    }
}
