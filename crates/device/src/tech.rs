//! Technology models for the Weibull OBD parameters `α(T, V)` and `b(T)`.
//!
//! Calibration targets (from the interrelation studies of Wu et al. and
//! Degraeve et al. that the paper builds on):
//!
//! * *temperature acceleration*: roughly one decade of characteristic life
//!   per ~30 K near operating conditions for ultra-thin oxides — the same
//!   magnitude the paper quotes when it warns that ignoring a 30 °C
//!   on-chip spread misestimates reliability by an order of magnitude;
//! * *voltage acceleration*: steep power law (`α ∝ V^−n`, `n ≈ 40` near
//!   1 V for 2 nm-class oxides);
//! * *Weibull slope*: `β = b·x ≈ 1.4` at the 2.2 nm nominal thickness,
//!   decreasing slightly with temperature.

use crate::{DeviceError, Result, BOLTZMANN_EV};
use statobd_num::impl_json_struct;
use statobd_num::interp::LinearInterp;

/// Temperature/voltage-dependent OBD technology parameters.
///
/// Implementors provide the Weibull scale `α` (seconds, for a minimum-area
/// device) and the thickness-slope coefficient `b` (1/nm) of eq. (4).
pub trait ObdTechnology: std::fmt::Debug {
    /// Characteristic life `α` (s) of a minimum-area device at temperature
    /// `t_k` (K) and stress/supply voltage `vdd_v` (V).
    fn alpha(&self, t_k: f64, vdd_v: f64) -> f64;

    /// Thickness coefficient `b` (1/nm) of the Weibull slope `β = b·x` at
    /// temperature `t_k` (K).
    fn b(&self, t_k: f64) -> f64;
}

/// Closed-form technology model:
///
/// ```text
/// α(T, V) = α_ref · exp[ (Ea/k)·(1/T − 1/T_ref) ] · (V/V_ref)^(−n)
/// b(T)    = b_ref · (1 − c_b·(T − T_ref))
/// ```
///
/// # Example
///
/// ```
/// use statobd_device::{ClosedFormTech, ObdTechnology};
///
/// let tech = ClosedFormTech::nominal_45nm();
/// // Hotter → shorter characteristic life.
/// assert!(tech.alpha(373.15, 1.2) < tech.alpha(343.15, 1.2));
/// // Higher voltage → shorter life.
/// assert!(tech.alpha(353.15, 1.3) < tech.alpha(353.15, 1.2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedFormTech {
    alpha_ref_s: f64,
    t_ref_k: f64,
    v_ref: f64,
    ea_ev: f64,
    voltage_exp: f64,
    b_ref: f64,
    b_temp_coeff: f64,
}

impl_json_struct!(ClosedFormTech {
    alpha_ref_s,
    t_ref_k,
    v_ref,
    ea_ev,
    voltage_exp,
    b_ref,
    b_temp_coeff,
});

impl ClosedFormTech {
    /// Creates a closed-form technology model.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for non-positive
    /// `alpha_ref_s`, `t_ref_k`, `v_ref` or `b_ref`, or negative `ea_ev`.
    pub fn new(
        alpha_ref_s: f64,
        t_ref_k: f64,
        v_ref: f64,
        ea_ev: f64,
        voltage_exp: f64,
        b_ref: f64,
        b_temp_coeff: f64,
    ) -> Result<Self> {
        for (name, v) in [
            ("alpha_ref_s", alpha_ref_s),
            ("t_ref_k", t_ref_k),
            ("v_ref", v_ref),
            ("b_ref", b_ref),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(DeviceError::InvalidParameter {
                    detail: format!("{name} must be positive, got {v}"),
                });
            }
        }
        if ea_ev < 0.0 || !ea_ev.is_finite() {
            return Err(DeviceError::InvalidParameter {
                detail: format!("ea_ev must be non-negative, got {ea_ev}"),
            });
        }
        Ok(ClosedFormTech {
            alpha_ref_s,
            t_ref_k,
            v_ref,
            ea_ev,
            voltage_exp,
            b_ref,
            b_temp_coeff,
        })
    }

    /// Representative 45 nm-class parameters for a 2.2 nm oxide at
    /// `V_ref = 1.2 V`, `T_ref = 72 °C`:
    ///
    /// * `Ea = 0.48 eV`, which makes the *failure probability* (hazard)
    ///   change by one order of magnitude per ≈30 K — the calibration the
    ///   paper quotes for the impact of across-die temperature spread,
    /// * `n = 40` voltage power law,
    /// * `b = 0.8 nm⁻¹` → Weibull slope `β ≈ 1.76` at nominal thickness,
    /// * `α_ref = 4×10¹⁴ s`, which places chip-level 1-per-million
    ///   lifetimes of ~10⁵-device designs near 10 years.
    pub fn nominal_45nm() -> Self {
        ClosedFormTech {
            alpha_ref_s: 4.0e14,
            t_ref_k: 345.15,
            v_ref: 1.2,
            ea_ev: 0.48,
            voltage_exp: 40.0,
            b_ref: 0.8,
            b_temp_coeff: 5.0e-4,
        }
    }

    /// Reference temperature (K).
    pub fn t_ref_k(&self) -> f64 {
        self.t_ref_k
    }

    /// Reference voltage (V).
    pub fn v_ref(&self) -> f64 {
        self.v_ref
    }

    /// Effective activation energy (eV).
    pub fn ea_ev(&self) -> f64 {
        self.ea_ev
    }
}

impl ObdTechnology for ClosedFormTech {
    fn alpha(&self, t_k: f64, vdd_v: f64) -> f64 {
        debug_assert!(t_k > 0.0 && vdd_v > 0.0, "invalid operating point");
        let temp_factor = ((self.ea_ev / BOLTZMANN_EV) * (1.0 / t_k - 1.0 / self.t_ref_k)).exp();
        let volt_factor = (vdd_v / self.v_ref).powf(-self.voltage_exp);
        self.alpha_ref_s * temp_factor * volt_factor
    }

    fn b(&self, t_k: f64) -> f64 {
        self.b_ref * (1.0 - self.b_temp_coeff * (t_k - self.t_ref_k))
    }
}

/// Lookup-table technology model: `ln α(T)` and `b(T)` sampled on a
/// temperature axis with linear interpolation, plus the closed-form
/// voltage power law.
///
/// This is the "look-up tables w.r.t. temperature for a given process"
/// variant the paper mentions, and what a fab would actually hand over
/// after stress characterization.
#[derive(Debug, Clone)]
pub struct TableTech {
    ln_alpha: LinearInterp,
    b_table: LinearInterp,
    v_ref: f64,
    voltage_exp: f64,
}

impl TableTech {
    /// Builds a table by sampling another technology model over
    /// `[t_lo_k, t_hi_k]` with `points` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if the range is invalid
    /// or `points < 2`.
    pub fn from_model<M: ObdTechnology>(
        model: &M,
        t_lo_k: f64,
        t_hi_k: f64,
        points: usize,
        v_ref: f64,
        voltage_exp: f64,
    ) -> Result<Self> {
        if !(t_lo_k > 0.0) || !(t_hi_k > t_lo_k) || points < 2 {
            return Err(DeviceError::InvalidParameter {
                detail: format!(
                    "need 0 < t_lo < t_hi and points >= 2, got [{t_lo_k}, {t_hi_k}] x {points}"
                ),
            });
        }
        if !(v_ref > 0.0) {
            return Err(DeviceError::InvalidParameter {
                detail: format!("v_ref must be positive, got {v_ref}"),
            });
        }
        let ts: Vec<f64> = (0..points)
            .map(|i| t_lo_k + (t_hi_k - t_lo_k) * i as f64 / (points - 1) as f64)
            .collect();
        let ln_alphas: Vec<f64> = ts.iter().map(|&t| model.alpha(t, v_ref).ln()).collect();
        let bs: Vec<f64> = ts.iter().map(|&t| model.b(t)).collect();
        let ln_alpha = LinearInterp::new(ts.clone(), ln_alphas).map_err(|e| {
            DeviceError::InvalidParameter {
                detail: format!("alpha table: {e}"),
            }
        })?;
        let b_table = LinearInterp::new(ts, bs).map_err(|e| DeviceError::InvalidParameter {
            detail: format!("b table: {e}"),
        })?;
        Ok(TableTech {
            ln_alpha,
            b_table,
            v_ref,
            voltage_exp,
        })
    }

    /// The temperature axis of the table.
    pub fn temperatures(&self) -> &[f64] {
        self.ln_alpha.xs()
    }
}

impl ObdTechnology for TableTech {
    fn alpha(&self, t_k: f64, vdd_v: f64) -> f64 {
        let base = self.ln_alpha.eval(t_k).exp();
        base * (vdd_v / self.v_ref).powf(-self.voltage_exp)
    }

    fn b(&self, t_k: f64) -> f64 {
        self.b_table.eval(t_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hazard_decade_per_thirty_kelvin() {
        // The paper's calibration: a 30 °C spread changes the failure
        // probability (hazard ∝ α^{−β}) by an order of magnitude.
        let tech = ClosedFormTech::nominal_45nm();
        let alpha_ratio = tech.alpha(343.15, 1.2) / tech.alpha(373.15, 1.2);
        let beta = tech.b(358.15) * 2.2;
        let hazard_ratio = alpha_ratio.powf(beta);
        assert!(
            (7.0..14.0).contains(&hazard_ratio),
            "hazard decade ratio {hazard_ratio}"
        );
    }

    #[test]
    fn reference_point_recovers_alpha_ref() {
        let tech = ClosedFormTech::nominal_45nm();
        assert!((tech.alpha(345.15, 1.2) - 4.0e14).abs() / 4.0e14 < 1e-12);
    }

    #[test]
    fn voltage_power_law() {
        let tech = ClosedFormTech::nominal_45nm();
        let r = tech.alpha(345.15, 1.32) / tech.alpha(345.15, 1.2);
        let expected = (1.1f64).powf(-40.0);
        assert!((r - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn weibull_slope_in_thin_oxide_range() {
        // β for 2.2 nm-class oxides sits in the ~1.3–1.9 range reported
        // by the stress-characterization literature.
        let tech = ClosedFormTech::nominal_45nm();
        let beta = tech.b(345.15) * 2.2;
        assert!((1.3..1.9).contains(&beta), "beta {beta}");
        // b decreases with temperature.
        assert!(tech.b(380.0) < tech.b(320.0));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ClosedFormTech::new(-1.0, 345.0, 1.2, 0.8, 40.0, 0.65, 0.0).is_err());
        assert!(ClosedFormTech::new(1e16, 0.0, 1.2, 0.8, 40.0, 0.65, 0.0).is_err());
        assert!(ClosedFormTech::new(1e16, 345.0, 1.2, -0.8, 40.0, 0.65, 0.0).is_err());
        assert!(ClosedFormTech::new(1e16, 345.0, 1.2, 0.8, 40.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn table_matches_closed_form_at_nodes_and_between() {
        let cf = ClosedFormTech::nominal_45nm();
        let table = TableTech::from_model(&cf, 300.0, 400.0, 101, 1.2, 40.0).unwrap();
        for &t in &[300.0, 333.0, 345.15, 399.99] {
            let rel = (table.alpha(t, 1.2) - cf.alpha(t, 1.2)).abs() / cf.alpha(t, 1.2);
            assert!(rel < 2e-3, "alpha at {t}: rel err {rel}");
            assert!((table.b(t) - cf.b(t)).abs() < 1e-6, "b at {t}");
        }
        // Voltage dependence carried over.
        let r = table.alpha(350.0, 1.3) / table.alpha(350.0, 1.2);
        let expected = (1.3f64 / 1.2).powf(-40.0);
        assert!((r - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn table_clamps_outside_range() {
        let cf = ClosedFormTech::nominal_45nm();
        let table = TableTech::from_model(&cf, 320.0, 380.0, 61, 1.2, 40.0).unwrap();
        // Clamped: queries outside return the edge values.
        assert_eq!(table.alpha(200.0, 1.2), table.alpha(320.0, 1.2));
        assert_eq!(table.b(500.0), table.b(380.0));
    }

    #[test]
    fn table_rejects_bad_ranges() {
        let cf = ClosedFormTech::nominal_45nm();
        assert!(TableTech::from_model(&cf, 380.0, 320.0, 10, 1.2, 40.0).is_err());
        assert!(TableTech::from_model(&cf, 320.0, 380.0, 1, 1.2, 40.0).is_err());
        assert!(TableTech::from_model(&cf, 320.0, 380.0, 10, 0.0, 40.0).is_err());
    }
}
