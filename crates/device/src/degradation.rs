//! Cell-based percolation degradation simulator (reproduces paper Fig. 3).
//!
//! The oxide under a stressed gate is modeled as a grid of percolation
//! columns, each `cells_per_column` trap sites deep. Stress generates traps
//! as a Poisson process uniformly over the columns; the first column to
//! fill forms a conducting path — *soft breakdown* (SBD). Gate leakage then
//! grows monotonically (progressive wear-out of the percolation path)
//! until it exceeds the hard-breakdown threshold — *hard breakdown* (HBD).
//!
//! The observable is the gate-leakage trace versus stress time, matching
//! the measurement the paper shows for a 45 nm device stressed at 3.1 V /
//! 100 °C: a flat direct-tunneling baseline with a small trap-assisted
//! drift, a 10–20× SBD jump, and a continuous ramp to HBD.

use crate::{DeviceError, Result};
use statobd_num::impl_json_struct;
use statobd_num::rng::{sample_exp1, Rng};

/// Configuration of the percolation degradation simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercolationConfig {
    /// Number of percolation columns under the gate.
    pub columns: usize,
    /// Trap sites per column (the critical defect count for a path).
    pub cells_per_column: usize,
    /// Total trap-generation rate over the gate (traps/s).
    pub trap_rate_per_s: f64,
    /// Pre-breakdown (direct tunneling) gate leakage (A).
    pub baseline_leakage_a: f64,
    /// Extra trap-assisted leakage per generated trap (A).
    pub per_trap_leakage_a: f64,
    /// Leakage multiplication at the SBD event (the paper cites 10–20×).
    pub sbd_jump_factor: f64,
    /// Post-SBD wear-out: leakage grows as `(1 + Δt/τ)^p`.
    pub wearout_tau_s: f64,
    /// Post-SBD wear-out power-law exponent.
    pub wearout_exponent: f64,
    /// HBD is declared when leakage exceeds this multiple of the baseline.
    pub hbd_threshold_factor: f64,
}

impl_json_struct!(PercolationConfig {
    columns,
    cells_per_column,
    trap_rate_per_s,
    baseline_leakage_a,
    per_trap_leakage_a,
    sbd_jump_factor,
    wearout_tau_s,
    wearout_exponent,
    hbd_threshold_factor,
});

impl Default for PercolationConfig {
    fn default() -> Self {
        // Calibrated to a 45 nm-class device stressed at 3.1 V / 100 °C:
        // SBD within ~1e3–1e5 s of stress, HBD within a decade after.
        PercolationConfig {
            columns: 400,
            cells_per_column: 2,
            trap_rate_per_s: 0.02,
            baseline_leakage_a: 2.0e-9,
            per_trap_leakage_a: 4.0e-12,
            sbd_jump_factor: 15.0,
            wearout_tau_s: 3.0e3,
            wearout_exponent: 1.6,
            hbd_threshold_factor: 1.0e3,
        }
    }
}

impl PercolationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] on non-physical values.
    pub fn validate(&self) -> Result<()> {
        if self.columns == 0 || self.cells_per_column == 0 {
            return Err(DeviceError::InvalidParameter {
                detail: "columns and cells_per_column must be positive".to_string(),
            });
        }
        for (name, v) in [
            ("trap_rate_per_s", self.trap_rate_per_s),
            ("baseline_leakage_a", self.baseline_leakage_a),
            ("sbd_jump_factor", self.sbd_jump_factor),
            ("wearout_tau_s", self.wearout_tau_s),
            ("wearout_exponent", self.wearout_exponent),
            ("hbd_threshold_factor", self.hbd_threshold_factor),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(DeviceError::InvalidParameter {
                    detail: format!("{name} must be positive, got {v}"),
                });
            }
        }
        if self.per_trap_leakage_a < 0.0 {
            return Err(DeviceError::InvalidParameter {
                detail: "per_trap_leakage_a must be non-negative".to_string(),
            });
        }
        if self.hbd_threshold_factor <= self.sbd_jump_factor {
            return Err(DeviceError::InvalidParameter {
                detail: "hbd_threshold_factor must exceed sbd_jump_factor".to_string(),
            });
        }
        Ok(())
    }
}

/// A simulated gate-leakage trace with its breakdown events.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageTrace {
    /// Sample times (s), strictly increasing.
    pub times_s: Vec<f64>,
    /// Gate leakage (A) at each sample time.
    pub leakage_a: Vec<f64>,
    /// Soft-breakdown time (s).
    pub t_sbd_s: f64,
    /// Hard-breakdown time (s).
    pub t_hbd_s: f64,
    /// Traps generated up to SBD.
    pub traps_at_sbd: usize,
}

impl_json_struct!(LeakageTrace {
    times_s,
    leakage_a,
    t_sbd_s,
    t_hbd_s,
    traps_at_sbd,
});

/// The percolation degradation simulator.
#[derive(Debug, Clone)]
pub struct DegradationSimulator {
    config: PercolationConfig,
}

impl DegradationSimulator {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Propagates [`PercolationConfig::validate`].
    pub fn new(config: PercolationConfig) -> Result<Self> {
        config.validate()?;
        Ok(DegradationSimulator { config })
    }

    /// The configuration.
    pub fn config(&self) -> &PercolationConfig {
        &self.config
    }

    /// Runs one stress experiment, sampling the leakage at
    /// `samples_per_decade` log-spaced points from `t_start_s` until HBD.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for a non-positive start
    /// time or zero sampling density.
    ///
    /// # Example
    ///
    /// ```
    /// use statobd_device::{DegradationSimulator, PercolationConfig};
    ///
    /// let sim = DegradationSimulator::new(PercolationConfig::default())?;
    /// let mut rng = statobd_num::rng::Xoshiro256pp::seed_from_u64(3);
    /// let trace = sim.simulate(&mut rng, 1.0, 20)?;
    /// assert!(trace.t_sbd_s < trace.t_hbd_s);
    /// # Ok::<(), statobd_device::DeviceError>(())
    /// ```
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        t_start_s: f64,
        samples_per_decade: usize,
    ) -> Result<LeakageTrace> {
        if !(t_start_s > 0.0) || samples_per_decade == 0 {
            return Err(DeviceError::InvalidParameter {
                detail: format!(
                    "need t_start > 0 and samples_per_decade > 0, got {t_start_s}, {samples_per_decade}"
                ),
            });
        }
        let cfg = &self.config;

        // Phase 1: Poisson trap generation until one column percolates.
        let mut counts = vec![0u32; cfg.columns];
        let mut t = 0.0;
        let mut traps = 0usize;
        let mut trap_times = Vec::new();
        let t_sbd;
        loop {
            t += sample_exp1(rng) / cfg.trap_rate_per_s;
            let col = rng.gen_index(cfg.columns);
            counts[col] += 1;
            traps += 1;
            trap_times.push(t);
            if counts[col] as usize >= cfg.cells_per_column {
                t_sbd = t;
                break;
            }
        }

        // Phase 2: post-SBD wear-out to HBD. Leakage right after SBD jumps
        // by sbd_jump_factor and grows as a power law until the HBD
        // threshold.
        let i_sbd =
            cfg.baseline_leakage_a * cfg.sbd_jump_factor + traps as f64 * cfg.per_trap_leakage_a;
        let i_hbd = cfg.baseline_leakage_a * cfg.hbd_threshold_factor;
        // (1 + Δt/τ)^p = i_hbd / i_sbd  ⇒  Δt = τ ((i_hbd/i_sbd)^(1/p) − 1)
        let dt_hbd = cfg.wearout_tau_s * ((i_hbd / i_sbd).powf(1.0 / cfg.wearout_exponent) - 1.0);
        let t_hbd = t_sbd + dt_hbd.max(0.0);

        // Sample the trace on a log-time axis through slightly past HBD.
        let leakage_at = |time: f64| -> f64 {
            if time < t_sbd {
                let traps_so_far = trap_times.partition_point(|&tt| tt <= time);
                cfg.baseline_leakage_a + traps_so_far as f64 * cfg.per_trap_leakage_a
            } else {
                let ramp = (1.0 + (time - t_sbd) / cfg.wearout_tau_s).powf(cfg.wearout_exponent);
                (i_sbd * ramp).min(i_hbd * 1.5)
            }
        };
        let decades = (t_hbd * 1.2 / t_start_s).log10().max(0.1);
        let n_samples = (decades * samples_per_decade as f64).ceil() as usize + 1;
        let mut times = Vec::with_capacity(n_samples);
        let mut currents = Vec::with_capacity(n_samples);
        for i in 0..n_samples {
            let time = t_start_s * 10f64.powf(decades * i as f64 / (n_samples - 1).max(1) as f64);
            times.push(time);
            currents.push(leakage_at(time));
        }

        Ok(LeakageTrace {
            times_s: times,
            leakage_a: currents,
            t_sbd_s: t_sbd,
            t_hbd_s: t_hbd,
            traps_at_sbd: traps,
        })
    }

    /// Monte-Carlo estimate of the SBD-time Weibull slope: simulates
    /// `n_samples` breakdown times and fits `ln(−ln(1−F))` against `ln t`
    /// by least squares.
    ///
    /// Percolation theory predicts a slope near
    /// `cells_per_column · (shape correction)` — the link between the
    /// physical model and the Weibull abstraction used by the chip
    /// analysis.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `n_samples < 8`.
    pub fn estimate_weibull_slope<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_samples: usize,
    ) -> Result<f64> {
        if n_samples < 8 {
            return Err(DeviceError::InvalidParameter {
                detail: format!("need at least 8 samples, got {n_samples}"),
            });
        }
        let cfg = &self.config;
        let mut times: Vec<f64> = (0..n_samples)
            .map(|_| {
                let mut counts = vec![0u32; cfg.columns];
                let mut t = 0.0;
                loop {
                    t += sample_exp1(rng) / cfg.trap_rate_per_s;
                    let col = rng.gen_index(cfg.columns);
                    counts[col] += 1;
                    if counts[col] as usize >= cfg.cells_per_column {
                        return t;
                    }
                }
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        // Median-rank Weibull plot + least squares slope.
        let n = times.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for (i, &t) in times.iter().enumerate() {
            let f = (i as f64 + 0.7) / (n + 0.4);
            let x = t.ln();
            let y = (-(1.0 - f).ln()).ln();
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        Ok((n * sxy - sx * sy) / (n * sxx - sx * sx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statobd_num::rng::Xoshiro256pp;

    #[test]
    fn trace_shows_sbd_then_hbd() {
        let sim = DegradationSimulator::new(PercolationConfig::default()).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let trace = sim.simulate(&mut rng, 1.0, 16).unwrap();
        assert!(trace.t_sbd_s > 0.0);
        assert!(trace.t_hbd_s > trace.t_sbd_s);
        assert!(!trace.times_s.is_empty());
        assert_eq!(trace.times_s.len(), trace.leakage_a.len());
    }

    #[test]
    fn leakage_is_monotone_nondecreasing() {
        let sim = DegradationSimulator::new(PercolationConfig::default()).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let trace = sim.simulate(&mut rng, 1.0, 24).unwrap();
        for w in trace.leakage_a.windows(2) {
            assert!(w[1] >= w[0] - 1e-18, "leakage decreased: {w:?}");
        }
    }

    #[test]
    fn sbd_jump_is_ten_to_twenty_fold() {
        let cfg = PercolationConfig::default();
        let sim = DegradationSimulator::new(cfg).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let trace = sim.simulate(&mut rng, 1.0, 48).unwrap();
        // Leakage just before vs just after SBD.
        let before = trace
            .times_s
            .iter()
            .zip(&trace.leakage_a)
            .filter(|(t, _)| **t < trace.t_sbd_s)
            .map(|(_, i)| *i)
            .next_back()
            .expect("pre-SBD samples");
        let after = trace
            .times_s
            .iter()
            .zip(&trace.leakage_a)
            .find(|(t, _)| **t >= trace.t_sbd_s)
            .map(|(_, i)| *i)
            .expect("post-SBD samples");
        let jump = after / before;
        assert!((5.0..40.0).contains(&jump), "SBD jump {jump}");
    }

    #[test]
    fn hbd_reaches_threshold() {
        let cfg = PercolationConfig::default();
        let sim = DegradationSimulator::new(cfg).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let trace = sim.simulate(&mut rng, 1.0, 24).unwrap();
        let max_leak = trace.leakage_a.iter().cloned().fold(0.0, f64::max);
        assert!(max_leak >= cfg.baseline_leakage_a * cfg.hbd_threshold_factor * 0.9);
    }

    #[test]
    fn weibull_slope_reflects_critical_defect_count() {
        // More cells per column (higher critical defect density) → steeper
        // Weibull slope; this is the qualitative trend of the percolation
        // model the paper's eq. (4) abstracts.
        let mut rng = Xoshiro256pp::seed_from_u64(100);
        let shallow = DegradationSimulator::new(PercolationConfig {
            cells_per_column: 2,
            ..PercolationConfig::default()
        })
        .unwrap();
        let deep = DegradationSimulator::new(PercolationConfig {
            cells_per_column: 6,
            ..PercolationConfig::default()
        })
        .unwrap();
        let s_shallow = shallow.estimate_weibull_slope(&mut rng, 400).unwrap();
        let s_deep = deep.estimate_weibull_slope(&mut rng, 400).unwrap();
        assert!(
            s_deep > s_shallow,
            "slope should grow with critical defect count ({s_shallow} vs {s_deep})"
        );
        assert!(s_shallow > 0.5);
    }

    #[test]
    fn config_validation() {
        assert!(DegradationSimulator::new(PercolationConfig {
            columns: 0,
            ..PercolationConfig::default()
        })
        .is_err());
        assert!(DegradationSimulator::new(PercolationConfig {
            hbd_threshold_factor: 10.0,
            sbd_jump_factor: 15.0,
            ..PercolationConfig::default()
        })
        .is_err());
        assert!(DegradationSimulator::new(PercolationConfig {
            trap_rate_per_s: 0.0,
            ..PercolationConfig::default()
        })
        .is_err());
    }

    #[test]
    fn simulate_rejects_bad_sampling() {
        let sim = DegradationSimulator::new(PercolationConfig::default()).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        assert!(sim.simulate(&mut rng, 0.0, 10).is_err());
        assert!(sim.simulate(&mut rng, 1.0, 0).is_err());
    }
}
