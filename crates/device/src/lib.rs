//! Device-level gate-oxide breakdown (OBD) modeling (paper Sec. III).
//!
//! The time-to-breakdown of a device with oxide thickness `x` (nm) and
//! area `a` (normalized to the minimum device area) is Weibull:
//!
//! ```text
//! F(t | x) = 1 − exp(−a · (t/α)^(b·x))            (paper eq. 4)
//! ```
//!
//! The scale `α` and thickness-slope coefficient `b` depend on temperature
//! and stress voltage; both a closed-form model ([`ClosedFormTech`]) and a
//! lookup-table model ([`TableTech`]) are provided, as the paper says the
//! parameters "can be characterized using some closed-form models or
//! look-up tables w.r.t. temperature".
//!
//! A cell-based percolation degradation simulator ([`degradation`])
//! reproduces the paper's Fig. 3: gate leakage under stress showing a soft
//! breakdown (SBD) jump followed by a wear-out ramp to hard breakdown
//! (HBD).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod degradation;
mod device;
mod tech;

pub use degradation::{DegradationSimulator, LeakageTrace, PercolationConfig};
pub use device::{DeviceObd, FailureCriterion};
pub use tech::{ClosedFormTech, ObdTechnology, TableTech};

/// Boltzmann constant (eV/K).
pub const BOLTZMANN_EV: f64 = 8.617_333_262e-5;

/// Errors produced by the device-model layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A model parameter was invalid.
    InvalidParameter {
        /// Description of the offending parameter.
        detail: String,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::InvalidParameter { detail } => write!(f, "invalid parameter: {detail}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, DeviceError>;
