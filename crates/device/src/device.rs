//! The per-device Weibull OBD distribution (paper eqs. 4, 6, 9).

use crate::{DeviceError, Result};
use statobd_num::impl_json_struct;
use statobd_num::json::{FromJson, Json, JsonError, ToJson};
use statobd_num::rng::{sample_exp1, Rng};

/// The failure criterion for OBD analysis.
///
/// The paper limits its full-chip analysis to the *initiation of soft
/// breakdown* — SBD is irreversible, raises gate leakage 10–20× and
/// dominates CPU life-test fallout (cache failures) — while noting circuits
/// can sometimes survive to hard breakdown. The enum documents the choice
/// and lets the degradation simulator report both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureCriterion {
    /// First soft breakdown (the paper's criterion for chip analysis).
    SoftBreakdown,
    /// Hard breakdown (thermal runaway of the percolation path).
    HardBreakdown,
}

impl ToJson for FailureCriterion {
    fn to_json(&self) -> Json {
        Json::String(
            match self {
                FailureCriterion::SoftBreakdown => "SoftBreakdown",
                FailureCriterion::HardBreakdown => "HardBreakdown",
            }
            .to_string(),
        )
    }
}

impl FromJson for FailureCriterion {
    fn from_json(v: &Json) -> statobd_num::json::Result<Self> {
        match v.as_str() {
            Some("SoftBreakdown") => Ok(FailureCriterion::SoftBreakdown),
            Some("HardBreakdown") => Ok(FailureCriterion::HardBreakdown),
            _ => Err(JsonError::new(format!("unknown FailureCriterion {v}"))),
        }
    }
}

/// OBD statistics of one device: `F(t) = 1 − exp(−a·(t/α)^(b·x))`.
///
/// # Example
///
/// ```
/// use statobd_device::DeviceObd;
///
/// let d = DeviceObd::new(1.0, 2.2, 1.0e16, 0.65)?;
/// // At t = α a unit-area device has failed with prob 1 − e⁻¹.
/// assert!((d.cdf(1.0e16) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// assert!((d.weibull_slope() - 1.43).abs() < 1e-12);
/// # Ok::<(), statobd_device::DeviceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceObd {
    area: f64,
    thickness_nm: f64,
    alpha_s: f64,
    b_per_nm: f64,
}

impl_json_struct!(DeviceObd {
    area,
    thickness_nm,
    alpha_s,
    b_per_nm,
});

impl DeviceObd {
    /// Creates a device model.
    ///
    /// `area` is normalized to the minimum device area; `thickness_nm` is
    /// the oxide thickness; `alpha_s` and `b_per_nm` are the technology
    /// parameters at the device's operating point.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if any argument is
    /// non-positive or non-finite.
    pub fn new(area: f64, thickness_nm: f64, alpha_s: f64, b_per_nm: f64) -> Result<Self> {
        for (name, v) in [
            ("area", area),
            ("thickness_nm", thickness_nm),
            ("alpha_s", alpha_s),
            ("b_per_nm", b_per_nm),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(DeviceError::InvalidParameter {
                    detail: format!("{name} must be positive and finite, got {v}"),
                });
            }
        }
        Ok(DeviceObd {
            area,
            thickness_nm,
            alpha_s,
            b_per_nm,
        })
    }

    /// Normalized device area `a`.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Oxide thickness (nm).
    pub fn thickness_nm(&self) -> f64 {
        self.thickness_nm
    }

    /// Characteristic life `α` (s).
    pub fn alpha_s(&self) -> f64 {
        self.alpha_s
    }

    /// Thickness coefficient `b` (1/nm).
    pub fn b_per_nm(&self) -> f64 {
        self.b_per_nm
    }

    /// The Weibull slope `β = b·x`.
    pub fn weibull_slope(&self) -> f64 {
        self.b_per_nm * self.thickness_nm
    }

    /// The exponent `a·(t/α)^(b·x)` — the cumulative hazard at time `t`.
    ///
    /// Computed in log-space for numerical range; exact for `t = 0`.
    pub fn hazard_exponent(&self, t_s: f64) -> f64 {
        if t_s <= 0.0 {
            return 0.0;
        }
        self.area * (self.weibull_slope() * (t_s / self.alpha_s).ln()).exp()
    }

    /// Failure probability by time `t` (eq. 4).
    pub fn cdf(&self, t_s: f64) -> f64 {
        -(-self.hazard_exponent(t_s)).exp_m1()
    }

    /// Reliability (survivor) function `R(t) = exp(−a·(t/α)^(b·x))`
    /// (eq. 9).
    pub fn reliability(&self, t_s: f64) -> f64 {
        (-self.hazard_exponent(t_s)).exp()
    }

    /// Time at which the failure probability reaches `p` (inverse CDF).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] unless `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0 < p && p < 1.0) {
            return Err(DeviceError::InvalidParameter {
                detail: format!("quantile requires 0 < p < 1, got {p}"),
            });
        }
        // a (t/α)^β = −ln(1−p)  ⇒  t = α (−ln1p(−p)/a)^(1/β)
        let target = -(-p).ln_1p() / self.area;
        Ok(self.alpha_s * target.powf(1.0 / self.weibull_slope()))
    }

    /// Samples one failure time by inversion: `t = α·(E/a)^(1/β)` with
    /// `E ~ Exp(1)`.
    pub fn sample_failure_time<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let e = sample_exp1(rng);
        self.alpha_s * (e / self.area).powf(1.0 / self.weibull_slope())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statobd_num::rng::Xoshiro256pp;

    fn device() -> DeviceObd {
        DeviceObd::new(1.0, 2.2, 1.0e16, 0.65).unwrap()
    }

    #[test]
    fn cdf_and_reliability_are_complementary() {
        let d = device();
        for &t in &[1e8, 1e12, 1e15, 1e16, 1e17] {
            assert!((d.cdf(t) + d.reliability(t) - 1.0).abs() < 1e-12);
        }
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.reliability(0.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let d = device();
        let mut prev = 0.0;
        for i in 0..30 {
            let t = 10f64.powf(6.0 + i as f64 * 0.5);
            let c = d.cdf(t);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn thinner_oxide_fails_sooner() {
        let thick = DeviceObd::new(1.0, 2.29, 1.0e16, 0.65).unwrap();
        let thin = DeviceObd::new(1.0, 2.11, 1.0e16, 0.65).unwrap();
        // Before the characteristic life, thinner oxide (smaller slope) has
        // higher failure probability.
        let t = 1e10;
        assert!(thin.cdf(t) > thick.cdf(t));
        // 1-ppm lifetime of the thin device is shorter.
        assert!(thin.quantile(1e-6).unwrap() < thick.quantile(1e-6).unwrap());
    }

    #[test]
    fn larger_area_fails_sooner() {
        let small = DeviceObd::new(1.0, 2.2, 1.0e16, 0.65).unwrap();
        let big = DeviceObd::new(100.0, 2.2, 1.0e16, 0.65).unwrap();
        assert!(big.cdf(1e12) > small.cdf(1e12));
    }

    #[test]
    fn quantile_round_trips() {
        let d = device();
        for &p in &[1e-9, 1e-6, 1e-3, 0.5, 0.99] {
            let t = d.quantile(p).unwrap();
            let back = d.cdf(t);
            assert!((back - p).abs() / p < 1e-9, "p {p}: round-trip {back}");
        }
        assert!(d.quantile(0.0).is_err());
        assert!(d.quantile(1.0).is_err());
    }

    #[test]
    fn tiny_probability_is_accurate() {
        // The hazard at the 1e-9 quantile must match 1e-9 relative — this
        // exercises the expm1/ln1p path the chip analysis depends on.
        let d = device();
        let t = d.quantile(1e-9).unwrap();
        let h = d.hazard_exponent(t);
        assert!((h - 1e-9).abs() / 1e-9 < 1e-9);
    }

    #[test]
    fn sampled_failure_times_match_cdf() {
        let d = device();
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        let n = 100_000;
        let t_median = d.quantile(0.5).unwrap();
        let below = (0..n)
            .filter(|_| d.sample_failure_time(&mut rng) < t_median)
            .count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "median fraction {frac}");
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(DeviceObd::new(0.0, 2.2, 1e16, 0.65).is_err());
        assert!(DeviceObd::new(1.0, -2.2, 1e16, 0.65).is_err());
        assert!(DeviceObd::new(1.0, 2.2, f64::NAN, 0.65).is_err());
        assert!(DeviceObd::new(1.0, 2.2, 1e16, 0.0).is_err());
    }

    #[test]
    fn json_round_trip() {
        let d = device();
        let json = statobd_num::json::to_string(&d);
        let back: DeviceObd = statobd_num::json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
