//! Property-based tests of the numerical foundations: algebraic
//! identities and distribution laws checked over many deterministic
//! pseudo-random cases (seeded, so failures reproduce exactly).

use statobd_num::cholesky::Cholesky;
use statobd_num::dist::{ContinuousDistribution, Gamma, Normal, Weibull};
use statobd_num::eigen::SymmetricEigen;
use statobd_num::hist::Histogram1d;
use statobd_num::lu::Lu;
use statobd_num::matrix::DMatrix;
use statobd_num::quad::{integrate_1d, QuadRule};
use statobd_num::rng::{Rng, Xoshiro256pp};
use statobd_num::sparse::CooMatrix;
use statobd_num::special::{gamma_p, gamma_q, norm_cdf, norm_inv_cdf};

const CASES: usize = 64;

fn small_matrix<R: Rng + ?Sized>(rng: &mut R, n: usize) -> DMatrix {
    DMatrix::from_fn(n, n, |_, _| rng.gen_range(-10.0..10.0))
}

fn vector<R: Rng + ?Sized>(rng: &mut R, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn matrix_product_is_associative_on_vectors() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA11);
    for _ in 0..CASES {
        let a = small_matrix(&mut rng, 4);
        let b = small_matrix(&mut rng, 4);
        let x = vector(&mut rng, 4, -5.0, 5.0);
        let ab = a.mul(&b).unwrap();
        let lhs = ab.mul_vec(&x);
        let rhs = a.mul_vec(&b.mul_vec(&x));
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((l - r).abs() < 1e-9 * (1.0 + r.abs()));
        }
    }
}

#[test]
fn transpose_is_involution() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA12);
    for _ in 0..CASES {
        let a = small_matrix(&mut rng, 5);
        assert_eq!(a.transpose().transpose(), a);
    }
}

#[test]
fn quadratic_form_matches_mul_vec() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA13);
    for _ in 0..CASES {
        let a = small_matrix(&mut rng, 4);
        let x = vector(&mut rng, 4, -3.0, 3.0);
        let direct = a.quadratic_form(&x);
        let via_mul: f64 = a.mul_vec(&x).iter().zip(&x).map(|(ax, xi)| ax * xi).sum();
        assert!((direct - via_mul).abs() < 1e-9 * (1.0 + via_mul.abs()));
    }
}

#[test]
fn cholesky_reconstructs_spd() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA14);
    for _ in 0..CASES {
        let raw = small_matrix(&mut rng, 4);
        let ridge = rng.gen_range(0.5..5.0);
        // AᵀA + ridge·I is SPD.
        let ata = raw.transpose().mul(&raw).unwrap();
        let spd = DMatrix::from_fn(4, 4, |i, j| ata[(i, j)] + if i == j { ridge } else { 0.0 });
        let chol = Cholesky::new(&spd).unwrap();
        let llt = chol.l().mul(&chol.l().transpose()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!((llt[(i, j)] - spd[(i, j)]).abs() < 1e-8);
            }
        }
        // Solve residual.
        let b = vec![1.0, -2.0, 0.5, 3.0];
        let x = chol.solve(&b).unwrap();
        let back = spd.mul_vec(&x);
        for (bi, bb) in b.iter().zip(&back) {
            assert!((bi - bb).abs() < 1e-7);
        }
    }
}

#[test]
fn lu_solves_well_conditioned_systems() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA15);
    for _ in 0..CASES {
        let raw = small_matrix(&mut rng, 4);
        let ridge = rng.gen_range(2.0..10.0);
        let a = DMatrix::from_fn(4, 4, |i, j| {
            raw[(i, j)] / 10.0 + if i == j { ridge } else { 0.0 }
        });
        let x_true = [1.0, -1.0, 2.0, 0.5];
        let b = a.mul_vec(&x_true);
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }
}

#[test]
fn eigen_reconstruction_and_orthonormality() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA16);
    for _ in 0..CASES {
        let raw = small_matrix(&mut rng, 5);
        let sym = DMatrix::from_fn(5, 5, |i, j| 0.5 * (raw[(i, j)] + raw[(j, i)]));
        let eig = SymmetricEigen::new(&sym).unwrap();
        let recon = eig.reconstruct();
        for i in 0..5 {
            for j in 0..5 {
                assert!((recon[(i, j)] - sym[(i, j)]).abs() < 1e-7);
            }
        }
        let v = eig.eigenvectors();
        let vtv = v.transpose().mul(v).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-8);
            }
        }
        // Eigenvalues sorted descending.
        for w in eig.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}

#[test]
fn gauss_legendre_is_exact_for_polynomials() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA17);
    for _ in 0..CASES {
        let coeffs = vector(&mut rng, 6, -3.0, 3.0);
        let a = rng.gen_range(-2.0..0.0);
        let b = a + rng.gen_range(0.5..3.0);
        // Degree-5 polynomial, 3-point GL rule (exact to degree 5).
        let poly = |x: f64| {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, c)| c * x.powi(k as i32))
                .sum::<f64>()
        };
        let exact: f64 = coeffs
            .iter()
            .enumerate()
            .map(|(k, c)| c * (b.powi(k as i32 + 1) - a.powi(k as i32 + 1)) / (k as f64 + 1.0))
            .sum();
        let quad = integrate_1d(QuadRule::GaussLegendre, 3, a, b, poly).unwrap();
        assert!((quad - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }
}

#[test]
fn gamma_p_q_complementary() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA18);
    for _ in 0..CASES {
        let a = rng.gen_range(0.1..50.0);
        let x = rng.gen_range(0.0..100.0);
        let p = gamma_p(a, x).unwrap();
        let q = gamma_q(a, x).unwrap();
        assert!((p + q - 1.0).abs() < 1e-10);
        assert!((0.0..=1.0).contains(&p));
    }
}

#[test]
fn norm_cdf_inverse_round_trip() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA19);
    for _ in 0..CASES {
        // Log-uniform over (1e-8, ~1): exercises both tails.
        let p = 10f64.powf(rng.gen_range(-8.0..-1e-9));
        let x = norm_inv_cdf(p).unwrap();
        assert!((norm_cdf(x) - p).abs() < 1e-10);
        let x = norm_inv_cdf(1.0 - p).unwrap();
        assert!((norm_cdf(x) - (1.0 - p)).abs() < 1e-10);
    }
}

#[test]
fn normal_quantile_round_trip() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1A);
    for _ in 0..CASES {
        let mean = rng.gen_range(-10.0..10.0);
        let sd = rng.gen_range(0.01..10.0);
        let p = rng.gen_range(0.001..0.999);
        let n = Normal::new(mean, sd).unwrap();
        let q = n.quantile(p).unwrap();
        assert!((n.cdf(q) - p).abs() < 1e-9);
    }
}

#[test]
fn gamma_cdf_is_monotone() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1B);
    for _ in 0..CASES {
        let shape = rng.gen_range(0.2..20.0);
        let scale = rng.gen_range(0.1..10.0);
        let g = Gamma::new(shape, scale).unwrap();
        let mut prev = 0.0;
        for i in 1..20 {
            let x = i as f64 * scale;
            let c = g.cdf(x);
            assert!(c >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }
}

#[test]
fn weibull_quantile_round_trip() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1C);
    for _ in 0..CASES {
        let scale = 10f64.powf(rng.gen_range(0.0..10.0));
        let shape = rng.gen_range(0.5..5.0);
        let p = 10f64.powf(rng.gen_range(-9.0..-0.001));
        let w = Weibull::new(scale, shape).unwrap();
        let q = w.quantile(p).unwrap();
        let back = w.cdf(q);
        assert!((back - p).abs() < 1e-9 + 1e-6 * p);
    }
}

#[test]
fn histogram_conserves_counts() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1D);
    for _ in 0..CASES {
        let len = 10 + rng.gen_index(190);
        let data = vector(&mut rng, len, -100.0, 100.0);
        let bins = 1 + rng.gen_index(39);
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Uniform draws over a wide range cannot be degenerate (constant).
        assert!(hi > lo);
        let h = Histogram1d::from_data(&data, bins).unwrap();
        let total: u64 = h.counts().iter().sum();
        assert_eq!(total, data.len() as u64);
        assert_eq!(h.outliers(), (0, 0));
    }
}

#[test]
fn sparse_matvec_matches_dense() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1E);
    for _ in 0..CASES {
        let n_entries = rng.gen_index(30);
        let mut coo = CooMatrix::new(6, 6);
        let mut dense = DMatrix::zeros(6, 6);
        for _ in 0..n_entries {
            let r = rng.gen_index(6);
            let c = rng.gen_index(6);
            let v = rng.gen_range(-5.0..5.0);
            coo.push(r, c, v);
            dense[(r, c)] += v;
        }
        let x = vector(&mut rng, 6, -2.0, 2.0);
        let sparse_y = coo.to_csr().mul_vec(&x).unwrap();
        let dense_y = dense.mul_vec(&x);
        for (s, d) in sparse_y.iter().zip(&dense_y) {
            assert!((s - d).abs() < 1e-10);
        }
    }
}
