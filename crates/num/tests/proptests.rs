//! Property-based tests of the numerical foundations: algebraic
//! identities and distribution laws that must hold for arbitrary valid
//! inputs.

use proptest::prelude::*;
use statobd_num::cholesky::Cholesky;
use statobd_num::dist::{ContinuousDistribution, Gamma, Normal, Weibull};
use statobd_num::eigen::SymmetricEigen;
use statobd_num::hist::Histogram1d;
use statobd_num::lu::Lu;
use statobd_num::matrix::DMatrix;
use statobd_num::quad::{integrate_1d, QuadRule};
use statobd_num::sparse::CooMatrix;
use statobd_num::special::{gamma_p, gamma_q, norm_cdf, norm_inv_cdf};

fn small_matrix(n: usize) -> impl Strategy<Value = DMatrix> {
    prop::collection::vec(-10.0f64..10.0, n * n)
        .prop_map(move |v| DMatrix::from_vec(n, n, v).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_product_is_associative_on_vectors(
        a in small_matrix(4),
        b in small_matrix(4),
        x in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let ab = a.mul(&b).unwrap();
        let lhs = ab.mul_vec(&x);
        let rhs = a.mul_vec(&b.mul_vec(&x));
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-9 * (1.0 + r.abs()));
        }
    }

    #[test]
    fn transpose_is_involution(a in small_matrix(5)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn quadratic_form_matches_mul_vec(
        a in small_matrix(4),
        x in prop::collection::vec(-3.0f64..3.0, 4),
    ) {
        let direct = a.quadratic_form(&x);
        let via_mul: f64 = a.mul_vec(&x).iter().zip(&x).map(|(ax, xi)| ax * xi).sum();
        prop_assert!((direct - via_mul).abs() < 1e-9 * (1.0 + via_mul.abs()));
    }

    #[test]
    fn cholesky_reconstructs_spd(
        raw in small_matrix(4),
        ridge in 0.5f64..5.0,
    ) {
        // AᵀA + ridge·I is SPD.
        let ata = raw.transpose().mul(&raw).unwrap();
        let spd = DMatrix::from_fn(4, 4, |i, j| {
            ata[(i, j)] + if i == j { ridge } else { 0.0 }
        });
        let chol = Cholesky::new(&spd).unwrap();
        let llt = chol.l().mul(&chol.l().transpose()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((llt[(i, j)] - spd[(i, j)]).abs() < 1e-8);
            }
        }
        // Solve residual.
        let b = vec![1.0, -2.0, 0.5, 3.0];
        let x = chol.solve(&b).unwrap();
        let back = spd.mul_vec(&x);
        for (bi, bb) in b.iter().zip(&back) {
            prop_assert!((bi - bb).abs() < 1e-7);
        }
    }

    #[test]
    fn lu_solves_well_conditioned_systems(
        raw in small_matrix(4),
        ridge in 2.0f64..10.0,
    ) {
        let a = DMatrix::from_fn(4, 4, |i, j| {
            raw[(i, j)] / 10.0 + if i == j { ridge } else { 0.0 }
        });
        let x_true = [1.0, -1.0, 2.0, 0.5];
        let b = a.mul_vec(&x_true);
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn eigen_reconstruction_and_orthonormality(raw in small_matrix(5)) {
        let sym = DMatrix::from_fn(5, 5, |i, j| 0.5 * (raw[(i, j)] + raw[(j, i)]));
        let eig = SymmetricEigen::new(&sym).unwrap();
        let recon = eig.reconstruct();
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((recon[(i, j)] - sym[(i, j)]).abs() < 1e-7);
            }
        }
        let v = eig.eigenvectors();
        let vtv = v.transpose().mul(v).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((vtv[(i, j)] - expect).abs() < 1e-8);
            }
        }
        // Eigenvalues sorted descending.
        for w in eig.eigenvalues().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn gauss_legendre_is_exact_for_polynomials(
        coeffs in prop::collection::vec(-3.0f64..3.0, 6),
        a in -2.0f64..0.0,
        span in 0.5f64..3.0,
    ) {
        let b = a + span;
        // Degree-5 polynomial, 3-point GL rule (exact to degree 5).
        let poly = |x: f64| {
            coeffs
                .iter()
                .enumerate()
                .map(|(k, c)| c * x.powi(k as i32))
                .sum::<f64>()
        };
        let exact: f64 = coeffs
            .iter()
            .enumerate()
            .map(|(k, c)| c * (b.powi(k as i32 + 1) - a.powi(k as i32 + 1)) / (k as f64 + 1.0))
            .sum();
        let quad = integrate_1d(QuadRule::GaussLegendre, 3, a, b, poly).unwrap();
        prop_assert!((quad - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }

    #[test]
    fn gamma_p_q_complementary(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        let p = gamma_p(a, x).unwrap();
        let q = gamma_q(a, x).unwrap();
        prop_assert!((p + q - 1.0).abs() < 1e-10);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn norm_cdf_inverse_round_trip(p in 1e-8f64..0.99999999) {
        let x = norm_inv_cdf(p).unwrap();
        prop_assert!((norm_cdf(x) - p).abs() < 1e-10);
    }

    #[test]
    fn normal_quantile_round_trip(
        mean in -10.0f64..10.0,
        sd in 0.01f64..10.0,
        p in 0.001f64..0.999,
    ) {
        let n = Normal::new(mean, sd).unwrap();
        let q = n.quantile(p).unwrap();
        prop_assert!((n.cdf(q) - p).abs() < 1e-9);
    }

    #[test]
    fn gamma_cdf_is_monotone(shape in 0.2f64..20.0, scale in 0.1f64..10.0) {
        let g = Gamma::new(shape, scale).unwrap();
        let mut prev = 0.0;
        for i in 1..20 {
            let x = i as f64 * scale;
            let c = g.cdf(x);
            prop_assert!(c >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn weibull_quantile_round_trip(
        scale in 1.0f64..1e10,
        shape in 0.5f64..5.0,
        p in 1e-9f64..0.999,
    ) {
        let w = Weibull::new(scale, shape).unwrap();
        let q = w.quantile(p).unwrap();
        let back = w.cdf(q);
        prop_assert!((back - p).abs() < 1e-9 + 1e-6 * p);
    }

    #[test]
    fn histogram_conserves_counts(
        data in prop::collection::vec(-100.0f64..100.0, 10..200),
        bins in 1usize..40,
    ) {
        // Skip degenerate (constant) data.
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(hi > lo);
        let h = Histogram1d::from_data(&data, bins).unwrap();
        let total: u64 = h.counts().iter().sum();
        prop_assert_eq!(total, data.len() as u64);
        prop_assert_eq!(h.outliers(), (0, 0));
    }

    #[test]
    fn sparse_matvec_matches_dense(
        entries in prop::collection::vec((0usize..6, 0usize..6, -5.0f64..5.0), 0..30),
        x in prop::collection::vec(-2.0f64..2.0, 6),
    ) {
        let mut coo = CooMatrix::new(6, 6);
        let mut dense = DMatrix::zeros(6, 6);
        for &(r, c, v) in &entries {
            coo.push(r, c, v);
            dense[(r, c)] += v;
        }
        let sparse_y = coo.to_csr().mul_vec(&x).unwrap();
        let dense_y = dense.mul_vec(&x);
        for (s, d) in sparse_y.iter().zip(&dense_y) {
            prop_assert!((s - d).abs() < 1e-10);
        }
    }
}
