//! Cross-solver spectral consistency: the Householder+QL and Lanczos
//! backends must reproduce the Jacobi reference on random SPD matrices
//! with a known, well-separated spectrum (seeded, so failures reproduce
//! exactly).

use statobd_num::eigen::{SpectralOptions, SpectralSolver, SymmetricEigen};
use statobd_num::matrix::DMatrix;
use statobd_num::rng::{Rng, Xoshiro256pp};

/// Random SPD matrix with the well-separated spectrum `((n−i)/n)²`,
/// `i = 0..n`: a diagonal conjugated by random Givens rotations (which
/// preserve the spectrum exactly).
fn random_spd<R: Rng + ?Sized>(rng: &mut R, n: usize) -> DMatrix {
    let mut a = DMatrix::zeros(n, n);
    for i in 0..n {
        let l = (n - i) as f64 / n as f64;
        a[(i, i)] = l * l;
    }
    for _ in 0..4 * n {
        let i = rng.gen_index(n);
        let mut j = rng.gen_index(n);
        if i == j {
            j = (j + 1) % n;
        }
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let (s, c) = theta.sin_cos();
        for k in 0..n {
            let (ai, aj) = (a[(i, k)], a[(j, k)]);
            a[(i, k)] = c * ai - s * aj;
            a[(j, k)] = s * ai + c * aj;
        }
        for k in 0..n {
            let (ai, aj) = (a[(k, i)], a[(k, j)]);
            a[(k, i)] = c * ai - s * aj;
            a[(k, j)] = s * ai + c * aj;
        }
    }
    // Rotation arithmetic drifts at ~ε; restore exact symmetry.
    for i in 0..n {
        for j in 0..i {
            let m = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = m;
            a[(j, i)] = m;
        }
    }
    a
}

fn solve(a: &DMatrix, opts: &SpectralOptions) -> SymmetricEigen {
    SymmetricEigen::with_options(a, opts).expect("decomposition")
}

/// Asserts column `k` of `v` matches column `k` of `reference` entrywise
/// after sign alignment (eigenvectors are unique only up to sign).
fn assert_column_matches(v: &DMatrix, reference: &DMatrix, k: usize, tol: f64) {
    let n = reference.nrows();
    // Align signs on the reference column's largest-magnitude entry.
    let pivot = (0..n)
        .max_by(|&a, &b| {
            reference[(a, k)]
                .abs()
                .partial_cmp(&reference[(b, k)].abs())
                .unwrap()
        })
        .unwrap();
    let sign = if v[(pivot, k)] * reference[(pivot, k)] < 0.0 {
        -1.0
    } else {
        1.0
    };
    for i in 0..n {
        let d = (sign * v[(i, k)] - reference[(i, k)]).abs();
        assert!(
            d < tol,
            "eigenvector {k} entry {i}: {} vs {} (|Δ| = {d:.3e})",
            v[(i, k)],
            reference[(i, k)]
        );
    }
}

/// Cases per size: the Jacobi reference is O(n³) per sweep, so the large
/// size runs once.
fn cases_for(n: usize) -> usize {
    match n {
        8 => 4,
        64 => 2,
        _ => 1,
    }
}

#[test]
fn ql_matches_jacobi_on_random_spd() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x51EC);
    for &n in &[8usize, 64, 256] {
        for _ in 0..cases_for(n) {
            let a = random_spd(&mut rng, n);
            let jac = solve(
                &a,
                &SpectralOptions::full().with_solver(SpectralSolver::Jacobi),
            );
            let ql = solve(
                &a,
                &SpectralOptions::full().with_solver(SpectralSolver::TridiagonalQl),
            );
            assert_eq!(ql.n_components(), n);
            for (k, (l_ql, l_jac)) in ql.eigenvalues().iter().zip(jac.eigenvalues()).enumerate() {
                // The planted spectrum is ((n−k)/n)²; both solvers must
                // agree with it and with each other.
                let planted = ((n - k) as f64 / n as f64).powi(2);
                assert!(
                    (l_ql - l_jac).abs() < 1e-10,
                    "λ[{k}] n={n}: QL {l_ql} vs Jacobi {l_jac}"
                );
                assert!((l_ql - planted).abs() < 1e-10, "λ[{k}] n={n} vs planted");
            }
            for k in 0..n {
                assert_column_matches(ql.eigenvectors(), jac.eigenvectors(), k, 1e-8);
            }
            // Full-spectrum round trip.
            let recon = ql.reconstruct();
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (recon[(i, j)] - a[(i, j)]).abs() < 1e-9,
                        "reconstruct n={n} at ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn lanczos_matches_jacobi_top_components() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x1A2C);
    let energy = 0.9;
    for &n in &[8usize, 64, 256] {
        for _ in 0..cases_for(n) {
            let a = random_spd(&mut rng, n);
            let jac = solve(
                &a,
                &SpectralOptions::full().with_solver(SpectralSolver::Jacobi),
            );
            let lan = solve(
                &a,
                &SpectralOptions::energy(energy)
                    .with_solver(SpectralSolver::Lanczos)
                    .with_tol(1e-13),
            );
            let k = lan.n_components();
            assert!(
                k > 0 && k < n,
                "partial solve must truncate (k = {k}, n = {n})"
            );
            // The retained energy must meet the target.
            let trace: f64 = jac.eigenvalues().iter().sum();
            let kept: f64 = lan.eigenvalues().iter().sum();
            assert!(kept >= energy * trace * (1.0 - 1e-12));
            for (i, (l_lan, l_jac)) in lan.eigenvalues().iter().zip(jac.eigenvalues()).enumerate() {
                assert!(
                    (l_lan - l_jac).abs() < 1e-10,
                    "λ[{i}] n={n}: Lanczos {l_lan} vs Jacobi {l_jac}"
                );
            }
            for i in 0..k {
                assert_column_matches(lan.eigenvectors(), jac.eigenvectors(), i, 1e-8);
            }
            // Rank-k round trip: the reconstruction error is exactly the
            // dropped spectral mass, ‖A − VΛVᵀ‖_F² = Σ_{i≥k} λᵢ².
            let recon = lan.reconstruct();
            let mut err2 = 0.0;
            for i in 0..n {
                for j in 0..n {
                    let d = recon[(i, j)] - a[(i, j)];
                    err2 += d * d;
                }
            }
            let dropped2: f64 = jac.eigenvalues()[k..].iter().map(|l| l * l).sum();
            assert!(
                (err2 - dropped2).abs() < 1e-9 * (1.0 + dropped2),
                "rank-{k} round trip n={n}: ‖Δ‖² {err2:.6e} vs dropped {dropped2:.6e}"
            );
        }
    }
}
