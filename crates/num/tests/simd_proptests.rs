//! Property-based tests of the `num::simd` lane layer: seeded random
//! sweeps over the engines' argument ranges checking the vectorized
//! `exp`/`exp_m1`/`ln_1p` kernels against `std` libm within the
//! documented error budget, width-1 bit-identity with the historical
//! scalar expressions, and bitwise agreement between lane widths 4
//! and 8.
//!
//! Width forcing is process-global, so every test that touches it
//! serializes on one mutex and restores the default before releasing —
//! the suite passes under any `STATOBD_LANES` setting.

use statobd_num::rng::{Rng, Xoshiro256pp};
use statobd_num::simd::{self, LaneWidth};
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that force the process-global lane width.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

/// RAII width override: restores the environment-derived default on
/// drop even if the test panics while holding the lock.
struct ForcedWidth(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ForcedWidth {
    fn new(w: LaneWidth) -> Self {
        let guard = WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        simd::force_width(Some(w));
        ForcedWidth(guard)
    }

    fn set(&self, w: LaneWidth) {
        simd::force_width(Some(w));
    }
}

impl Drop for ForcedWidth {
    fn drop(&mut self) {
        simd::force_width(None);
    }
}

fn rel_err(got: f64, want: f64) -> f64 {
    if got == want || (got.is_nan() && want.is_nan()) {
        return 0.0;
    }
    (got - want).abs() / want.abs().max(f64::MIN_POSITIVE)
}

/// Engine-typical argument draws: log-uniform magnitude across the
/// quadrature/table range, both signs, clamped inside `exp`'s domain.
fn engine_args(rng: &mut Xoshiro256pp, n: usize, mag_lo: f64, mag_hi: f64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let mag = 10f64.powf(rng.gen_range(mag_lo..mag_hi));
            if rng.gen_range(0.0..1.0) < 0.5 {
                mag
            } else {
                -mag
            }
        })
        .collect()
}

#[test]
fn exp_kernels_stay_inside_error_budget() {
    let _w = ForcedWidth::new(LaneWidth::W4);
    let mut rng = Xoshiro256pp::seed_from_u64(0x51D0);
    for w in [LaneWidth::W4, LaneWidth::W8] {
        _w.set(w);
        // exp over the full engine range (quadrature args reach ±700).
        let xs = engine_args(&mut rng, 4000, -8.0, 2.84);
        let mut out = vec![0.0; xs.len()];
        simd::exp_slice(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            assert!(
                rel_err(got, x.exp()) < 1e-14,
                "{w:?} exp({x}) = {got} vs {}",
                x.exp()
            );
        }
        // exp_m1 concentrates around 0 where cancellation lives.
        let xs = engine_args(&mut rng, 4000, -12.0, 2.6);
        simd::exp_m1_slice(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            assert!(
                rel_err(got, x.exp_m1()) < 1e-14,
                "{w:?} exp_m1({x}) = {got} vs {}",
                x.exp_m1()
            );
        }
        // ln_1p on (−1, ∞): small magnitudes plus the singular side.
        let xs: Vec<f64> = engine_args(&mut rng, 4000, -12.0, 8.0)
            .into_iter()
            .map(|x| {
                if x <= -1.0 {
                    -1.0 + 10f64.powf(-x.abs().log10())
                } else {
                    x
                }
            })
            .map(|x| x.max(-1.0 + 1e-15))
            .collect();
        simd::ln_1p_slice(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            assert!(
                rel_err(got, x.ln_1p()) < 1e-13,
                "{w:?} ln_1p({x}) = {got} vs {}",
                x.ln_1p()
            );
        }
    }
}

#[test]
fn width_one_is_bit_identical_to_libm() {
    let _w = ForcedWidth::new(LaneWidth::W1);
    let mut rng = Xoshiro256pp::seed_from_u64(0x51D1);
    let xs = engine_args(&mut rng, 2000, -10.0, 2.84);
    let mut out = vec![0.0; xs.len()];
    simd::exp_slice(&xs, &mut out);
    for (&x, &got) in xs.iter().zip(&out) {
        assert_eq!(got.to_bits(), x.exp().to_bits(), "exp({x})");
    }
    simd::exp_m1_slice(&xs, &mut out);
    for (&x, &got) in xs.iter().zip(&out) {
        assert_eq!(got.to_bits(), x.exp_m1().to_bits(), "exp_m1({x})");
    }
    let scale = 2.7e-4;
    simd::failure_term_slice(&xs, scale, &mut out);
    for (&x, &got) in xs.iter().zip(&out) {
        let want = -(-scale * x.exp()).exp_m1();
        assert_eq!(got.to_bits(), want.to_bits(), "failure_term({x})");
    }
}

#[test]
fn widths_four_and_eight_agree_bitwise() {
    let _w = ForcedWidth::new(LaneWidth::W4);
    let mut rng = Xoshiro256pp::seed_from_u64(0x51D2);
    // Prime-length slice so both widths see full chunks and ragged
    // tails at different element positions.
    let xs = engine_args(&mut rng, 2003, -10.0, 2.84);
    let scale = 1.3e-5;
    let mut via4 = vec![0.0; xs.len()];
    let mut via8 = vec![0.0; xs.len()];
    simd::exp_slice(&xs, &mut via4);
    simd::failure_term_slice(&xs, scale, &mut via8); // reuse as scratch
    _w.set(LaneWidth::W8);
    simd::exp_slice(&xs, &mut via8);
    for (i, (a, b)) in via4.iter().zip(&via8).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "exp idx {i}");
    }
    _w.set(LaneWidth::W4);
    simd::failure_term_slice(&xs, scale, &mut via4);
    _w.set(LaneWidth::W8);
    simd::failure_term_slice(&xs, scale, &mut via8);
    for (i, (a, b)) in via4.iter().zip(&via8).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "failure_term idx {i}");
    }
}

#[test]
fn lane_kernels_handle_edge_arguments() {
    let _w = ForcedWidth::new(LaneWidth::W8);
    let xs = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        709.9,  // past the overflow boundary
        -746.0, // past the underflow boundary
        -0.0,
        0.0,
        5e-324, // smallest subnormal
    ];
    let mut out = [0.0; 8];
    for w in [LaneWidth::W4, LaneWidth::W8] {
        _w.set(w);
        simd::exp_slice(&xs, &mut out);
        assert!(out[0].is_nan());
        assert_eq!(out[1], f64::INFINITY);
        assert_eq!(out[2], 0.0);
        assert_eq!(out[3], f64::INFINITY);
        assert_eq!(out[4], 0.0);
        assert_eq!(out[5], 1.0);
        assert_eq!(out[6], 1.0);
        simd::exp_m1_slice(&xs, &mut out);
        assert!(out[0].is_nan());
        assert_eq!(out[1], f64::INFINITY);
        assert_eq!(out[2], -1.0);
        simd::ln_1p_slice(&[-1.0, -1.5, f64::INFINITY, f64::NAN], &mut out[..4]);
        assert_eq!(out[0], f64::NEG_INFINITY);
        assert!(out[1].is_nan(), "ln_1p below the domain is NaN");
        assert_eq!(out[2], f64::INFINITY);
        assert!(out[3].is_nan());
    }
}

#[test]
fn failure_term_accuracy_over_scale_sweep() {
    // The quadrature kernels see scale = A·(table area) spanning many
    // decades; the 1e-12 relative gate must hold across all of them.
    let _w = ForcedWidth::new(LaneWidth::W8);
    let mut rng = Xoshiro256pp::seed_from_u64(0x51D3);
    for w in [LaneWidth::W4, LaneWidth::W8] {
        _w.set(w);
        for _ in 0..24 {
            let scale = 10f64.powf(rng.gen_range(-9.0..3.0));
            let xs = engine_args(&mut rng, 500, -6.0, 2.5);
            let mut out = vec![0.0; xs.len()];
            simd::failure_term_slice(&xs, scale, &mut out);
            for (&x, &got) in xs.iter().zip(&out) {
                let want = -(-scale * x.exp()).exp_m1();
                assert!(
                    rel_err(got, want) < 1e-12,
                    "{w:?} scale={scale:e} x={x} got={got} want={want}"
                );
                assert!((0.0..=1.0).contains(&got) || got.is_nan());
            }
        }
    }
}
