//! Property-based tests of the IC(0) preconditioner over seeded random
//! SPD systems: the factorization must exist on diagonally dominant
//! matrices, and preconditioned CG must cut the error monotonically in the
//! A-norm — the invariant CG guarantees only when the preconditioner is
//! genuinely symmetric positive definite.

use statobd_num::cg::Preconditioner;
use statobd_num::cholesky::Cholesky;
use statobd_num::matrix::DMatrix;
use statobd_num::precond::Ic0;
use statobd_num::rng::{Rng, Xoshiro256pp};
use statobd_num::sparse::{CooMatrix, CsrMatrix};

const CASES: usize = 24;
const N: usize = 24;

/// A random sparse symmetric diagonally-dominant M-matrix (negative
/// off-diagonals, dominant positive diagonal) — the class the thermal
/// conductance matrices live in, where IC(0) is guaranteed to exist.
fn random_spd<R: Rng + ?Sized>(rng: &mut R) -> (CsrMatrix, DMatrix) {
    let mut off = vec![vec![0.0; N]; N];
    for i in 0..N {
        for j in (i + 1)..N {
            if rng.gen_range(0.0..1.0) < 0.2 {
                let v = -rng.gen_range(0.1..1.0);
                off[i][j] = v;
                off[j][i] = v;
            }
        }
    }
    let mut coo = CooMatrix::new(N, N);
    let mut dense = DMatrix::zeros(N, N);
    for i in 0..N {
        let row_sum: f64 = off[i].iter().map(|v| v.abs()).sum();
        let diag = row_sum + rng.gen_range(0.05..1.0);
        for j in 0..N {
            let v = if i == j { diag } else { off[i][j] };
            if v != 0.0 {
                coo.push(i, j, v);
                dense.row_mut(i)[j] = v;
            }
        }
    }
    (coo.to_csr(), dense)
}

fn a_norm_error(a: &DMatrix, x: &[f64], x_true: &[f64]) -> f64 {
    let e: Vec<f64> = x.iter().zip(x_true).map(|(xi, ti)| xi - ti).collect();
    let ae = a.mul_vec(&e);
    e.iter()
        .zip(&ae)
        .map(|(ei, aei)| ei * aei)
        .sum::<f64>()
        .sqrt()
}

#[test]
fn ic0_preconditioned_cg_error_decreases_monotonically() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x1C0);
    for case in 0..CASES {
        let (a, dense) = random_spd(&mut rng);
        let x_true: Vec<f64> = (0..N).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b = a.mul_vec(&x_true).unwrap();
        // Independent exact solve, so the A-norm error is observable.
        let chol = Cholesky::new(&dense).expect("SPD by construction");
        let x_exact = chol.solve(&b).expect("solve");

        let m = Ic0::new(&a).expect("IC(0) exists for M-matrices");
        // Textbook PCG recurrence, so every iterate is visible: CG with an
        // SPD preconditioner minimizes the A-norm error over a growing
        // Krylov space, so the error must never increase.
        let mut x = vec![0.0; N];
        let mut r = b.clone();
        let mut z = vec![0.0; N];
        m.apply(&r, &mut z);
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(ri, zi)| ri * zi).sum();
        let mut prev_err = a_norm_error(&dense, &x, &x_exact);
        let mut converged = false;
        for _ in 0..2 * N {
            let ap = a.mul_vec(&p).unwrap();
            let pap: f64 = p.iter().zip(&ap).map(|(pi, api)| pi * api).sum();
            assert!(pap > 0.0, "case {case}: lost positive definiteness");
            let alpha = rz / pap;
            for i in 0..N {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let err = a_norm_error(&dense, &x, &x_exact);
            assert!(
                err <= prev_err * (1.0 + 1e-10) + 1e-12,
                "case {case}: A-norm error rose from {prev_err} to {err}"
            );
            prev_err = err;
            if err < 1e-10 {
                converged = true;
                break;
            }
            m.apply(&r, &mut z);
            let rz_new: f64 = r.iter().zip(&z).map(|(ri, zi)| ri * zi).sum();
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..N {
                p[i] = z[i] + beta * p[i];
            }
        }
        assert!(converged, "case {case}: no convergence in {} steps", 2 * N);
    }
}
