//! LU factorization with partial pivoting, for general square systems.
//!
//! The thermal solver uses conjugate gradients for its large sparse systems;
//! LU covers the small dense systems (calibration fits, bilinear systems)
//! and provides determinants for model validation.

use crate::matrix::DMatrix;
use crate::{NumError, Result};

/// LU factorization `P·A = L·U` with partial pivoting.
///
/// # Example
///
/// ```
/// use statobd_num::matrix::DMatrix;
/// use statobd_num::lu::Lu;
///
/// let a = DMatrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
/// let lu = Lu::new(&a)?;
/// let x = lu.solve(&[3.0, 4.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), statobd_num::NumError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors (L has implicit unit diagonal).
    lu: DMatrix,
    /// Row permutation: `perm[i]` is the original row in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1 or -1), for determinants.
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`NumError::Dimension`] if `a` is not square,
    /// * [`NumError::Singular`] if a zero pivot is encountered.
    pub fn new(a: &DMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(NumError::Dimension {
                detail: format!(
                    "LU requires a square matrix, got {}x{}",
                    a.nrows(),
                    a.ncols()
                ),
            });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Pivot selection.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val == 0.0 || !pivot_val.is_finite() {
                return Err(NumError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            // Elimination.
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `b.len()` does not match.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumError::Dimension {
                detail: format!("rhs length {} != {}", b.len(), n),
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.lu[(i, k)] * y[k];
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.lu[(i, k)] * y[k];
            }
            y[i] /= self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_permuted_system() {
        let a = DMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.0, 0.0], &[3.0, 1.0, 0.0]]);
        let x_true = [1.0, 2.0, -1.0];
        let b = a.mul_vec(&x_true);
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn detects_singularity() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(NumError::Singular)));
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = DMatrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() - (-14.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        // Requires a pivot swap; det is -2.
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        let a = DMatrix::zeros(3, 2);
        assert!(matches!(Lu::new(&a), Err(NumError::Dimension { .. })));
    }
}
