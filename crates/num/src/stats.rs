//! Descriptive statistics and model-validation metrics.
//!
//! Includes the goodness-of-fit measures the paper reports: the R² of the
//! Gaussian fit to BLOD histograms (Fig. 4), the mutual information between
//! the BLOD sample mean and variance (Fig. 7), and Kolmogorov–Smirnov
//! distances used to validate the χ² approximation (Fig. 8).

use crate::hist::{Histogram1d, Histogram2d};
use crate::{NumError, Result};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use statobd_num::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert!((s.sample_variance() - 5.0/3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Streaming quantile sketch with deterministic, order-independent merges.
///
/// Wraps a fixed-layout [`Histogram1d`] (integer bin counts) together with
/// exact running min/max. Every accumulator is either a `u64` count or an
/// exact `min`/`max` fold, so splitting an observation stream across shards
/// and merging the shard sketches — in any order — reproduces the
/// single-pass sketch *bit-for-bit*. Quantiles are then extracted
/// deterministically from the merged counts. This is the reduction primitive
/// the fleet workload uses for lifetime/FIT percentiles.
///
/// Accuracy: interior quantiles are linearly interpolated within a bin, so
/// the error is bounded by one bin width of the configured range; the
/// extreme quantiles (`q = 0`, `q = 1`) are exact (they return the running
/// min/max), and mass falling outside `[lo, hi)` is attributed to the
/// appropriate extreme rather than lost.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    hist: Histogram1d,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Creates an empty sketch over the bin range `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        Ok(QuantileSketch {
            hist: Histogram1d::new(lo, hi, bins)?,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        })
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.hist.add(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Total observations, including those outside the bin range.
    pub fn count(&self) -> u64 {
        let (below, above) = self.hist.outliers();
        self.hist.total() + below + above
    }

    /// Exact minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact maximum observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The sketch's bin range `[lo, hi)`.
    pub fn range(&self) -> (f64, f64) {
        self.hist.range()
    }

    /// Merges another sketch into this one (exact and commutative).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if the bin layouts differ.
    pub fn merge(&mut self, other: &QuantileSketch) -> Result<()> {
        self.hist.merge(&other.hist)?;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Estimated `q`-quantile over *all* observations.
    ///
    /// Mass below/above the bin range maps to the exact min/max, interior
    /// mass is interpolated within its bin, and the result is clamped to
    /// the observed `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if the sketch is empty or `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(NumError::Domain {
                detail: format!("quantile level must be in [0, 1], got {q}"),
            });
        }
        let total = self.count();
        if total == 0 {
            return Err(NumError::Domain {
                detail: "quantile of an empty sketch".to_string(),
            });
        }
        let (below, _above) = self.hist.outliers();
        let in_range = self.hist.total();
        let target = q * total as f64;
        if target <= below as f64 {
            return Ok(self.min);
        }
        if target >= (below + in_range) as f64 {
            return Ok(self.max);
        }
        // Interior mass: rescale the target onto the in-range histogram.
        let q_in = ((target - below as f64) / in_range as f64).clamp(0.0, 1.0);
        Ok(self.hist.quantile(q_in)?.clamp(self.min, self.max))
    }
}

/// Sample mean of a slice.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn mean(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "mean of empty slice");
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance of a slice.
///
/// # Panics
///
/// Panics if `data.len() < 2`.
pub fn sample_variance(data: &[f64]) -> f64 {
    assert!(data.len() >= 2, "sample variance needs at least 2 points");
    let m = mean(data);
    data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Sample skewness (Fisher–Pearson, bias-uncorrected).
///
/// # Panics
///
/// Panics if `data.len() < 2` or the data is constant.
pub fn skewness(data: &[f64]) -> f64 {
    assert!(data.len() >= 2, "skewness needs at least 2 points");
    let m = mean(data);
    let n = data.len() as f64;
    let m2 = data.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / n;
    let m3 = data.iter().map(|&x| (x - m).powi(3)).sum::<f64>() / n;
    assert!(m2 > 0.0, "skewness undefined for constant data");
    m3 / m2.powf(1.5)
}

/// Sample excess kurtosis (bias-uncorrected): 0 for a Gaussian.
///
/// # Panics
///
/// Panics if `data.len() < 2` or the data is constant.
pub fn excess_kurtosis(data: &[f64]) -> f64 {
    assert!(data.len() >= 2, "kurtosis needs at least 2 points");
    let m = mean(data);
    let n = data.len() as f64;
    let m2 = data.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / n;
    let m4 = data.iter().map(|&x| (x - m).powi(4)).sum::<f64>() / n;
    assert!(m2 > 0.0, "kurtosis undefined for constant data");
    m4 / (m2 * m2) - 3.0
}

/// Linear-interpolated empirical quantile of **sorted** data.
///
/// # Errors
///
/// Returns [`NumError::Domain`] if `data` is empty or `p ∉ [0, 1]`.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> Result<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&p) {
        return Err(NumError::Domain {
            detail: format!(
                "quantile needs non-empty data and p in [0,1], got n={}, p={p}",
                sorted.len()
            ),
        });
    }
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let pos = p * (n - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 >= n {
        Ok(sorted[n - 1])
    } else {
        Ok(sorted[i] * (1.0 - frac) + sorted[i + 1] * frac)
    }
}

/// Coefficient of determination R² between observations and model values.
///
/// This is the metric the paper quotes for the Gaussian fit of the BLOD
/// histograms (99.8 % / 99.5 % in its Fig. 4).
///
/// # Errors
///
/// Returns [`NumError::Domain`] if lengths differ, fewer than 2 points are
/// given, or the observations are constant.
pub fn r_squared(observed: &[f64], modeled: &[f64]) -> Result<f64> {
    if observed.len() != modeled.len() || observed.len() < 2 {
        return Err(NumError::Domain {
            detail: format!(
                "r_squared needs equal-length inputs with >= 2 points, got {} and {}",
                observed.len(),
                modeled.len()
            ),
        });
    }
    let m = mean(observed);
    let ss_tot: f64 = observed.iter().map(|&y| (y - m) * (y - m)).sum();
    if ss_tot == 0.0 {
        return Err(NumError::Domain {
            detail: "r_squared undefined for constant observations".to_string(),
        });
    }
    let ss_res: f64 = observed
        .iter()
        .zip(modeled)
        .map(|(&y, &f)| (y - f) * (y - f))
        .sum();
    Ok(1.0 - ss_res / ss_tot)
}

/// Mutual information (in nats) of a 2-D histogram's joint distribution.
///
/// `I(X;Y) = Σ p(x,y) ln( p(x,y) / (p(x)p(y)) )`, the independence measure
/// the paper uses to justify `f(u,v) ≈ f(u)·f(v)` (it reports ≈ 0.003).
pub fn mutual_information(hist: &Histogram2d) -> f64 {
    let joint = hist.joint_probabilities();
    let mx = hist.marginal_x();
    let my = hist.marginal_y();
    let (xbins, ybins) = hist.shape();
    let mut mi = 0.0;
    for i in 0..xbins {
        for j in 0..ybins {
            let pxy = joint[i * ybins + j];
            if pxy > 0.0 {
                mi += pxy * (pxy / (mx[i] * my[j])).ln();
            }
        }
    }
    mi.max(0.0)
}

/// Two-sample style Kolmogorov–Smirnov distance between an empirical sample
/// and a reference CDF.
///
/// # Errors
///
/// Returns [`NumError::Domain`] if `sample` is empty.
pub fn ks_distance(sample: &mut [f64], cdf: impl Fn(f64) -> f64) -> Result<f64> {
    if sample.is_empty() {
        return Err(NumError::Domain {
            detail: "ks_distance needs a non-empty sample".to_string(),
        });
    }
    sample.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sample.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sample.iter().enumerate() {
        let f = cdf(x);
        let emp_hi = (i as f64 + 1.0) / n;
        let emp_lo = i as f64 / n;
        d = d.max((f - emp_lo).abs()).max((emp_hi - f).abs());
    }
    Ok(d)
}

/// Relative error `|estimate − reference| / |reference|`.
///
/// # Panics
///
/// Panics if `reference == 0`.
pub fn relative_error(estimate: f64, reference: f64) -> f64 {
    assert!(
        reference != 0.0,
        "relative error undefined for zero reference"
    );
    ((estimate - reference) / reference).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::norm_cdf;

    #[test]
    fn online_stats_matches_batch() {
        let data = [1.5, 2.5, -3.0, 4.0, 0.0, 7.25];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert!((s.mean() - mean(&data)).abs() < 1e-12);
        assert!((s.sample_variance() - sample_variance(&data)).abs() < 1e-12);
        assert_eq!(s.min(), -3.0);
        assert_eq!(s.max(), 7.25);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.77).sin() * 3.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile_sorted(&sorted, 0.0).unwrap(), 1.0);
        assert_eq!(quantile_sorted(&sorted, 1.0).unwrap(), 5.0);
        assert_eq!(quantile_sorted(&sorted, 0.5).unwrap(), 3.0);
        assert_eq!(quantile_sorted(&sorted, 0.25).unwrap(), 2.0);
        assert!(quantile_sorted(&[], 0.5).is_err());
        assert!(quantile_sorted(&sorted, 1.5).is_err());
    }

    #[test]
    fn r_squared_perfect_and_mean_model() {
        let obs = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&obs, &obs).unwrap() - 1.0).abs() < 1e-15);
        // Predicting the mean gives R² = 0.
        let mean_model = [2.5; 4];
        assert!(r_squared(&obs, &mean_model).unwrap().abs() < 1e-15);
    }

    #[test]
    fn r_squared_rejects_degenerate() {
        assert!(r_squared(&[1.0], &[1.0]).is_err());
        assert!(r_squared(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(r_squared(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn mutual_information_zero_for_independent() {
        let mut h = Histogram2d::new((0.0, 1.0, 4), (0.0, 1.0, 4)).unwrap();
        // Product fill: exactly independent.
        for i in 0..4 {
            for j in 0..4 {
                for _ in 0..(i + 1) * (j + 1) {
                    h.add(0.125 + i as f64 * 0.25, 0.125 + j as f64 * 0.25);
                }
            }
        }
        assert!(mutual_information(&h) < 1e-12);
    }

    #[test]
    fn mutual_information_positive_for_dependent() {
        let mut h = Histogram2d::new((0.0, 1.0, 4), (0.0, 1.0, 4)).unwrap();
        // Perfectly correlated fill.
        for i in 0..4 {
            for _ in 0..25 {
                h.add(0.125 + i as f64 * 0.25, 0.125 + i as f64 * 0.25);
            }
        }
        // I = H(X) = ln 4 for a uniform perfectly-dependent pair.
        assert!((mutual_information(&h) - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ks_distance_small_for_matching_cdf() {
        // Deterministic normal scores: KS should be ~1/n.
        let n = 1000;
        let mut sample: Vec<f64> = (1..=n)
            .map(|i| crate::special::norm_inv_cdf(i as f64 / (n as f64 + 1.0)).unwrap())
            .collect();
        let d = ks_distance(&mut sample, norm_cdf).unwrap();
        assert!(d < 2.0 / n as f64, "KS {d}");
    }

    #[test]
    fn skewness_and_kurtosis_of_known_shapes() {
        // Symmetric data: zero skew.
        let sym = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&sym).abs() < 1e-12);
        // Right-skewed data: positive skew.
        let right = [0.0, 0.0, 0.0, 0.1, 10.0];
        assert!(skewness(&right) > 1.0);
        // Uniform-ish data: negative excess kurtosis (platykurtic).
        let uniform: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(excess_kurtosis(&uniform) < -1.0);
        // Heavy-tailed data: positive excess kurtosis.
        let mut heavy = vec![0.0; 98];
        heavy.push(50.0);
        heavy.push(-50.0);
        assert!(excess_kurtosis(&heavy) > 10.0);
    }

    #[test]
    fn quantile_sketch_tracks_sorted_quantiles() {
        // Deterministic, non-uniformly spaced data in [0, 10).
        let data: Vec<f64> = (0..2000)
            .map(|i| 5.0 + 4.9 * (i as f64 * 0.137).sin())
            .collect();
        let mut sketch = QuantileSketch::new(0.0, 10.0, 200).unwrap();
        for &x in &data {
            sketch.add(x);
        }
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let bin_w = 10.0 / 200.0;
        for q in [0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let est = sketch.quantile(q).unwrap();
            let exact = quantile_sorted(&sorted, q).unwrap();
            assert!(
                (est - exact).abs() <= bin_w,
                "q={q}: sketch {est} vs exact {exact}"
            );
        }
        // Extreme quantiles are exact.
        assert_eq!(sketch.quantile(0.0).unwrap(), sorted[0]);
        assert_eq!(sketch.quantile(1.0).unwrap(), sorted[sorted.len() - 1]);
        assert_eq!(sketch.count(), 2000);
    }

    #[test]
    fn quantile_sketch_merge_is_bit_identical_to_single_pass() {
        let data: Vec<f64> = (0..999).map(|i| (i as f64 * 0.311).cos() * 7.0).collect();
        let mut whole = QuantileSketch::new(-5.0, 5.0, 64).unwrap();
        for &x in &data {
            whole.add(x);
        }
        // Three shards, merged in a non-stream order (1 <- 2, then 0 <- that).
        let mut shards: Vec<QuantileSketch> = (0..3)
            .map(|_| QuantileSketch::new(-5.0, 5.0, 64).unwrap())
            .collect();
        for (i, &x) in data.iter().enumerate() {
            shards[i % 3].add(x);
        }
        let s2 = shards.pop().unwrap();
        let mut s1 = shards.pop().unwrap();
        let mut s0 = shards.pop().unwrap();
        s1.merge(&s2).unwrap();
        s0.merge(&s1).unwrap();
        let merged = &s0;
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min().to_bits(), whole.min().to_bits());
        assert_eq!(merged.max().to_bits(), whole.max().to_bits());
        for q in [0.0, 0.1, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(
                merged.quantile(q).unwrap().to_bits(),
                whole.quantile(q).unwrap().to_bits(),
                "quantile {q} diverged after merge"
            );
        }
    }

    #[test]
    fn quantile_sketch_attributes_outliers_to_extremes() {
        // Range only covers [0, 1) but data spills both sides.
        let mut s = QuantileSketch::new(0.0, 1.0, 10).unwrap();
        s.add(-100.0);
        s.add(0.5);
        s.add(0.5);
        s.add(200.0);
        assert_eq!(s.count(), 4);
        assert_eq!(s.quantile(0.0).unwrap(), -100.0);
        // q=0.1 -> target 0.4 of 4 obs, inside the below-range mass.
        assert_eq!(s.quantile(0.1).unwrap(), -100.0);
        assert_eq!(s.quantile(1.0).unwrap(), 200.0);
        assert_eq!(s.quantile(0.9).unwrap(), 200.0);
        // Median lands in the occupied interior bin.
        let med = s.quantile(0.5).unwrap();
        assert!((0.0..1.0).contains(&med), "median {med}");
    }

    #[test]
    fn quantile_sketch_rejects_bad_input() {
        let empty = QuantileSketch::new(0.0, 1.0, 4).unwrap();
        assert!(empty.quantile(0.5).is_err());
        let mut a = QuantileSketch::new(0.0, 1.0, 4).unwrap();
        a.add(0.5);
        assert!(a.quantile(-0.1).is_err());
        assert!(a.quantile(1.1).is_err());
        assert!(a.quantile(f64::NAN).is_err());
        // Layout mismatch is rejected and leaves the target untouched.
        let mut b = QuantileSketch::new(0.0, 1.0, 8).unwrap();
        b.add(0.25);
        assert!(a.merge(&b).is_err());
        assert_eq!(a.count(), 1);
        assert!(QuantileSketch::new(1.0, 0.0, 4).is_err());
        assert!(QuantileSketch::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(0.9, 1.0) - 0.1).abs() < 1e-12);
    }
}
