//! Numerical foundations for the `statobd` workspace.
//!
//! This crate provides the self-contained numerical substrate needed by the
//! statistical oxide-breakdown reliability analysis:
//!
//! * dense linear algebra ([`matrix::DMatrix`], tiered symmetric
//!   eigendecomposition — Jacobi, Householder tridiagonalization +
//!   implicit-shift QL, blocked Lanczos top-k — plus Cholesky and LU
//!   factorizations),
//! * sparse matrices and a preconditioned conjugate-gradient solver with a
//!   pluggable [`cg::Preconditioner`] — Jacobi diagonal, zero-fill
//!   incomplete Cholesky ([`precond::Ic0`]) and a geometric-multigrid
//!   V-cycle ([`multigrid::Multigrid`]) — used by the thermal simulator,
//! * special functions (`erf`, `ln_gamma`, regularized incomplete gamma),
//! * probability distributions (normal, gamma/χ², Weibull, exponential) with
//!   PDFs, CDFs, quantiles and sampling,
//! * 1-D and 2-D quadrature rules (midpoint, Simpson, Gauss–Legendre),
//! * interpolation (linear, bilinear, on rectilinear grids),
//! * histograms and descriptive statistics (R², mutual information,
//!   Kolmogorov–Smirnov distance),
//! * a deterministic pseudo-random stream ([`rng::Xoshiro256pp`]) and
//!   normal/exponential samplers,
//! * a runtime-dispatched SIMD-style lane layer ([`simd`]) with
//!   vectorized `exp`/`exp_m1`/`ln_1p` kernels for the engines' hot
//!   transcendental loops,
//! * a JSON value model with parser and serializers ([`json`]),
//! * stable, toolchain-independent FNV-1a content hashing ([`hash`]),
//! * chunked scoped-thread parallelism with deterministic reduction order
//!   ([`parallel`]).
//!
//! Everything is implemented from scratch on `f64` with **no external
//! dependencies** — the whole workspace builds offline against an empty
//! cargo registry.
//!
//! # Example
//!
//! ```
//! use statobd_num::matrix::DMatrix;
//! use statobd_num::eigen::SymmetricEigen;
//!
//! // Eigendecomposition of a small correlation matrix.
//! let c = DMatrix::from_rows(&[
//!     &[1.0, 0.5],
//!     &[0.5, 1.0],
//! ]);
//! let eig = SymmetricEigen::new(&c).expect("symmetric");
//! assert!((eig.eigenvalues()[0] - 1.5).abs() < 1e-12);
//! assert!((eig.eigenvalues()[1] - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cg;
pub mod cholesky;
pub mod dist;
pub mod eigen;
pub mod hash;
pub mod hist;
pub mod interp;
pub mod json;
pub mod lanczos;
pub mod lu;
pub mod matrix;
pub mod multigrid;
pub mod parallel;
pub mod precond;
pub mod quad;
pub mod quadform;
pub mod rng;
pub mod simd;
pub mod sparse;
pub mod special;
pub mod stats;
pub mod tridiag;

pub use matrix::DMatrix;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumError {
    /// A matrix argument had incompatible or invalid dimensions.
    Dimension {
        /// Human-readable description of the dimension mismatch.
        detail: String,
    },
    /// A factorization failed because the matrix is not (numerically)
    /// positive definite.
    NotPositiveDefinite,
    /// A factorization failed because the matrix is singular.
    Singular,
    /// The input matrix was expected to be symmetric but is not.
    NotSymmetric,
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations (or sweeps) performed before giving up.
        iterations: usize,
        /// Residual (or remaining off-diagonal norm) at the point of failure.
        residual: f64,
        /// Problem size the iteration ran on (matrix dimension, eigenvalue
        /// count, …) — context for diagnosing which decomposition failed.
        dimension: usize,
    },
    /// A scalar argument was outside its mathematical domain.
    Domain {
        /// Human-readable description of the domain violation.
        detail: String,
    },
}

impl std::fmt::Display for NumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumError::Dimension { detail } => write!(f, "dimension mismatch: {detail}"),
            NumError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            NumError::Singular => write!(f, "matrix is singular"),
            NumError::NotSymmetric => write!(f, "matrix is not symmetric"),
            NumError::NoConvergence {
                iterations,
                residual,
                dimension,
            } => write!(
                f,
                "iteration failed to converge after {iterations} iterations \
                 on a size-{dimension} problem (residual {residual:.3e})"
            ),
            NumError::Domain { detail } => write!(f, "domain error: {detail}"),
        }
    }
}

impl std::error::Error for NumError {}

/// Convenience result alias for fallible numerical routines.
pub type Result<T> = std::result::Result<T, NumError>;
