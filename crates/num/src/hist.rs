//! 1-D and 2-D histograms.
//!
//! Used for (a) building block-level oxide-thickness distributions (BLODs)
//! from Monte-Carlo samples (paper Fig. 4), (b) constructing the numerical
//! joint PDF of `(u_j, v_j)` for the `st_MC` engine (paper Sec. V), and
//! (c) the mutual-information estimate of Fig. 7.

use crate::{NumError, Result};

/// A uniform-bin 1-D histogram over `[lo, hi)`.
///
/// Values outside the range are counted in saturating edge bins' *outlier*
/// counters, never silently dropped.
#[derive(Debug, Clone)]
pub struct Histogram1d {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
    total_in_range: u64,
}

impl Histogram1d {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 || !(lo < hi) {
            return Err(NumError::Domain {
                detail: format!("histogram needs bins > 0 and lo < hi, got {bins}, [{lo}, {hi})"),
            });
        }
        Ok(Histogram1d {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
            total_in_range: 0,
        })
    }

    /// Builds a histogram spanning the min/max of `data` with `bins` bins.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if `data` is empty, contains non-finite
    /// values, or is constant.
    pub fn from_data(data: &[f64], bins: usize) -> Result<Self> {
        if data.is_empty() {
            return Err(NumError::Domain {
                detail: "cannot build a histogram from empty data".to_string(),
            });
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in data {
            if !v.is_finite() {
                return Err(NumError::Domain {
                    detail: "histogram data contains non-finite values".to_string(),
                });
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo == hi {
            return Err(NumError::Domain {
                detail: "histogram data is constant".to_string(),
            });
        }
        // Nudge the top so the max lands in the last bin.
        let span = hi - lo;
        let mut h = Self::new(lo, hi + span * 1e-9, bins)?;
        for &v in data {
            h.add(v);
        }
        Ok(h)
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let bins = self.counts.len();
            let idx = (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize;
            self.counts[idx.min(bins - 1)] += 1;
            self.total_in_range += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw in-range bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below/above the range.
    pub fn outliers(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.total_in_range
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// The histogram's range `[lo, hi)`.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Merges another histogram's counts into this one.
    ///
    /// All accumulators are integer counts, so the merge is *exact and
    /// commutative*: any partitioning of an observation stream across
    /// shard histograms, merged in any order, reproduces the single-pass
    /// histogram bit-for-bit. Sharded reducers (the fleet workload) rest
    /// their determinism guarantee on this.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] unless the two layouts are identical
    /// (bit-equal `lo` and `hi`, same bin count) — merging histograms
    /// with different bin geometries would silently misattribute mass.
    pub fn merge(&mut self, other: &Histogram1d) -> Result<()> {
        if self.lo.to_bits() != other.lo.to_bits()
            || self.hi.to_bits() != other.hi.to_bits()
            || self.counts.len() != other.counts.len()
        {
            return Err(NumError::Domain {
                detail: format!(
                    "cannot merge histograms with different layouts: [{}, {}) x {} vs \
                     [{}, {}) x {}",
                    self.lo,
                    self.hi,
                    self.counts.len(),
                    other.lo,
                    other.hi,
                    other.counts.len()
                ),
            });
        }
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.below += other.below;
        self.above += other.above;
        self.total_in_range += other.total_in_range;
        Ok(())
    }

    /// Extracts the `q`-quantile of the **in-range** mass from the bin
    /// counts, spreading each bin's count uniformly over its width
    /// (linear interpolation). Out-of-range observations are excluded;
    /// callers that need tail-exact edges should track min/max alongside
    /// (see [`crate::stats::QuantileSketch`]).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if `q` is outside `[0, 1]` or the
    /// histogram holds no in-range observations.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(NumError::Domain {
                detail: format!("quantile level must be in [0, 1], got {q}"),
            });
        }
        if self.total_in_range == 0 {
            return Err(NumError::Domain {
                detail: "quantile of a histogram with no in-range observations".to_string(),
            });
        }
        // The cumulative walk stays in u64: summing counts in f64 loses
        // integer precision past 2^53 and accumulates rounding that can
        // select a neighboring bin. Only the within-bin interpolation —
        // inherently fractional — converts to float.
        let target = q * self.total_in_range as f64;
        let width = self.bin_width();
        let mut cum: u64 = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return Ok(self.lo + (i as f64 + frac) * width);
            }
            cum += c;
        }
        // Float rounding in `target` walked past the last occupied bin:
        // its top edge.
        let last = self
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .expect("total_in_range > 0 implies an occupied bin");
        Ok(self.lo + (last as f64 + 1.0) * width)
    }

    /// Normalized density values (integrate to 1 over the in-range mass).
    pub fn density(&self) -> Vec<f64> {
        let norm = self.total_in_range.max(1) as f64 * self.bin_width();
        self.counts.iter().map(|&c| c as f64 / norm).collect()
    }

    /// Empirical probability per bin (sums to 1 over in-range mass).
    pub fn probabilities(&self) -> Vec<f64> {
        let n = self.total_in_range.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / n).collect()
    }
}

/// A uniform-bin 2-D histogram over `[xlo, xhi) × [ylo, yhi)`.
#[derive(Debug, Clone)]
pub struct Histogram2d {
    xlo: f64,
    xhi: f64,
    ylo: f64,
    yhi: f64,
    xbins: usize,
    ybins: usize,
    counts: Vec<u64>,
    total_in_range: u64,
    outliers: u64,
}

impl Histogram2d {
    /// Creates a 2-D histogram.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] on empty bins or inverted ranges.
    pub fn new(
        (xlo, xhi, xbins): (f64, f64, usize),
        (ylo, yhi, ybins): (f64, f64, usize),
    ) -> Result<Self> {
        if xbins == 0 || ybins == 0 || !(xlo < xhi) || !(ylo < yhi) {
            return Err(NumError::Domain {
                detail: "2-D histogram needs positive bins and ordered ranges".to_string(),
            });
        }
        Ok(Histogram2d {
            xlo,
            xhi,
            ylo,
            yhi,
            xbins,
            ybins,
            counts: vec![0; xbins * ybins],
            total_in_range: 0,
            outliers: 0,
        })
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64, y: f64) {
        if x < self.xlo || x >= self.xhi || y < self.ylo || y >= self.yhi {
            self.outliers += 1;
            return;
        }
        let i = (((x - self.xlo) / (self.xhi - self.xlo)) * self.xbins as f64) as usize;
        let j = (((y - self.ylo) / (self.yhi - self.ylo)) * self.ybins as f64) as usize;
        let i = i.min(self.xbins - 1);
        let j = j.min(self.ybins - 1);
        self.counts[i * self.ybins + j] += 1;
        self.total_in_range += 1;
    }

    /// Bin counts (row-major over x, then y).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// (xbins, ybins).
    pub fn shape(&self) -> (usize, usize) {
        (self.xbins, self.ybins)
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.total_in_range
    }

    /// Observations that fell outside the range.
    pub fn outlier_count(&self) -> u64 {
        self.outliers
    }

    /// (x bin width, y bin width).
    pub fn bin_widths(&self) -> (f64, f64) {
        (
            (self.xhi - self.xlo) / self.xbins as f64,
            (self.yhi - self.ylo) / self.ybins as f64,
        )
    }

    /// Center of bin `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn bin_center(&self, i: usize, j: usize) -> (f64, f64) {
        assert!(i < self.xbins && j < self.ybins, "bin index out of range");
        let (wx, wy) = self.bin_widths();
        (
            self.xlo + (i as f64 + 0.5) * wx,
            self.ylo + (j as f64 + 0.5) * wy,
        )
    }

    /// Joint probability mass per bin (sums to 1 over in-range mass).
    pub fn joint_probabilities(&self) -> Vec<f64> {
        let n = self.total_in_range.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / n).collect()
    }

    /// Joint density per bin (integrates to 1 over in-range mass).
    pub fn joint_density(&self) -> Vec<f64> {
        let (wx, wy) = self.bin_widths();
        let norm = self.total_in_range.max(1) as f64 * wx * wy;
        self.counts.iter().map(|&c| c as f64 / norm).collect()
    }

    /// Marginal probability over x (length `xbins`).
    pub fn marginal_x(&self) -> Vec<f64> {
        let n = self.total_in_range.max(1) as f64;
        (0..self.xbins)
            .map(|i| {
                (0..self.ybins)
                    .map(|j| self.counts[i * self.ybins + j] as f64)
                    .sum::<f64>()
                    / n
            })
            .collect()
    }

    /// Marginal probability over y (length `ybins`).
    pub fn marginal_y(&self) -> Vec<f64> {
        let n = self.total_in_range.max(1) as f64;
        (0..self.ybins)
            .map(|j| {
                (0..self.xbins)
                    .map(|i| self.counts[i * self.ybins + j] as f64)
                    .sum::<f64>()
                    / n
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_correct_bins() {
        let mut h = Histogram1d::new(0.0, 10.0, 10).unwrap();
        h.add(0.5);
        h.add(9.99);
        h.add(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn outliers_tracked_not_dropped() {
        let mut h = Histogram1d::new(0.0, 1.0, 4).unwrap();
        h.add(-1.0);
        h.add(2.0);
        h.add(0.5);
        assert_eq!(h.outliers(), (1, 1));
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram1d::new(0.0, 2.0, 8).unwrap();
        for i in 0..1000 {
            h.add((i as f64 / 1000.0) * 2.0);
        }
        let integral: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_data_covers_all_points() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let h = Histogram1d::from_data(&data, 16).unwrap();
        assert_eq!(h.total(), 100);
        assert_eq!(h.outliers(), (0, 0));
    }

    #[test]
    fn from_data_rejects_degenerate() {
        assert!(Histogram1d::from_data(&[], 4).is_err());
        assert!(Histogram1d::from_data(&[1.0, 1.0], 4).is_err());
        assert!(Histogram1d::from_data(&[1.0, f64::NAN], 4).is_err());
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        // Split one stream across three shard histograms; every merge
        // order must reproduce the single-pass histogram exactly.
        let values: Vec<f64> = (0..3000).map(|i| ((i * 37) % 997) as f64 / 100.0).collect();
        let mut single = Histogram1d::new(0.0, 8.0, 13).unwrap();
        for &v in &values {
            single.add(v);
        }
        let mut shards: Vec<Histogram1d> = (0..3)
            .map(|_| Histogram1d::new(0.0, 8.0, 13).unwrap())
            .collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % 3].add(v);
        }
        for order in [[0, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let mut merged = Histogram1d::new(0.0, 8.0, 13).unwrap();
            for &s in &order {
                merged.merge(&shards[s]).unwrap();
            }
            assert_eq!(merged.counts(), single.counts(), "order {order:?}");
            assert_eq!(merged.outliers(), single.outliers());
            assert_eq!(merged.total(), single.total());
        }
    }

    #[test]
    fn merge_rejects_incompatible_layouts() {
        let mut base = Histogram1d::new(0.0, 1.0, 4).unwrap();
        // Different bin count, different lo, different hi: all rejected
        // with a message naming both layouts.
        for other in [
            Histogram1d::new(0.0, 1.0, 5).unwrap(),
            Histogram1d::new(0.1, 1.0, 4).unwrap(),
            Histogram1d::new(0.0, 2.0, 4).unwrap(),
        ] {
            let err = base.merge(&other).unwrap_err().to_string();
            assert!(err.contains("different layouts"), "{err}");
        }
        // And the failed merges left the target untouched.
        assert_eq!(base.total(), 0);
        let same = Histogram1d::new(0.0, 1.0, 4).unwrap();
        assert!(base.merge(&same).is_ok());
    }

    #[test]
    fn quantile_interpolates_within_bins() {
        // Uniform fill of [0, 10): quantiles ≈ identity scaled by 10.
        let mut h = Histogram1d::new(0.0, 10.0, 20).unwrap();
        for i in 0..10_000 {
            h.add(i as f64 / 1000.0);
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((v - 10.0 * q).abs() <= h.bin_width(), "q {q}: {v}");
        }
        // Quantiles are monotone in q.
        let vs: Vec<f64> = (0..=10)
            .map(|i| h.quantile(i as f64 / 10.0).unwrap())
            .collect();
        assert!(vs.windows(2).all(|w| w[0] <= w[1]), "{vs:?}");
    }

    #[test]
    fn quantile_cumulative_walk_is_exact_beyond_2_pow_53() {
        // Counts past 2^53 are not representable in f64: an f64
        // cumulative walk silently drops the low bits (2^53 + 1 rounds
        // to 2^53, and + 1 is then a no-op), which can land the
        // quantile a whole bin away. The u64 walk keeps the running
        // count exact; only the within-bin interpolation is float.
        let big = (1u64 << 53) + 1;
        let mut h = Histogram1d::new(0.0, 4.0, 4).unwrap();
        h.counts = vec![big, 1, 1, big];
        h.total_in_range = 2 * big + 2;
        // Exact cumulative: bin 0 holds 2^53 + 1, bin 1 reaches the
        // median mass 2^53 + 2 at its top edge — x = 2.0. The rounding
        // walk skips bin 1 entirely and lands in bin 3.
        let v = h.quantile(0.5).unwrap();
        assert!((v - 2.0).abs() < 1e-9, "median at bin-1 top edge, got {v}");
    }

    #[test]
    fn quantile_ignores_outliers_and_rejects_bad_input() {
        let mut h = Histogram1d::new(0.0, 1.0, 4).unwrap();
        assert!(h.quantile(0.5).is_err(), "empty histogram");
        h.add(-5.0);
        h.add(7.0);
        assert!(h.quantile(0.5).is_err(), "outliers alone are not mass");
        h.add(0.3);
        let v = h.quantile(0.5).unwrap();
        assert!(
            (0.25..0.5).contains(&v),
            "median in the occupied bin, got {v}"
        );
        assert!(h.quantile(-0.1).is_err());
        assert!(h.quantile(1.5).is_err());
        assert!(h.quantile(f64::NAN).is_err());
    }

    #[test]
    fn hist2d_marginals_sum_to_one() {
        let mut h = Histogram2d::new((0.0, 1.0, 4), (0.0, 1.0, 5)).unwrap();
        for i in 0..200 {
            let x = (i as f64 * 0.618) % 1.0;
            let y = (i as f64 * 0.414) % 1.0;
            h.add(x, y);
        }
        let sx: f64 = h.marginal_x().iter().sum();
        let sy: f64 = h.marginal_y().iter().sum();
        assert!((sx - 1.0).abs() < 1e-12);
        assert!((sy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hist2d_joint_matches_marginal_product_for_independent_fill() {
        // A full-grid deterministic fill is exactly independent.
        let mut h = Histogram2d::new((0.0, 1.0, 3), (0.0, 1.0, 3)).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                h.add(0.17 + i as f64 / 3.0, 0.17 + j as f64 / 3.0);
            }
        }
        let joint = h.joint_probabilities();
        let mx = h.marginal_x();
        let my = h.marginal_y();
        for i in 0..3 {
            for j in 0..3 {
                assert!((joint[i * 3 + j] - mx[i] * my[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hist2d_outliers() {
        let mut h = Histogram2d::new((0.0, 1.0, 2), (0.0, 1.0, 2)).unwrap();
        h.add(2.0, 0.5);
        h.add(0.5, -0.1);
        h.add(0.5, 0.5);
        assert_eq!(h.outlier_count(), 2);
        assert_eq!(h.total(), 1);
    }
}
