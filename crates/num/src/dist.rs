//! Probability distributions with PDFs, CDFs, quantiles, moments and
//! sampling: normal, gamma, χ² (including fractional degrees of freedom, as
//! produced by the Yuan–Bentler approximation), Weibull and exponential.

use crate::rng::NormalSampler;
use crate::rng::Rng;
use crate::special::{gamma_p, gamma_p_inv, ln_gamma, norm_cdf, norm_inv_cdf, norm_pdf};
use crate::{NumError, Result};

/// A univariate continuous distribution.
///
/// All the distributions in this module implement this trait so that
/// goodness-of-fit utilities and the reliability integration engines can be
/// written generically.
pub trait ContinuousDistribution: std::fmt::Debug {
    /// Probability density function at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;
    /// Quantile function (inverse CDF) at probability `p ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] when `p` is outside `(0, 1)`.
    fn quantile(&self, p: f64) -> Result<f64>;
    /// Mean of the distribution.
    fn mean(&self) -> f64;
    /// Variance of the distribution.
    fn variance(&self) -> f64;
}

/// Normal distribution `N(μ, σ²)`.
///
/// # Example
///
/// ```
/// use statobd_num::dist::{Normal, ContinuousDistribution};
///
/// let n = Normal::new(2.2, 0.03)?;
/// assert!((n.cdf(2.2) - 0.5).abs() < 1e-14);
/// # Ok::<(), statobd_num::NumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if `std_dev <= 0` or either argument is
    /// non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self> {
        if !(std_dev > 0.0) || !mean.is_finite() || !std_dev.is_finite() {
            return Err(NumError::Domain {
                detail: format!(
                    "Normal requires finite mean and std_dev > 0, got ({mean}, {std_dev})"
                ),
            });
        }
        Ok(Normal { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Standard deviation σ.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, sampler: &mut NormalSampler) -> f64 {
        self.mean + self.std_dev * sampler.sample(rng)
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        norm_pdf((x - self.mean) / self.std_dev) / self.std_dev
    }

    fn cdf(&self, x: f64) -> f64 {
        norm_cdf((x - self.mean) / self.std_dev)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        Ok(self.mean + self.std_dev * norm_inv_cdf(p)?)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }
}

/// Gamma distribution with shape `k` and scale `θ` (mean `kθ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if `shape <= 0` or `scale <= 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !(shape > 0.0) || !(scale > 0.0) {
            return Err(NumError::Domain {
                detail: format!("Gamma requires shape > 0 and scale > 0, got ({shape}, {scale})"),
            });
        }
        Ok(Gamma { shape, scale })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Moment-generating function `E[e^{sX}] = (1 − sθ)^{−k}` for `sθ < 1`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] when `s·scale ≥ 1` (the MGF diverges).
    pub fn mgf(&self, s: f64) -> Result<f64> {
        let st = s * self.scale;
        if st >= 1.0 {
            return Err(NumError::Domain {
                detail: format!("gamma MGF diverges for s*scale >= 1, got {st}"),
            });
        }
        Ok((1.0 - st).powf(-self.shape))
    }

    /// Draws one sample via the Marsaglia–Tsang method (with the Ahrens
    /// boost for `shape < 1`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, sampler: &mut NormalSampler) -> f64 {
        if self.shape < 1.0 {
            // Boost: X ~ Gamma(k+1), return X * U^{1/k}.
            let boosted = Gamma {
                shape: self.shape + 1.0,
                scale: self.scale,
            };
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            return boosted.sample(rng, sampler) * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let z = sampler.sample(rng);
            let v = (1.0 + c * z).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
                return d * v * self.scale;
            }
        }
    }
}

impl ContinuousDistribution for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Density at zero: infinite for k < 1, 1/θ for k = 1, 0 for k > 1.
            return if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape == 1.0 {
                1.0 / self.scale
            } else {
                0.0
            };
        }
        let k = self.shape;
        let ln_pdf = (k - 1.0) * x.ln() - x / self.scale - ln_gamma(k) - k * self.scale.ln();
        ln_pdf.exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        gamma_p(self.shape, x / self.scale).unwrap_or(0.0)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&p) {
            return Err(NumError::Domain {
                detail: format!("quantile requires 0 <= p < 1, got {p}"),
            });
        }
        Ok(self.scale * gamma_p_inv(self.shape, p)?)
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }
}

/// χ² distribution with (possibly fractional) degrees of freedom `k`.
///
/// This is the `Gamma(k/2, 2)` special case packaged with the reliability
/// literature's parameterization: the Yuan–Bentler approximation of the BLOD
/// sample variance produces `v ≈ v₀ + â·χ²_{b̂}` with non-integer `b̂`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    gamma: Gamma,
    dof: f64,
}

impl ChiSquared {
    /// Creates a χ² distribution with `dof` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if `dof <= 0`.
    pub fn new(dof: f64) -> Result<Self> {
        Ok(ChiSquared {
            gamma: Gamma::new(dof / 2.0, 2.0)?,
            dof,
        })
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.dof
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, sampler: &mut NormalSampler) -> f64 {
        self.gamma.sample(rng, sampler)
    }
}

impl ContinuousDistribution for ChiSquared {
    fn pdf(&self, x: f64) -> f64 {
        self.gamma.pdf(x)
    }

    fn cdf(&self, x: f64) -> f64 {
        self.gamma.cdf(x)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        self.gamma.quantile(p)
    }

    fn mean(&self) -> f64 {
        self.dof
    }

    fn variance(&self) -> f64 {
        2.0 * self.dof
    }
}

/// Weibull distribution with scale `α` and shape `β`:
/// `F(t) = 1 − exp(−(t/α)^β)`.
///
/// This is the distribution of an individual device's time-to-breakdown
/// (paper eq. 3 with unit area).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    scale: f64,
    shape: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if `scale <= 0` or `shape <= 0`.
    pub fn new(scale: f64, shape: f64) -> Result<Self> {
        if !(scale > 0.0) || !(shape > 0.0) {
            return Err(NumError::Domain {
                detail: format!("Weibull requires scale > 0 and shape > 0, got ({scale}, {shape})"),
            });
        }
        Ok(Weibull { scale, shape })
    }

    /// Scale parameter `α` (the characteristic life: `F(α) = 1 − e⁻¹`).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Shape parameter `β` (the Weibull slope).
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Draws one sample by inversion: `t = α·(−ln U)^{1/β}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }
}

impl ContinuousDistribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return match self.shape.partial_cmp(&1.0) {
                Some(std::cmp::Ordering::Less) => f64::INFINITY,
                Some(std::cmp::Ordering::Equal) => 1.0 / self.scale,
                _ => 0.0,
            };
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        -(-((x / self.scale).powf(self.shape))).exp_m1()
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&p) {
            return Err(NumError::Domain {
                detail: format!("quantile requires 0 <= p < 1, got {p}"),
            });
        }
        // t = α (−ln(1−p))^{1/β}; use ln_1p for small p accuracy.
        Ok(self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape))
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = (ln_gamma(1.0 + 1.0 / self.shape)).exp();
        let g2 = (ln_gamma(1.0 + 2.0 / self.shape)).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if `rate <= 0`.
    pub fn new(rate: f64) -> Result<Self> {
        if !(rate > 0.0) {
            return Err(NumError::Domain {
                detail: format!("Exponential requires rate > 0, got {rate}"),
            });
        }
        Ok(Exponential { rate })
    }

    /// Rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws one sample by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate
    }
}

impl ContinuousDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&p) {
            return Err(NumError::Domain {
                detail: format!("quantile requires 0 <= p < 1, got {p}"),
            });
        }
        Ok(-(-p).ln_1p() / self.rate)
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn normal_pdf_cdf_quantile() {
        let n = Normal::new(1.0, 2.0).unwrap();
        assert_close(n.cdf(1.0), 0.5, 1e-14);
        assert_close(
            n.pdf(1.0),
            1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt()),
            1e-14,
        );
        let q = n.quantile(0.975).unwrap();
        assert_close(q, 1.0 + 2.0 * 1.959_963_984_540_054, 1e-8);
        assert_close(n.cdf(n.quantile(0.123).unwrap()), 0.123, 1e-12);
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn gamma_moments_and_cdf() {
        let g = Gamma::new(3.0, 2.0).unwrap();
        assert_close(g.mean(), 6.0, 1e-14);
        assert_close(g.variance(), 12.0, 1e-14);
        // Gamma(1, θ) is exponential.
        let e = Gamma::new(1.0, 2.0).unwrap();
        assert_close(e.cdf(2.0), 1.0 - (-1.0f64).exp(), 1e-13);
    }

    #[test]
    fn gamma_mgf_matches_monte_carlo_free_identity() {
        let g = Gamma::new(2.5, 0.1).unwrap();
        // MGF at 0 is 1; derivative at 0 is the mean (finite difference).
        assert_close(g.mgf(0.0).unwrap(), 1.0, 1e-14);
        let h = 1e-6;
        let deriv = (g.mgf(h).unwrap() - g.mgf(-h).unwrap()) / (2.0 * h);
        assert_close(deriv, g.mean(), 1e-5);
        assert!(g.mgf(10.1).is_err());
    }

    #[test]
    fn chi_squared_fractional_dof() {
        let c = ChiSquared::new(1.7).unwrap();
        assert_close(c.mean(), 1.7, 1e-14);
        assert_close(c.variance(), 3.4, 1e-14);
        let q = c.quantile(0.5).unwrap();
        assert_close(c.cdf(q), 0.5, 1e-10);
    }

    #[test]
    fn weibull_cdf_matches_formula() {
        let w = Weibull::new(100.0, 1.4).unwrap();
        for &t in &[1.0, 10.0, 63.0, 250.0] {
            let expected = 1.0 - (-(t / 100.0f64).powf(1.4)).exp();
            assert_close(w.cdf(t), expected, 1e-13);
        }
        // Characteristic life: F(α) = 1 − e⁻¹.
        assert_close(w.cdf(100.0), 1.0 - (-1.0f64).exp(), 1e-13);
    }

    #[test]
    fn weibull_quantile_small_p_is_accurate() {
        let w = Weibull::new(1e9, 1.4).unwrap();
        let p = 1e-12;
        let t = w.quantile(p).unwrap();
        // F(t) should round-trip even at the 1e-12 level thanks to expm1/ln1p.
        let rel = (w.cdf(t) - p).abs() / p;
        assert!(rel < 1e-9, "relative error {rel}");
    }

    #[test]
    fn sampling_moments_converge() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let mut ns = NormalSampler::new();
        let g = Gamma::new(2.0, 3.0).unwrap();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng, &mut ns)).sum::<f64>() / n as f64;
        assert_close(mean, g.mean(), 0.05);

        let w = Weibull::new(10.0, 2.0).unwrap();
        let wmean: f64 = (0..n).map(|_| w.sample(&mut rng)).sum::<f64>() / n as f64;
        assert_close(wmean, w.mean(), 0.05);
    }

    #[test]
    fn gamma_sample_small_shape() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut ns = NormalSampler::new();
        let g = Gamma::new(0.3, 1.0).unwrap();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng, &mut ns)).sum::<f64>() / n as f64;
        assert_close(mean, 0.3, 0.02);
    }

    #[test]
    fn exponential_basics() {
        let e = Exponential::new(0.5).unwrap();
        assert_close(e.mean(), 2.0, 1e-14);
        assert_close(e.cdf(e.quantile(0.9).unwrap()), 0.9, 1e-12);
        assert!(Exponential::new(0.0).is_err());
    }

    #[test]
    fn pdf_nonnegative_and_zero_left_of_support() {
        let g = Gamma::new(2.0, 1.0).unwrap();
        let w = Weibull::new(1.0, 2.0).unwrap();
        assert_eq!(g.pdf(-1.0), 0.0);
        assert_eq!(w.pdf(-0.5), 0.0);
        assert_eq!(w.cdf(-0.5), 0.0);
    }
}
