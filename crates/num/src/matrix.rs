//! Dense row-major matrices and the small set of operations the reliability
//! analysis needs: products, transposes, symmetry checks and norms.

use crate::{NumError, Result};

/// A dense, row-major `f64` matrix.
///
/// `DMatrix` deliberately exposes a small, explicit API rather than operator
/// overloading for every combination — the call sites in the analysis code
/// stay readable and allocation points stay visible.
///
/// # Example
///
/// ```
/// use statobd_num::matrix::DMatrix;
///
/// let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = vec![1.0, 1.0];
/// assert_eq!(a.mul_vec(&x), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates an `nrows × ncols` matrix filled with zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        DMatrix { nrows, ncols, data }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(NumError::Dimension {
                detail: format!(
                    "expected {} elements for a {}x{} matrix, got {}",
                    nrows * ncols,
                    nrows,
                    ncols,
                    data.len()
                ),
            });
        }
        Ok(DMatrix { nrows, ncols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DMatrix::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.nrows, "row index {i} out of bounds");
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.nrows, "row index {i} out of bounds");
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.ncols, "column index {j} out of bounds");
        (0..self.nrows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> DMatrix {
        DMatrix::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "vector length must equal ncols");
        let mut y = vec![0.0; self.nrows];
        for i in 0..self.nrows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix–vector product `A·x` written into a caller-provided buffer
    /// (no allocation — the hot path of the iterative eigensolvers).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "vector length must equal ncols");
        assert_eq!(y.len(), self.nrows, "output length must equal nrows");
        for (out, row) in y.iter_mut().zip(self.data.chunks_exact(self.ncols)) {
            *out = dot(row, x);
        }
    }

    /// Rows below this size × cols product run the serial matvec even when
    /// more threads are available — the fan-out costs more than it saves.
    const PARALLEL_MATVEC_MIN_FLOPS: usize = 64 * 1024;

    /// Matrix–vector product `A·x` with the rows fanned out over `threads`
    /// workers.
    ///
    /// Each output element is an independent dot product evaluated in index
    /// order, so the result is **bit-identical at any thread count**. Small
    /// products fall back to the serial loop.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec_parallel(&self, x: &[f64], threads: usize) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "vector length must equal ncols");
        let mut y = vec![0.0; self.nrows];
        if threads <= 1 || self.nrows * self.ncols < Self::PARALLEL_MATVEC_MIN_FLOPS {
            self.mul_vec_into(x, &mut y);
            return y;
        }
        // 16 rows per chunk: enough work per item to amortize scheduling,
        // fixed boundaries so the output never depends on the schedule.
        let rows_per_chunk = 16;
        crate::parallel::for_each_chunk_mut(&mut y, rows_per_chunk, threads, |ci, chunk| {
            let base = ci * rows_per_chunk;
            for (r, out) in chunk.iter_mut().enumerate() {
                *out = dot(self.row(base + r), x);
            }
        });
        y
    }

    /// Matrix–matrix product `A·B` with the rows of the output fanned out
    /// over `threads` workers (the blocked eigensolver mat-vec kernel).
    ///
    /// Row `i` of the output depends only on row `i` of `A`, so the result
    /// is bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `self.ncols() != other.nrows()`.
    pub fn mul_parallel(&self, other: &DMatrix, threads: usize) -> Result<DMatrix> {
        if self.ncols != other.nrows {
            return Err(NumError::Dimension {
                detail: format!(
                    "cannot multiply {}x{} by {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        let work = self.nrows * self.ncols * other.ncols;
        if threads <= 1 || work < Self::PARALLEL_MATVEC_MIN_FLOPS {
            return self.mul(other);
        }
        let mut out = DMatrix::zeros(self.nrows, other.ncols);
        let rows_per_chunk = 8;
        let out_cols = other.ncols;
        crate::parallel::for_each_chunk_mut(
            out.as_mut_slice(),
            rows_per_chunk * out_cols,
            threads,
            |ci, chunk| {
                for (r, orow) in chunk.chunks_mut(out_cols).enumerate() {
                    let i = ci * rows_per_chunk + r;
                    for (k, &aik) in self.row(i).iter().enumerate() {
                        if aik == 0.0 {
                            continue;
                        }
                        for (o, b) in orow.iter_mut().zip(other.row(k)) {
                            *o += aik * b;
                        }
                    }
                }
            },
        );
        Ok(out)
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `self.ncols() != other.nrows()`.
    pub fn mul(&self, other: &DMatrix) -> Result<DMatrix> {
        if self.ncols != other.nrows {
            return Err(NumError::Dimension {
                detail: format!(
                    "cannot multiply {}x{} by {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        let mut out = DMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Elementwise maximum absolute asymmetry `max |A_ij − A_ji|`.
    ///
    /// Returns 0 for non-square matrices' overlapping part only when square;
    /// callers should check [`DMatrix::is_square`] first.
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols.min(self.nrows) {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Returns `true` if the matrix is square and symmetric to tolerance
    /// `tol` (absolute, elementwise).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square() && self.asymmetry() <= tol
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.nrows).map(|i| self[(i, i)]).sum()
    }

    /// Scales every entry in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Quadratic form `xᵀ·A·x`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `x.len() != n`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert!(self.is_square(), "quadratic form requires a square matrix");
        assert_eq!(x.len(), self.nrows, "vector length must equal n");
        let mut acc = 0.0;
        for i in 0..self.nrows {
            let row = self.row(i);
            let mut dot = 0.0;
            for (a, b) in row.iter().zip(x) {
                dot += a * b;
            }
            acc += x[i] * dot;
        }
        acc
    }
}

impl crate::json::ToJson for DMatrix {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::Object(vec![
            ("nrows".to_string(), self.nrows.to_json()),
            ("ncols".to_string(), self.ncols.to_json()),
            ("data".to_string(), crate::json::pack_f64s(&self.data)),
        ])
    }
}

impl crate::json::FromJson for DMatrix {
    fn from_json(v: &crate::json::Json) -> crate::json::Result<Self> {
        use crate::json::JsonError;
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| JsonError::new(format!("missing field '{k}' in DMatrix")))
        };
        let nrows = usize::from_json(field("nrows")?)?;
        let ncols = usize::from_json(field("ncols")?)?;
        let data = crate::json::unpack_f64s(field("data")?)?;
        DMatrix::from_vec(nrows, ncols, data).map_err(|e| JsonError::new(e.to_string()))
    }
}

impl std::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

impl std::fmt::Display for DMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y ← y + alpha * x` (BLAS axpy).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DMatrix::zeros(2, 3);
        assert_eq!(z.nrows(), 2);
        assert_eq!(z.ncols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = DMatrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert!(i.is_symmetric(0.0));
    }

    #[test]
    fn from_vec_checks_dims() {
        assert!(DMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let y = a.mul_vec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn mul_matches_identity() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DMatrix::identity(2);
        assert_eq!(a.mul(&i).unwrap(), a);
        assert_eq!(i.mul(&a).unwrap(), a);
    }

    #[test]
    fn mul_dimension_error() {
        let a = DMatrix::zeros(2, 3);
        let b = DMatrix::zeros(2, 3);
        assert!(matches!(a.mul(&b), Err(NumError::Dimension { .. })));
    }

    #[test]
    fn transpose_involution() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn symmetry_detection() {
        let s = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = DMatrix::from_rows(&[&[2.0, 1.0], &[1.5, 2.0]]);
        assert!(!ns.is_symmetric(1e-9));
        assert!((ns.asymmetry() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn quadratic_form_matches_manual() {
        let q = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        // [1,2] Q [1,2]^T = 2 + 2 + 2 + 12 = 18
        assert!((q.quadratic_form(&[1.0, 2.0]) - 18.0).abs() < 1e-14);
    }

    #[test]
    fn frobenius_and_trace() {
        let a = DMatrix::from_rows(&[&[3.0, 0.0], &[4.0, 0.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.trace(), 3.0);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn mul_vec_into_matches_mul_vec() {
        let a = DMatrix::from_fn(7, 5, |i, j| (i * 5 + j) as f64 * 0.37 - 2.0);
        let x: Vec<f64> = (0..5).map(|i| i as f64 - 1.5).collect();
        let mut y = vec![0.0; 7];
        a.mul_vec_into(&x, &mut y);
        assert_eq!(y, a.mul_vec(&x));
    }

    #[test]
    fn parallel_products_are_bit_identical_to_serial() {
        // Large enough to take the parallel path when threads > 1.
        let n = 300;
        let a = DMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 97) as f64 / 9.7 - 5.0);
        let x: Vec<f64> = (0..n).map(|i| ((i * 13) % 29) as f64 - 14.0).collect();
        let b = DMatrix::from_fn(n, 4, |i, j| ((i * 7 + j * 3) % 23) as f64 - 11.0);
        let serial_vec = a.mul_vec(&x);
        let serial_mat = a.mul(&b).unwrap();
        for threads in [1, 2, 8] {
            let pv = a.mul_vec_parallel(&x, threads);
            for (s, p) in serial_vec.iter().zip(&pv) {
                assert_eq!(s.to_bits(), p.to_bits(), "matvec, threads={threads}");
            }
            let pm = a.mul_parallel(&b, threads).unwrap();
            for (s, p) in serial_mat.as_slice().iter().zip(pm.as_slice()) {
                assert_eq!(s.to_bits(), p.to_bits(), "matmul, threads={threads}");
            }
        }
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        use crate::json::{from_str, to_string};
        let a = DMatrix::from_fn(3, 4, |i, j| ((i * 4 + j) as f64).exp() / 3.0 - 1.7);
        let back: DMatrix = from_str(&to_string(&a)).unwrap();
        assert_eq!(back.nrows(), 3);
        assert_eq!(back.ncols(), 4);
        for (x, y) in a.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Inconsistent dimensions are rejected, not trusted.
        assert!(from_str::<DMatrix>(r#"{"nrows":2,"ncols":2,"data":[1,2,3]}"#).is_err());
    }

    #[test]
    fn row_and_column_access() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.column(0), vec![1.0, 3.0]);
    }
}
