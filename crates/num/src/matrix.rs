//! Dense row-major matrices and the small set of operations the reliability
//! analysis needs: products, transposes, symmetry checks and norms.

use crate::{NumError, Result};

/// A dense, row-major `f64` matrix.
///
/// `DMatrix` deliberately exposes a small, explicit API rather than operator
/// overloading for every combination — the call sites in the analysis code
/// stay readable and allocation points stay visible.
///
/// # Example
///
/// ```
/// use statobd_num::matrix::DMatrix;
///
/// let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = vec![1.0, 1.0];
/// assert_eq!(a.mul_vec(&x), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates an `nrows × ncols` matrix filled with zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        DMatrix { nrows, ncols, data }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(NumError::Dimension {
                detail: format!(
                    "expected {} elements for a {}x{} matrix, got {}",
                    nrows * ncols,
                    nrows,
                    ncols,
                    data.len()
                ),
            });
        }
        Ok(DMatrix { nrows, ncols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DMatrix::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.nrows, "row index {i} out of bounds");
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.nrows, "row index {i} out of bounds");
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.ncols, "column index {j} out of bounds");
        (0..self.nrows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> DMatrix {
        DMatrix::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "vector length must equal ncols");
        let mut y = vec![0.0; self.nrows];
        for i in 0..self.nrows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `self.ncols() != other.nrows()`.
    pub fn mul(&self, other: &DMatrix) -> Result<DMatrix> {
        if self.ncols != other.nrows {
            return Err(NumError::Dimension {
                detail: format!(
                    "cannot multiply {}x{} by {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        let mut out = DMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Elementwise maximum absolute asymmetry `max |A_ij − A_ji|`.
    ///
    /// Returns 0 for non-square matrices' overlapping part only when square;
    /// callers should check [`DMatrix::is_square`] first.
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols.min(self.nrows) {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Returns `true` if the matrix is square and symmetric to tolerance
    /// `tol` (absolute, elementwise).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square() && self.asymmetry() <= tol
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.nrows).map(|i| self[(i, i)]).sum()
    }

    /// Scales every entry in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Quadratic form `xᵀ·A·x`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `x.len() != n`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert!(self.is_square(), "quadratic form requires a square matrix");
        assert_eq!(x.len(), self.nrows, "vector length must equal n");
        let mut acc = 0.0;
        for i in 0..self.nrows {
            let row = self.row(i);
            let mut dot = 0.0;
            for (a, b) in row.iter().zip(x) {
                dot += a * b;
            }
            acc += x[i] * dot;
        }
        acc
    }
}

impl std::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

impl std::fmt::Display for DMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y ← y + alpha * x` (BLAS axpy).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DMatrix::zeros(2, 3);
        assert_eq!(z.nrows(), 2);
        assert_eq!(z.ncols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = DMatrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert!(i.is_symmetric(0.0));
    }

    #[test]
    fn from_vec_checks_dims() {
        assert!(DMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let y = a.mul_vec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn mul_matches_identity() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DMatrix::identity(2);
        assert_eq!(a.mul(&i).unwrap(), a);
        assert_eq!(i.mul(&a).unwrap(), a);
    }

    #[test]
    fn mul_dimension_error() {
        let a = DMatrix::zeros(2, 3);
        let b = DMatrix::zeros(2, 3);
        assert!(matches!(a.mul(&b), Err(NumError::Dimension { .. })));
    }

    #[test]
    fn transpose_involution() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn symmetry_detection() {
        let s = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = DMatrix::from_rows(&[&[2.0, 1.0], &[1.5, 2.0]]);
        assert!(!ns.is_symmetric(1e-9));
        assert!((ns.asymmetry() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn quadratic_form_matches_manual() {
        let q = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        // [1,2] Q [1,2]^T = 2 + 2 + 2 + 12 = 18
        assert!((q.quadratic_form(&[1.0, 2.0]) - 18.0).abs() < 1e-14);
    }

    #[test]
    fn frobenius_and_trace() {
        let a = DMatrix::from_rows(&[&[3.0, 0.0], &[4.0, 0.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.trace(), 3.0);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn row_and_column_access() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.column(0), vec![1.0, 3.0]);
    }
}
