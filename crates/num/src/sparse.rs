//! Compressed-sparse-row matrices for the thermal grid solver.
//!
//! The steady-state thermal model produces a 5-point-stencil conductance
//! matrix over tens of thousands of cells; CSR keeps the matrix-vector
//! product cheap for the conjugate-gradient solve.

use crate::{NumError, Result};

/// Triplet-form builder for a sparse matrix.
///
/// Duplicate entries are summed on [`CooMatrix::to_csr`], which matches the
/// natural "accumulate conductances" assembly style of grid solvers.
#[derive(Debug, Clone)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty triplet accumulator for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)` (summed with any existing entry there).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of accumulated (pre-deduplication) entries.
    pub fn nnz_triplets(&self) -> usize {
        self.entries.len()
    }

    /// Compresses to CSR, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut current_row = 0;
        for &(r, c, v) in &sorted {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if let (Some(&last_c), Some(last_v)) = (col_idx.last(), values.last_mut()) {
                if col_idx.len() > row_ptr[current_row] && last_c == c {
                    *last_v += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
        }
        while current_row < self.nrows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }

        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw components.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if the row pointers are not a
    /// monotone `nrows + 1` prefix of `col_idx`/`values`, if the index and
    /// value arrays disagree in length, or if any column index is out of
    /// range.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1
            || col_idx.len() != values.len()
            || row_ptr.first() != Some(&0)
            || row_ptr.last() != Some(&col_idx.len())
            || row_ptr.windows(2).any(|w| w[0] > w[1])
            || col_idx.iter().any(|&c| c >= ncols)
        {
            return Err(NumError::Dimension {
                detail: format!(
                    "inconsistent CSR components for a {nrows}x{ncols} matrix \
                     ({} row pointers, {} entries)",
                    row_ptr.len(),
                    values.len()
                ),
            });
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(NumError::Dimension {
                detail: format!("vector length {} != ncols {}", x.len(), self.ncols),
            });
        }
        let mut y = vec![0.0; self.nrows];
        self.mul_vec_into(x, &mut y);
        Ok(y)
    }

    /// Matrix–vector product into a preallocated output (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not match.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "input length mismatch");
        assert_eq!(y.len(), self.nrows, "output length mismatch");
        for i in 0..self.nrows {
            let start = self.row_ptr[i];
            let end = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in start..end {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[i] = acc;
        }
    }

    /// Returns the diagonal entries (zero where absent) — used as a Jacobi
    /// preconditioner by the CG solver.
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows.min(self.ncols)];
        for i in 0..d.len() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    d[i] = self.values[k];
                    break;
                }
            }
        }
        d
    }

    /// The column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (start, end) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// The transpose `Aᵀ` (column indices within each row stay sorted).
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.ncols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let slot = next[c];
                col_idx[slot] = r;
                values[slot] = self.values[k];
                next[c] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Sparse matrix product `A·B` (used for Galerkin coarse-grid
    /// operators `Pᵀ·A·P` in the multigrid hierarchy).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `self.ncols != other.nrows`.
    pub fn mul_csr(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        if self.ncols != other.nrows {
            return Err(NumError::Dimension {
                detail: format!(
                    "CSR product needs inner dimensions to match: {}x{} times {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        let n_out = other.ncols;
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        // Dense accumulator + touched-column list per output row.
        let mut acc = vec![0.0; n_out];
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..self.nrows {
            touched.clear();
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let a_ik = self.values[k];
                let r = self.col_idx[k];
                for kk in other.row_ptr[r]..other.row_ptr[r + 1] {
                    let c = other.col_idx[kk];
                    if acc[c] == 0.0 && !touched.contains(&c) {
                        touched.push(c);
                    }
                    acc[c] += a_ik * other.values[kk];
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                col_idx.push(c);
                values.push(acc[c]);
                acc[c] = 0.0;
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            nrows: self.nrows,
            ncols: n_out,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Returns `A + shift·I` (the transient stepper's `A + (C/Δt)·I`).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if the matrix is not square.
    pub fn with_shifted_diagonal(&self, shift: f64) -> Result<CsrMatrix> {
        if self.nrows != self.ncols {
            return Err(NumError::Dimension {
                detail: format!(
                    "diagonal shift needs a square matrix, got {}x{}",
                    self.nrows, self.ncols
                ),
            });
        }
        let mut out = self.clone();
        let mut missing = false;
        for i in 0..out.nrows {
            let mut found = false;
            for k in out.row_ptr[i]..out.row_ptr[i + 1] {
                if out.col_idx[k] == i {
                    out.values[k] += shift;
                    found = true;
                    break;
                }
            }
            missing |= !found;
        }
        if !missing {
            return Ok(out);
        }
        // Some rows store no diagonal entry: rebuild through the triplet
        // accumulator, which inserts them.
        let mut coo = CooMatrix::new(self.nrows, self.ncols);
        for i in 0..self.nrows {
            coo.push(i, i, shift);
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                coo.push(i, self.col_idx[k], self.values[k]);
            }
        }
        Ok(coo.to_csr())
    }

    /// Looks up entry `(row, col)`; zero if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.nrows || col >= self.ncols {
            return 0.0;
        }
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            if self.col_idx[k] == col {
                return self.values[k];
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sum_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 5.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 0), 3.0);
        assert_eq!(csr.get(1, 1), 5.0);
        assert_eq!(csr.get(0, 1), 0.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(0, 2, 1.0);
        coo.push(1, 1, -1.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 2, 3.0);
        let csr = coo.to_csr();
        let y = csr.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![5.0, -2.0, 13.0]);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(3, 3, 7.0);
        let csr = coo.to_csr();
        let y = csr.mul_vec(&[1.0; 4]).unwrap();
        assert_eq!(y, vec![0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.5);
        coo.push(1, 2, 9.0);
        coo.push(2, 2, -2.0);
        let d = coo.to_csr().diagonal();
        assert_eq!(d, vec![1.5, 0.0, -2.0]);
    }

    #[test]
    fn zero_values_are_dropped() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 0.0);
        assert_eq!(coo.nnz_triplets(), 0);
    }

    #[test]
    fn dimension_error_on_bad_vector() {
        let coo = CooMatrix::new(2, 3);
        let csr = coo.to_csr();
        assert!(csr.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        let a = coo.to_csr();
        let t = a.transpose();
        assert_eq!((t.nrows(), t.ncols()), (3, 2));
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 1), 3.0);
        let tt = t.transpose();
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(tt.get(i, j), a.get(i, j));
            }
        }
    }

    #[test]
    fn csr_product_matches_dense() {
        let mut a = CooMatrix::new(2, 3);
        a.push(0, 0, 1.0);
        a.push(0, 2, 2.0);
        a.push(1, 1, -1.0);
        let mut b = CooMatrix::new(3, 2);
        b.push(0, 0, 3.0);
        b.push(1, 1, 4.0);
        b.push(2, 0, 5.0);
        b.push(2, 1, 6.0);
        let c = a.to_csr().mul_csr(&b.to_csr()).unwrap();
        assert_eq!(c.get(0, 0), 13.0);
        assert_eq!(c.get(0, 1), 12.0);
        assert_eq!(c.get(1, 0), 0.0);
        assert_eq!(c.get(1, 1), -4.0);
        assert!(a.to_csr().mul_csr(&a.to_csr()).is_err());
    }

    #[test]
    fn diagonal_shift_with_and_without_stored_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        // Row 1 has no diagonal entry: the shift must insert one.
        coo.push(1, 0, 3.0);
        let shifted = coo.to_csr().with_shifted_diagonal(10.0).unwrap();
        assert_eq!(shifted.get(0, 0), 11.0);
        assert_eq!(shifted.get(0, 1), 2.0);
        assert_eq!(shifted.get(1, 0), 3.0);
        assert_eq!(shifted.get(1, 1), 10.0);
        assert!(CooMatrix::new(2, 3)
            .to_csr()
            .with_shifted_diagonal(1.0)
            .is_err());
    }

    #[test]
    fn from_raw_validates_components() {
        let ok = CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).unwrap();
        assert_eq!(ok.get(1, 1), 2.0);
        // Column out of range.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 2.0]).is_err());
        // Non-monotone row pointers.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        // Length mismatch.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0], vec![1.0, 2.0]).is_err());
    }
}
