//! Compressed-sparse-row matrices for the thermal grid solver.
//!
//! The steady-state thermal model produces a 5-point-stencil conductance
//! matrix over tens of thousands of cells; CSR keeps the matrix-vector
//! product cheap for the conjugate-gradient solve.

use crate::{NumError, Result};

/// Triplet-form builder for a sparse matrix.
///
/// Duplicate entries are summed on [`CooMatrix::to_csr`], which matches the
/// natural "accumulate conductances" assembly style of grid solvers.
#[derive(Debug, Clone)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty triplet accumulator for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)` (summed with any existing entry there).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of accumulated (pre-deduplication) entries.
    pub fn nnz_triplets(&self) -> usize {
        self.entries.len()
    }

    /// Compresses to CSR, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut current_row = 0;
        for &(r, c, v) in &sorted {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if let (Some(&last_c), Some(last_v)) = (col_idx.last(), values.last_mut()) {
                if col_idx.len() > row_ptr[current_row] && last_c == c {
                    *last_v += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
        }
        while current_row < self.nrows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }

        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(NumError::Dimension {
                detail: format!("vector length {} != ncols {}", x.len(), self.ncols),
            });
        }
        let mut y = vec![0.0; self.nrows];
        self.mul_vec_into(x, &mut y);
        Ok(y)
    }

    /// Matrix–vector product into a preallocated output (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not match.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "input length mismatch");
        assert_eq!(y.len(), self.nrows, "output length mismatch");
        for i in 0..self.nrows {
            let start = self.row_ptr[i];
            let end = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in start..end {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[i] = acc;
        }
    }

    /// Returns the diagonal entries (zero where absent) — used as a Jacobi
    /// preconditioner by the CG solver.
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows.min(self.ncols)];
        for i in 0..d.len() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    d[i] = self.values[k];
                    break;
                }
            }
        }
        d
    }

    /// Looks up entry `(row, col)`; zero if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.nrows || col >= self.ncols {
            return 0.0;
        }
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            if self.col_idx[k] == col {
                return self.values[k];
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sum_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 5.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 0), 3.0);
        assert_eq!(csr.get(1, 1), 5.0);
        assert_eq!(csr.get(0, 1), 0.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(0, 2, 1.0);
        coo.push(1, 1, -1.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 2, 3.0);
        let csr = coo.to_csr();
        let y = csr.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![5.0, -2.0, 13.0]);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(3, 3, 7.0);
        let csr = coo.to_csr();
        let y = csr.mul_vec(&[1.0; 4]).unwrap();
        assert_eq!(y, vec![0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.5);
        coo.push(1, 2, 9.0);
        coo.push(2, 2, -2.0);
        let d = coo.to_csr().diagonal();
        assert_eq!(d, vec![1.5, 0.0, -2.0]);
    }

    #[test]
    fn zero_values_are_dropped() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 0.0);
        assert_eq!(coo.nnz_triplets(), 0);
    }

    #[test]
    fn dimension_error_on_bad_vector() {
        let coo = CooMatrix::new(2, 3);
        let csr = coo.to_csr();
        assert!(csr.mul_vec(&[1.0, 2.0]).is_err());
    }
}
