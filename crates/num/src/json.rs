//! Minimal JSON value model, parser and serializers.
//!
//! The workspace builds hermetically with no external crates, so the JSON
//! plumbing that the CLI, the thermal floorplan/power files and the hybrid
//! table export rely on lives here. The wire format is interchangeable with
//! what the previous `serde_json`-based code produced: struct fields become
//! object members, unit enum variants become strings, struct enum variants
//! become single-key objects, and tuples/arrays become JSON arrays.
//!
//! Conversions go through the [`ToJson`] / [`FromJson`] traits; the
//! [`impl_json_struct!`] macro derives both for plain named-field structs
//! (invoke it inside the defining module so private fields stay private).
//!
//! # Example
//!
//! ```
//! use statobd_num::json::Json;
//!
//! let v = Json::parse(r#"{"name": "alu", "area": 1.5, "ids": [1, 2]}"#).unwrap();
//! assert_eq!(v.get("name").unwrap().as_str().unwrap(), "alu");
//! assert_eq!(v.get("area").unwrap().as_f64().unwrap(), 1.5);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Objects preserve member order (a `Vec` of pairs, not a map): documents
/// round-trip byte-stable and the structs serialized here are far too small
/// for linear key lookup to matter.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; integers up to 2⁵³ are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in document/insertion order.
    Object(Vec<(String, Json)>),
}

/// Error produced by JSON parsing or typed extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    detail: String,
}

impl JsonError {
    /// Creates an error with the given description.
    pub fn new(detail: impl Into<String>) -> Self {
        JsonError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.detail)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for JSON operations.
pub type Result<T> = std::result::Result<T, JsonError>;

impl Json {
    /// Parses a JSON document from text.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Number(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members of an object, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(x) => write_number(out, *x),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Writes a number the way `serde_json` does: integers without a fraction,
/// everything else in shortest round-trip form. Non-finite values (which
/// JSON cannot represent) degrade to `null`.
fn write_number(out: &mut String, x: f64) {
    use fmt::Write;
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, detail: &str) -> JsonError {
        JsonError::new(format!("{detail} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            // Bulk fast path: copy everything up to the next quote or
            // escape in one go (large packed-float strings would otherwise
            // pay a per-character loop).
            let start = self.pos;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| b != b'"' && b != b'\\')
            {
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            let b = self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit)
                            };
                            s.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // encoding is already valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Conversion of a value into a [`Json`] document.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Fallible reconstruction of a value from a [`Json`] document.
pub trait FromJson: Sized {
    /// Parses `self` out of a JSON value.
    fn from_json(v: &Json) -> Result<Self>;

    /// The value to use when a struct member is absent from the document
    /// (`None` means absence is an error). `Option` fields may be omitted,
    /// mirroring the previous serde behaviour.
    fn from_missing() -> Option<Self> {
        None
    }
}

/// Serializes a value compactly (drop-in for `serde_json::to_string`).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_compact()
}

/// Serializes a value with indentation (drop-in for
/// `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_pretty()
}

/// Parses a typed value from JSON text (drop-in for
/// `serde_json::from_str`).
pub fn from_str<T: FromJson>(text: &str) -> Result<T> {
    T::from_json(&Json::parse(text)?)
}

/// Packs a float slice into one JSON string: 16 lowercase hex digits per
/// `f64` (big-endian bit pattern), bit-exact under round-trip.
///
/// A decimal float array costs one tree node and one shortest-roundtrip
/// parse per element; packed arrays make million-element payloads (model
/// eigenbases, lookup tables) one string node each, which is what keeps
/// artifact loads cheap relative to a cold build.
pub fn pack_f64s(xs: &[f64]) -> Json {
    let mut out = String::with_capacity(16 * xs.len());
    for &x in xs {
        let bits = x.to_bits();
        for shift in (0..16).rev() {
            let nibble = ((bits >> (shift * 4)) & 0xf) as u32;
            out.push(char::from_digit(nibble, 16).expect("nibble < 16"));
        }
    }
    Json::String(out)
}

/// Reverses [`pack_f64s`]. A plain number array is also accepted, so
/// hand-written documents stay usable.
///
/// # Errors
///
/// Returns an error for any other JSON shape, a hex string whose length
/// is not a multiple of 16, or a non-hex digit.
pub fn unpack_f64s(v: &Json) -> Result<Vec<f64>> {
    match v {
        Json::String(s) => {
            if s.len() % 16 != 0 {
                return Err(JsonError::new(format!(
                    "packed f64 string length {} is not a multiple of 16",
                    s.len()
                )));
            }
            let bytes = s.as_bytes();
            let mut out = Vec::with_capacity(bytes.len() / 16);
            for chunk in bytes.chunks_exact(16) {
                let mut bits: u64 = 0;
                for &b in chunk {
                    let nibble = (b as char)
                        .to_digit(16)
                        .ok_or_else(|| JsonError::new(format!("non-hex digit {:?}", b as char)))?;
                    bits = (bits << 4) | nibble as u64;
                }
                out.push(f64::from_bits(bits));
            }
            Ok(out)
        }
        Json::Array(_) => Vec::<f64>::from_json(v),
        other => Err(JsonError::new(format!(
            "expected a packed f64 string or array, got {other}"
        ))),
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(v.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Number(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self> {
        v.as_f64()
            .ok_or_else(|| JsonError::new(format!("expected a number, got {v}")))
    }
}

macro_rules! impl_json_integer {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Number(*self as f64)
            }
        }

        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self> {
                let x = v
                    .as_f64()
                    .ok_or_else(|| JsonError::new(format!("expected an integer, got {v}")))?;
                if x.fract() != 0.0 || x < 0.0 || x > <$ty>::MAX as f64 {
                    return Err(JsonError::new(format!(
                        "number {x} is not a valid {}",
                        stringify!($ty)
                    )));
                }
                Ok(x as $ty)
            }
        }
    )+};
}

impl_json_integer!(u64, u32, usize);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self> {
        v.as_bool()
            .ok_or_else(|| JsonError::new(format!("expected a bool, got {v}")))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new(format!("expected a string, got {v}")))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self> {
        v.as_array()
            .ok_or_else(|| JsonError::new(format!("expected an array, got {v}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }

    fn from_missing() -> Option<Self> {
        Some(None)
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::new(format!(
                "expected a 2-element array, got {v}"
            ))),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Copy + Default, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self> {
        let items = v
            .as_array()
            .ok_or_else(|| JsonError::new(format!("expected an array, got {v}")))?;
        if items.len() != N {
            return Err(JsonError::new(format!(
                "expected {N} elements, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_json(item)?;
        }
        Ok(out)
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self> {
        v.as_object()
            .ok_or_else(|| JsonError::new(format!("expected an object, got {v}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

/// Derives [`ToJson`] and [`FromJson`] for a named-field struct.
///
/// Invoke inside the struct's defining module so private fields resolve.
/// Member names are the field names; `Option` fields may be absent from the
/// document (matching the former serde derives).
///
/// ```
/// use statobd_num::impl_json_struct;
/// use statobd_num::json::{from_str, to_string};
///
/// #[derive(Debug, PartialEq)]
/// struct Point {
///     x: f64,
///     y: f64,
/// }
/// impl_json_struct!(Point { x, y });
///
/// let p = Point { x: 1.0, y: -2.5 };
/// let back: Point = from_str(&to_string(&p)).unwrap();
/// assert_eq!(back, p);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Object(vec![
                    $(
                        (
                            stringify!($field).to_string(),
                            $crate::json::ToJson::to_json(&self.$field),
                        ),
                    )+
                ])
            }
        }

        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> $crate::json::Result<Self> {
                if v.as_object().is_none() {
                    return Err($crate::json::JsonError::new(format!(
                        "expected a {} object, got {v}",
                        stringify!($ty)
                    )));
                }
                Ok(Self {
                    $(
                        $field: match v.get(stringify!($field)) {
                            Some(member) => $crate::json::FromJson::from_json(member)?,
                            None => $crate::json::FromJson::from_missing().ok_or_else(|| {
                                $crate::json::JsonError::new(format!(
                                    "missing field '{}' in {}",
                                    stringify!($field),
                                    stringify!($ty)
                                ))
                            })?,
                        },
                    )+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Number(-1500.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": ""}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0], Json::Number(1.0));
        assert_eq!(a[1].get("b").unwrap(), &Json::Null);
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\"}", "tru", "1 2", "\"\\q\"", "", "[1]]"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
        let back = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_serialize_like_serde_json() {
        assert_eq!(Json::Number(25.0).to_compact(), "25");
        assert_eq!(Json::Number(-3.0).to_compact(), "-3");
        assert_eq!(Json::Number(0.5).to_compact(), "0.5");
        assert_eq!(Json::Number(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn number_round_trip_is_exact() {
        for &x in &[
            1.0 / 3.0,
            2.2,
            6.022e23,
            f64::MIN_POSITIVE,
            -1.234_567_890_123_456_7e-200,
        ] {
            let text = Json::Number(x).to_compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Json::parse(r#"{"blocks": [{"name": "alu", "w": [0.5, 1]}], "n": 2}"#).unwrap();
        let pretty = v.to_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        name: String,
        weight: f64,
        count: usize,
        tags: Vec<String>,
        limit: Option<f64>,
    }
    impl_json_struct!(Demo {
        name,
        weight,
        count,
        tags,
        limit
    });

    #[test]
    fn struct_macro_round_trips() {
        let d = Demo {
            name: "hot \"block\"".into(),
            weight: 0.125,
            count: 7,
            tags: vec!["a".into(), "b".into()],
            limit: None,
        };
        let back: Demo = from_str(&to_string(&d)).unwrap();
        assert_eq!(back, d);
        let back: Demo = from_str(&to_string_pretty(&d)).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn option_fields_may_be_omitted() {
        let d: Demo = from_str(r#"{"name": "x", "weight": 1, "count": 0, "tags": []}"#).unwrap();
        assert_eq!(d.limit, None);
        let d: Demo =
            from_str(r#"{"name": "x", "weight": 1, "count": 0, "tags": [], "limit": 2.5}"#)
                .unwrap();
        assert_eq!(d.limit, Some(2.5));
    }

    #[test]
    fn missing_required_field_is_an_error() {
        let err = from_str::<Demo>(r#"{"name": "x"}"#).unwrap_err();
        assert!(err.to_string().contains("weight"));
    }

    #[test]
    fn integer_extraction_rejects_fractions_and_negatives() {
        assert!(usize::from_json(&Json::Number(1.5)).is_err());
        assert!(u64::from_json(&Json::Number(-1.0)).is_err());
        assert_eq!(usize::from_json(&Json::Number(42.0)).unwrap(), 42);
    }

    #[test]
    fn tuple_and_array_conversions() {
        let pair: (usize, f64) = FromJson::from_json(&Json::parse("[3, 0.5]").unwrap()).unwrap();
        assert_eq!(pair, (3, 0.5));
        let coeffs: [f64; 6] = FromJson::from_json(&Json::parse("[1,2,3,4,5,6]").unwrap()).unwrap();
        assert_eq!(coeffs[5], 6.0);
        assert!(<[f64; 6]>::from_json(&Json::parse("[1,2]").unwrap()).is_err());
    }

    #[test]
    fn btreemap_round_trips() {
        let mut m = BTreeMap::new();
        m.insert("alu".to_string(), 1.5f64);
        m.insert("fpu".to_string(), 0.25);
        let back: BTreeMap<String, f64> = from_str(&to_string(&m)).unwrap();
        assert_eq!(back, m);
    }
}
