//! Stable, dependency-free content hashing.
//!
//! The artifact cache keys compiled reliability models by a hash of their
//! canonicalized `AnalysisSpec` JSON. `std::hash::DefaultHasher` is
//! explicitly *not* stable across Rust releases, so cache keys use FNV-1a
//! (64-bit): a tiny, well-specified hash whose output is identical on every
//! platform and toolchain. FNV-1a is not cryptographic — the cache key only
//! needs to be collision-resistant enough for a handful of specs on one
//! machine, and the load path re-validates the spec echo anyway.
//!
//! # Example
//!
//! ```
//! use statobd_num::hash::{fnv1a_64, Fnv1a};
//!
//! assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
//! let mut h = Fnv1a::new();
//! h.write(b"stat");
//! h.write(b"obd");
//! assert_eq!(h.finish(), fnv1a_64(b"statobd"));
//! ```

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// Byte-stream incremental: hashing a message in any chunking produces the
/// same digest as hashing it in one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorbs a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// Returns the current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// One-shot FNV-1a 64-bit hash rendered as a fixed-width lowercase hex
/// string — the on-disk cache directory name format.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a_64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let msg = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, msg.len()] {
            let mut h = Fnv1a::new();
            h.write(&msg[..split]);
            h.write(&msg[split..]);
            assert_eq!(h.finish(), fnv1a_64(msg), "split at {split}");
        }
    }

    #[test]
    fn hex_format_is_fixed_width() {
        assert_eq!(fnv1a_hex(b"").len(), 16);
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        // Distinct inputs produce distinct keys (spot check).
        assert_ne!(fnv1a_hex(b"spec-a"), fnv1a_hex(b"spec-b"));
    }
}
