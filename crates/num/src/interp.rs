//! Interpolation: 1-D linear, 2-D bilinear, and monotone cubic (PCHIP).
//!
//! The hybrid analytical/table-lookup reliability engine (paper Sec. IV-E)
//! interpolates a precomputed `(ln(t/α), b)` table bilinearly; the
//! lookup-table technology model interpolates `α(T)`/`b(T)` linearly.

use crate::{NumError, Result};

/// Locates `x` in a sorted axis, returning the left index and the fractional
/// position within the cell, clamping to the axis range.
///
/// # Panics
///
/// Panics if the axis has fewer than 2 points (checked by callers).
fn locate(axis: &[f64], x: f64) -> (usize, f64) {
    debug_assert!(axis.len() >= 2);
    let n = axis.len();
    if x <= axis[0] {
        return (0, 0.0);
    }
    if x >= axis[n - 1] {
        return (n - 2, 1.0);
    }
    // Binary search for the cell containing x.
    let mut lo = 0;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if axis[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let frac = (x - axis[lo]) / (axis[lo + 1] - axis[lo]);
    (lo, frac)
}

fn validate_axis(axis: &[f64], name: &str) -> Result<()> {
    if axis.len() < 2 {
        return Err(NumError::Domain {
            detail: format!("{name} axis needs at least 2 points, got {}", axis.len()),
        });
    }
    if !axis.windows(2).all(|w| w[0] < w[1]) {
        return Err(NumError::Domain {
            detail: format!("{name} axis must be strictly increasing"),
        });
    }
    Ok(())
}

/// 1-D piecewise-linear interpolant over a strictly increasing axis.
///
/// Queries outside the axis range are clamped to the endpoint values (the
/// technology tables are always constructed to cover the operating range,
/// so clamping is the conservative behaviour).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterp {
    /// Creates an interpolant from matched samples.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if the axis is too short, not strictly
    /// increasing, or the lengths differ.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        validate_axis(&xs, "x")?;
        if xs.len() != ys.len() {
            return Err(NumError::Domain {
                detail: format!("xs has {} points but ys has {}", xs.len(), ys.len()),
            });
        }
        Ok(LinearInterp { xs, ys })
    }

    /// Evaluates the interpolant at `x` (clamped to the axis range).
    pub fn eval(&self, x: f64) -> f64 {
        let (i, t) = locate(&self.xs, x);
        self.ys[i] * (1.0 - t) + self.ys[i + 1] * t
    }

    /// The sample axis.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The sample values.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

/// 2-D bilinear interpolant over a rectilinear grid.
///
/// Values are stored row-major: `values[i * ny + j]` is the sample at
/// `(xs[i], ys[j])`. Out-of-range queries clamp to the grid edge.
///
/// # Example
///
/// ```
/// use statobd_num::interp::Bilinear;
///
/// let b = Bilinear::new(
///     vec![0.0, 1.0],
///     vec![0.0, 1.0],
///     vec![0.0, 1.0, 2.0, 3.0], // f(0,0)=0 f(0,1)=1 f(1,0)=2 f(1,1)=3
/// )?;
/// assert!((b.eval(0.5, 0.5) - 1.5).abs() < 1e-14);
/// # Ok::<(), statobd_num::NumError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bilinear {
    xs: Vec<f64>,
    ys: Vec<f64>,
    values: Vec<f64>,
}

impl Bilinear {
    /// Creates a bilinear interpolant.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] for malformed axes or a value vector of
    /// the wrong length.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        validate_axis(&xs, "x")?;
        validate_axis(&ys, "y")?;
        if values.len() != xs.len() * ys.len() {
            return Err(NumError::Domain {
                detail: format!(
                    "expected {} values for a {}x{} grid, got {}",
                    xs.len() * ys.len(),
                    xs.len(),
                    ys.len(),
                    values.len()
                ),
            });
        }
        Ok(Bilinear { xs, ys, values })
    }

    /// Evaluates the interpolant at `(x, y)` (clamped to the grid).
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let ny = self.ys.len();
        let (i, tx) = locate(&self.xs, x);
        let (j, ty) = locate(&self.ys, y);
        let v00 = self.values[i * ny + j];
        let v01 = self.values[i * ny + j + 1];
        let v10 = self.values[(i + 1) * ny + j];
        let v11 = self.values[(i + 1) * ny + j + 1];
        v00 * (1.0 - tx) * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v10 * tx * (1.0 - ty)
            + v11 * tx * ty
    }

    /// The x axis.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y axis.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The row-major sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_exact_on_nodes_and_midpoints() {
        let li = LinearInterp::new(vec![0.0, 1.0, 3.0], vec![2.0, 4.0, 0.0]).unwrap();
        assert_eq!(li.eval(0.0), 2.0);
        assert_eq!(li.eval(1.0), 4.0);
        assert_eq!(li.eval(0.5), 3.0);
        assert_eq!(li.eval(2.0), 2.0);
    }

    #[test]
    fn linear_clamps_out_of_range() {
        let li = LinearInterp::new(vec![0.0, 1.0], vec![5.0, 7.0]).unwrap();
        assert_eq!(li.eval(-10.0), 5.0);
        assert_eq!(li.eval(10.0), 7.0);
    }

    #[test]
    fn linear_rejects_bad_input() {
        assert!(LinearInterp::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![1.0]).is_err());
    }

    #[test]
    fn bilinear_reproduces_bilinear_functions() {
        // f(x,y) = 2x + 3y + xy is reproduced exactly by bilinear interp.
        let xs: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..4).map(|j| j as f64 * 0.5).collect();
        let f = |x: f64, y: f64| 2.0 * x + 3.0 * y + x * y;
        let mut values = Vec::new();
        for &x in &xs {
            for &y in &ys {
                values.push(f(x, y));
            }
        }
        let b = Bilinear::new(xs, ys, values).unwrap();
        for &(x, y) in &[(0.3, 0.2), (1.7, 1.2), (3.99, 1.49), (0.0, 0.0)] {
            assert!((b.eval(x, y) - f(x, y)).abs() < 1e-12, "at ({x}, {y})");
        }
    }

    #[test]
    fn bilinear_clamps_at_edges() {
        let b = Bilinear::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(b.eval(-5.0, -5.0), 1.0);
        assert_eq!(b.eval(5.0, 5.0), 4.0);
    }

    #[test]
    fn bilinear_rejects_wrong_value_count() {
        assert!(Bilinear::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![1.0; 3]).is_err());
    }
}

/// Monotone piecewise-cubic Hermite interpolant (PCHIP, Fritsch–Carlson).
///
/// Unlike a natural cubic spline, PCHIP never overshoots: on intervals
/// where the data is monotone the interpolant is monotone too, which makes
/// it the right choice for interpolating reliability curves `P(t)` and
/// lifetime tables where an overshoot would manufacture non-physical
/// non-monotonicity.
///
/// Out-of-range queries clamp to the endpoint values, like
/// [`LinearInterp`].
#[derive(Debug, Clone, PartialEq)]
pub struct PchipInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Endpoint derivatives per node (Fritsch–Carlson limited).
    ds: Vec<f64>,
}

impl PchipInterp {
    /// Creates a PCHIP interpolant from matched samples.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if the axis is too short, not strictly
    /// increasing, or the lengths differ.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        validate_axis(&xs, "x")?;
        if xs.len() != ys.len() {
            return Err(NumError::Domain {
                detail: format!("xs has {} points but ys has {}", xs.len(), ys.len()),
            });
        }
        let n = xs.len();
        // Interval slopes.
        let h: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
        let delta: Vec<f64> = (0..n - 1).map(|i| (ys[i + 1] - ys[i]) / h[i]).collect();
        // Fritsch–Carlson derivative limiting.
        let mut ds = vec![0.0; n];
        if n == 2 {
            ds[0] = delta[0];
            ds[1] = delta[0];
        } else {
            // Interior nodes: weighted harmonic mean when slopes agree in
            // sign, zero otherwise (local extremum).
            for i in 1..n - 1 {
                if delta[i - 1] * delta[i] > 0.0 {
                    let w1 = 2.0 * h[i] + h[i - 1];
                    let w2 = h[i] + 2.0 * h[i - 1];
                    ds[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
                }
            }
            // One-sided endpoint formulas with monotonicity clamps.
            let end = |h0: f64, h1: f64, d0: f64, d1: f64| -> f64 {
                let d = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
                if d * d0 <= 0.0 {
                    0.0
                } else if d0 * d1 < 0.0 && d.abs() > 3.0 * d0.abs() {
                    3.0 * d0
                } else {
                    d
                }
            };
            ds[0] = end(h[0], h[1], delta[0], delta[1]);
            ds[n - 1] = end(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
        }
        Ok(PchipInterp { xs, ys, ds })
    }

    /// Evaluates the interpolant at `x` (clamped to the axis range).
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return self.ys[0];
        }
        let n = self.xs.len();
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let (i, _) = locate(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        // Cubic Hermite basis.
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i] + h10 * h * self.ds[i] + h01 * self.ys[i + 1] + h11 * h * self.ds[i + 1]
    }

    /// The sample axis.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The sample values.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

#[cfg(test)]
mod pchip_tests {
    use super::*;

    #[test]
    fn interpolates_nodes_exactly() {
        let p = PchipInterp::new(vec![0.0, 1.0, 2.5, 4.0], vec![1.0, 3.0, 2.0, 5.0]).unwrap();
        for (x, y) in [(0.0, 1.0), (1.0, 3.0), (2.5, 2.0), (4.0, 5.0)] {
            assert!((p.eval(x) - y).abs() < 1e-14, "at {x}");
        }
    }

    #[test]
    fn preserves_monotonicity() {
        // Steep-then-flat data that a natural cubic spline would overshoot.
        let p =
            PchipInterp::new(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 0.1, 0.9, 1.0, 1.0]).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=400 {
            let x = i as f64 / 100.0;
            let y = p.eval(x);
            assert!(y >= prev - 1e-12, "non-monotone at {x}: {y} < {prev}");
            assert!((-1e-12..=1.0 + 1e-12).contains(&y), "overshoot at {x}: {y}");
            prev = y;
        }
    }

    #[test]
    fn flat_data_stays_flat() {
        let p = PchipInterp::new(vec![0.0, 1.0, 2.0], vec![5.0, 5.0, 5.0]).unwrap();
        for i in 0..20 {
            assert!((p.eval(i as f64 * 0.1) - 5.0).abs() < 1e-14);
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let p = PchipInterp::new(vec![0.0, 1.0], vec![2.0, 4.0]).unwrap();
        assert_eq!(p.eval(-1.0), 2.0);
        assert_eq!(p.eval(9.0), 4.0);
    }

    #[test]
    fn two_points_reduce_to_linear() {
        let p = PchipInterp::new(vec![0.0, 2.0], vec![1.0, 5.0]).unwrap();
        assert!((p.eval(1.0) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn local_extrema_get_zero_slope() {
        // A peak at the middle node: derivative there must be zero so the
        // interpolant does not overshoot the peak.
        let p = PchipInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]).unwrap();
        let peak = p.eval(1.0);
        for i in 0..=200 {
            let y = p.eval(i as f64 / 100.0);
            assert!(y <= peak + 1e-12, "overshoot above the data maximum");
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(PchipInterp::new(vec![0.0], vec![1.0]).is_err());
        assert!(PchipInterp::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(PchipInterp::new(vec![0.0, 1.0], vec![1.0]).is_err());
    }

    #[test]
    fn smooth_data_accuracy_beats_linear() {
        // On a smooth function PCHIP (cubic) should beat linear interp.
        let xs: Vec<f64> = (0..9).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x * 0.8).sin()).collect();
        let pchip = PchipInterp::new(xs.clone(), ys.clone()).unwrap();
        let lin = LinearInterp::new(xs, ys).unwrap();
        let mut pchip_err = 0.0f64;
        let mut lin_err = 0.0f64;
        for i in 0..=160 {
            let x = i as f64 * 0.025;
            let truth = (x * 0.8f64).sin();
            pchip_err = pchip_err.max((pchip.eval(x) - truth).abs());
            lin_err = lin_err.max((lin.eval(x) - truth).abs());
        }
        assert!(
            pchip_err < lin_err,
            "pchip {pchip_err:.2e} should beat linear {lin_err:.2e}"
        );
    }
}
