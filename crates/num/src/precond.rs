//! Zero-fill incomplete Cholesky factorization `IC(0)` for sparse SPD
//! matrices.
//!
//! `IC(0)` computes a lower-triangular factor `L` with exactly the sparsity
//! pattern of the lower triangle of `A`, so `L·Lᵀ ≈ A` with no fill-in.
//! Applying the preconditioner is one forward and one backward triangular
//! solve — `O(nnz)` — while the iteration count of preconditioned CG on
//! grid Laplacians drops severalfold versus the Jacobi diagonal. For
//! M-matrices (the thermal conductance matrices: positive diagonal,
//! non-positive off-diagonals, diagonally dominant) the factorization is
//! guaranteed to exist.

use crate::cg::Preconditioner;
use crate::sparse::CsrMatrix;
use crate::{NumError, Result};

/// Zero-fill incomplete Cholesky factor of a sparse SPD matrix.
///
/// # Example
///
/// ```
/// use statobd_num::sparse::CooMatrix;
/// use statobd_num::cg::{solve_pcg, CgOptions};
/// use statobd_num::precond::Ic0;
///
/// // 1-D Laplacian with a regularized diagonal.
/// let n = 50;
/// let mut coo = CooMatrix::new(n, n);
/// for i in 0..n {
///     coo.push(i, i, 2.1);
///     if i > 0 {
///         coo.push(i, i - 1, -1.0);
///         coo.push(i - 1, i, -1.0);
///     }
/// }
/// let a = coo.to_csr();
/// let m = Ic0::new(&a)?;
/// let sol = solve_pcg(&a, &vec![1.0; n], None, &m, &CgOptions::default())?;
/// assert!(sol.relative_residual < 1e-9);
/// # Ok::<(), statobd_num::NumError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ic0 {
    n: usize,
    /// CSR of the strictly-lower part of `L`, columns ascending per row.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Diagonal of `L`, stored separately for the triangular solves.
    diag: Vec<f64>,
}

impl Ic0 {
    /// Factorizes `A ≈ L·Lᵀ` on the lower-triangular pattern of `A`.
    ///
    /// Only the lower triangle of `A` is read; the upper triangle is
    /// assumed symmetric.
    ///
    /// # Errors
    ///
    /// * [`NumError::Dimension`] if `a` is not square,
    /// * [`NumError::NotPositiveDefinite`] if a pivot becomes non-positive
    ///   (the matrix is too indefinite for zero-fill factorization).
    pub fn new(a: &CsrMatrix) -> Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(NumError::Dimension {
                detail: format!("IC(0) requires a square matrix, got {}x{}", n, a.ncols()),
            });
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut diag = vec![0.0; n];
        row_ptr.push(0);
        for i in 0..n {
            let (cols, vals) = a.row(i);
            let mut a_ii = None;
            let row_start = col_idx.len();
            for (&j, &a_ij) in cols.iter().zip(vals) {
                if j > i {
                    continue;
                }
                if j == i {
                    a_ii = Some(a_ij);
                    continue;
                }
                // l_ij = (a_ij − Σ_{k<j} l_ik·l_jk) / l_jj, the sum running
                // over the shared sparsity of rows i (built so far) and j.
                let mut s = a_ij;
                let (mut p, mut q) = (row_start, row_ptr[j]);
                let (p_end, q_end) = (col_idx.len(), row_ptr[j + 1]);
                while p < p_end && q < q_end {
                    match col_idx[p].cmp(&col_idx[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            s -= values[p] * values[q];
                            p += 1;
                            q += 1;
                        }
                    }
                }
                col_idx.push(j);
                values.push(s / diag[j]);
            }
            let Some(a_ii) = a_ii else {
                return Err(NumError::NotPositiveDefinite);
            };
            let mut d = a_ii;
            for &v in &values[row_start..] {
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(NumError::NotPositiveDefinite);
            }
            diag[i] = d.sqrt();
            row_ptr.push(col_idx.len());
        }
        Ok(Ic0 {
            n,
            row_ptr,
            col_idx,
            values,
            diag,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored non-zeros of the factor (strict lower triangle + diagonal).
    pub fn nnz(&self) -> usize {
        self.values.len() + self.n
    }

    /// Solves `L·Lᵀ·z = r` in place of `z` (one forward and one backward
    /// triangular sweep).
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not match the factor dimension.
    pub fn solve_into(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "rhs length mismatch");
        assert_eq!(z.len(), self.n, "solution length mismatch");
        // Forward: L·y = r (y stored in z).
        for i in 0..self.n {
            let mut s = r[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                s -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = s / self.diag[i];
        }
        // Backward: Lᵀ·z = y, saxpy form over the row-stored factor.
        for i in (0..self.n).rev() {
            let zi = z[i] / self.diag[i];
            z[i] = zi;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                z[self.col_idx[k]] -= self.values[k] * zi;
            }
        }
    }
}

impl Preconditioner for Ic0 {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solve_into(r, z);
    }

    fn name(&self) -> &'static str {
        "ic0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{solve_pcg, CgOptions, JacobiPreconditioner};
    use crate::sparse::CooMatrix;

    fn laplacian_2d(nx: usize, ny: usize, diag_boost: f64) -> CsrMatrix {
        let n = nx * ny;
        let mut coo = CooMatrix::new(n, n);
        for iy in 0..ny {
            for ix in 0..nx {
                let i = iy * nx + ix;
                let mut d = diag_boost;
                let mut link = |j: usize, d: &mut f64| {
                    coo.push(i, j, -1.0);
                    *d += 1.0;
                };
                if ix + 1 < nx {
                    link(i + 1, &mut d);
                }
                if ix > 0 {
                    link(i - 1, &mut d);
                }
                if iy + 1 < ny {
                    link(i + nx, &mut d);
                }
                if iy > 0 {
                    link(i - nx, &mut d);
                }
                coo.push(i, i, d);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn dense_factor_is_exact_cholesky() {
        // On a dense SPD matrix the "incomplete" factor has no dropped
        // fill, so L·Lᵀ reconstructs A exactly.
        let mut coo = CooMatrix::new(3, 3);
        let a_dense = [[4.0, 2.0, 0.5], [2.0, 3.0, 1.0], [0.5, 1.0, 2.0]];
        for (i, row) in a_dense.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                coo.push(i, j, v);
            }
        }
        let a = coo.to_csr();
        let ic = Ic0::new(&a).unwrap();
        // Applying M⁻¹ = (L·Lᵀ)⁻¹ to each unit vector reproduces A⁻¹.
        for rhs_col in 0..3 {
            let mut r = [0.0; 3];
            r[rhs_col] = 1.0;
            let mut z = [0.0; 3];
            ic.solve_into(&r, &mut z);
            // Check A·z == e_col.
            let az = a.mul_vec(&z).unwrap();
            for (i, &v) in az.iter().enumerate() {
                let want = if i == rhs_col { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-12, "A·z[{i}] = {v}");
            }
        }
    }

    #[test]
    fn beats_jacobi_on_grid_laplacian() {
        let a = laplacian_2d(24, 24, 1e-3);
        let b = vec![1.0; a.nrows()];
        let opts = CgOptions::default();
        let jac = solve_pcg(&a, &b, None, &JacobiPreconditioner::new(&a).unwrap(), &opts).unwrap();
        let ic = solve_pcg(&a, &b, None, &Ic0::new(&a).unwrap(), &opts).unwrap();
        assert!(
            ic.iterations < jac.iterations,
            "ic0 {} vs jacobi {}",
            ic.iterations,
            jac.iterations
        );
        for (x, y) in ic.x.iter().zip(&jac.x) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_non_square_and_indefinite() {
        let coo = CooMatrix::new(2, 3);
        assert!(matches!(
            Ic0::new(&coo.to_csr()),
            Err(NumError::Dimension { .. })
        ));
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 1, 1.0);
        assert!(matches!(
            Ic0::new(&coo.to_csr()),
            Err(NumError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn missing_diagonal_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        assert!(matches!(
            Ic0::new(&coo.to_csr()),
            Err(NumError::NotPositiveDefinite)
        ));
    }
}
