//! Self-contained pseudo-random sampling: a uniform generator trait, the
//! xoshiro256++ generator behind it, and the normal/exponential transforms
//! the engines draw from.
//!
//! The workspace builds hermetically with no external crates, so the base
//! uniform stream lives here instead of `rand`. [`Xoshiro256pp`] is seeded
//! through SplitMix64, which makes `seed_from_u64` a proper hash: nearby
//! integer seeds produce statistically independent streams. Engines that
//! fan work out across threads derive one generator per work item with
//! [`Xoshiro256pp::stream`], so results are bit-identical at any thread
//! count.

use std::ops::Range;

/// Golden-ratio increment used to derive per-item stream seeds.
const STREAM_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A source of uniformly distributed `u64`s plus derived convenience draws.
///
/// Only [`Rng::next_u64`] is required; the ranged draws are provided. The
/// trait is deliberately small — every sampler in the workspace funnels
/// through these three methods.
pub trait Rng {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[lo, hi)` (up to rounding at the ends).
    ///
    /// The mantissa carries the generator's top 53 bits, so draws have full
    /// `f64` resolution on the unit interval.
    fn gen_range(&mut self, range: Range<f64>) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + (range.end - range.start) * unit
    }

    /// Returns a uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index requires a non-empty range");
        // Widening multiply maps the 64-bit draw onto [0, n) with bias
        // below 2⁻⁵³ for any n the workspace uses.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The xoshiro256++ generator (Blackman & Vigna), seeded via SplitMix64.
///
/// Fast, 256-bit state, passes BigCrush; the reference generator for the
/// whole workspace.
///
/// # Example
///
/// ```
/// use statobd_num::rng::{Rng, Xoshiro256pp};
///
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// let u = rng.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded through SplitMix64, so any two distinct seeds —
    /// including consecutive integers — yield unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = split_mix64(&mut sm);
        }
        // All-zero state is a fixed point of xoshiro; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = STREAM_GAMMA;
        }
        Xoshiro256pp { s }
    }

    /// Creates the generator for work item `index` of the stream family
    /// rooted at `seed`.
    ///
    /// Deriving one generator per chip/sample/device this way decouples the
    /// random stream from thread scheduling: results are identical whether
    /// the items run serially or across any number of threads.
    pub fn stream(seed: u64, index: u64) -> Self {
        Self::seed_from_u64(seed.wrapping_add(index.wrapping_mul(STREAM_GAMMA)))
    }

    /// Derives substream `index` of the family rooted at this generator's
    /// *current state* (counter-based stream splitting).
    ///
    /// The parent is not advanced: `substream` hashes the four state words
    /// through position-keyed SplitMix64 steps into a 64-bit fingerprint,
    /// offsets it by `index · γ` (the Weyl increment used by
    /// [`Xoshiro256pp::stream`]), and reseeds through SplitMix64. Because
    /// the derivation is a pure function of (state, index), any work item
    /// can reconstruct its generator with no coordination — the fleet
    /// workload derives one substream per chip so results are bit-identical
    /// at any thread count and independent of shard layout.
    ///
    /// Unlike [`Xoshiro256pp::stream`], nested derivations stay well
    /// separated: `substream(a).substream(b)` mixes the full intermediate
    /// state rather than adding `a + b` increments onto one seed.
    pub fn substream(&self, index: u64) -> Self {
        let mut fp = 0u64;
        for (k, &word) in self.s.iter().enumerate() {
            let mut st = word ^ (k as u64 + 1).wrapping_mul(STREAM_GAMMA);
            fp = fp.rotate_left(17) ^ split_mix64(&mut st);
        }
        Self::seed_from_u64(fp ^ index.wrapping_mul(STREAM_GAMMA))
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(STREAM_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Marsaglia polar-method standard-normal sampler.
///
/// The polar method produces two independent N(0,1) variates per acceptance;
/// the sampler caches the spare one, so it holds mutable state and is passed
/// explicitly alongside the RNG.
///
/// # Example
///
/// ```
/// use statobd_num::rng::{NormalSampler, Xoshiro256pp};
///
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// let mut sampler = NormalSampler::new();
/// let z = sampler.sample(&mut rng);
/// assert!(z.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with no cached variate.
    pub fn new() -> Self {
        NormalSampler { spare: None }
    }

    /// Draws one standard-normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Fills `out` with standard-normal variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for v in out {
            *v = self.sample(rng);
        }
    }
}

/// Draws one standard-exponential variate (rate 1) by inversion.
pub fn sample_exp1<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(123);
        let mut b = Xoshiro256pp::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let agree = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(agree, 0);
    }

    #[test]
    fn streams_are_distinct_and_reproducible() {
        let mut s0 = Xoshiro256pp::stream(42, 0);
        let mut s1 = Xoshiro256pp::stream(42, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
        let mut again = Xoshiro256pp::stream(42, 1);
        let mut s1b = Xoshiro256pp::stream(42, 1);
        assert_eq!(again.next_u64(), s1b.next_u64());
    }

    #[test]
    fn substreams_are_pure_and_reproducible() {
        let parent = Xoshiro256pp::seed_from_u64(42);
        let snapshot = parent.clone();
        let mut a = parent.substream(5);
        let mut b = parent.substream(5);
        // Deriving does not advance the parent.
        assert_eq!(parent, snapshot);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Distinct indices and distinct parents give distinct streams.
        let mut c = parent.substream(6);
        let mut d = Xoshiro256pp::seed_from_u64(43).substream(5);
        let mut a2 = parent.substream(5);
        let agree_c = (0..64).filter(|_| a2.next_u64() == c.next_u64()).count();
        let mut a3 = parent.substream(5);
        let agree_d = (0..64).filter(|_| a3.next_u64() == d.next_u64()).count();
        assert_eq!(agree_c, 0);
        assert_eq!(agree_d, 0);
    }

    #[test]
    fn substreams_are_statistically_independent() {
        // Pearson correlation between paired uniform draws from adjacent
        // substreams, and first-draw bucket uniformity across many
        // substreams — the smoke screen for counter-based splitting.
        let parent = Xoshiro256pp::seed_from_u64(2024);
        let n_streams = 4096;
        let draws = 16;
        let mut corr_num = 0.0;
        let mut buckets = [0usize; 8];
        for i in 0..n_streams {
            let mut a = parent.substream(i);
            let mut b = parent.substream(i + 1);
            for _ in 0..draws {
                let x = a.gen_range(0.0..1.0);
                let y = b.gen_range(0.0..1.0);
                corr_num += (x - 0.5) * (y - 0.5);
            }
            buckets[parent.substream(i).gen_index(8)] += 1;
        }
        // Var of U(0,1) is 1/12; normalize the cross-moment into Pearson r.
        let r = corr_num / (n_streams * draws) as f64 / (1.0 / 12.0);
        assert!(r.abs() < 0.02, "adjacent-substream correlation {r}");
        for &c in &buckets {
            let frac = c as f64 / n_streams as f64;
            assert!((frac - 0.125).abs() < 0.02, "first-draw bucket {frac}");
        }
    }

    #[test]
    fn nested_substreams_decorrelate() {
        // substream(a).substream(b) must not collide with substream(a+b)
        // or any shallow derivation — the failure mode of additive seeding.
        let parent = Xoshiro256pp::seed_from_u64(7);
        let mut nested = parent.substream(3).substream(4);
        let mut shallow = parent.substream(7);
        let agree = (0..64)
            .filter(|_| nested.next_u64() == shallow.next_u64())
            .count();
        assert_eq!(agree, 0);
    }

    #[test]
    fn gen_range_covers_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < -1.9 && hi > 2.9);
    }

    #[test]
    fn gen_range_mean_is_midpoint() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_index_is_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.gen_index(5)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(123);
        let mut s = NormalSampler::new();
        let n = 400_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut sum3 = 0.0;
        for _ in 0..n {
            let z = s.sample(&mut rng);
            sum += z;
            sum2 += z * z;
            sum3 += z * z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let skew = sum3 / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.03, "skew {skew}");
    }

    #[test]
    fn normal_tail_fraction() {
        // P(|Z| > 1.96) ≈ 0.05.
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut s = NormalSampler::new();
        let n = 200_000;
        let count = (0..n).filter(|_| s.sample(&mut rng).abs() > 1.96).count();
        let frac = count as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.005, "tail fraction {frac}");
    }

    #[test]
    fn fill_produces_distinct_values() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut s = NormalSampler::new();
        let mut buf = [0.0; 16];
        s.fill(&mut rng, &mut buf);
        let distinct: std::collections::HashSet<u64> = buf.iter().map(|v| v.to_bits()).collect();
        assert_eq!(distinct.len(), buf.len());
    }

    #[test]
    fn exp1_mean_is_one() {
        let mut rng = Xoshiro256pp::seed_from_u64(321);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| sample_exp1(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }
}
