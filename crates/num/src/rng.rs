//! Random-sampling helpers layered on top of [`rand`].
//!
//! Only the uniform stream comes from `rand`; the normal and exponential
//! transforms are implemented here (the workspace's offline dependency set
//! does not include `rand_distr`).

use rand::Rng;

/// Marsaglia polar-method standard-normal sampler.
///
/// The polar method produces two independent N(0,1) variates per acceptance;
/// the sampler caches the spare one, so it holds mutable state and is passed
/// explicitly alongside the RNG.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use statobd_num::rng::NormalSampler;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut sampler = NormalSampler::new();
/// let z = sampler.sample(&mut rng);
/// assert!(z.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with no cached variate.
    pub fn new() -> Self {
        NormalSampler { spare: None }
    }

    /// Draws one standard-normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Fills `out` with standard-normal variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for v in out {
            *v = self.sample(rng);
        }
    }
}

/// Draws one standard-exponential variate (rate 1) by inversion.
pub fn sample_exp1<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut s = NormalSampler::new();
        let n = 400_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut sum3 = 0.0;
        for _ in 0..n {
            let z = s.sample(&mut rng);
            sum += z;
            sum2 += z * z;
            sum3 += z * z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let skew = sum3 / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.03, "skew {skew}");
    }

    #[test]
    fn normal_tail_fraction() {
        // P(|Z| > 1.96) ≈ 0.05.
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = NormalSampler::new();
        let n = 200_000;
        let count = (0..n).filter(|_| s.sample(&mut rng).abs() > 1.96).count();
        let frac = count as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.005, "tail fraction {frac}");
    }

    #[test]
    fn fill_produces_distinct_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = NormalSampler::new();
        let mut buf = [0.0; 16];
        s.fill(&mut rng, &mut buf);
        let distinct: std::collections::HashSet<u64> = buf.iter().map(|v| v.to_bits()).collect();
        assert_eq!(distinct.len(), buf.len());
    }

    #[test]
    fn exp1_mean_is_one() {
        let mut rng = StdRng::seed_from_u64(321);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| sample_exp1(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }
}
