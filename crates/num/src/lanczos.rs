//! Blocked Lanczos / Krylov subspace iteration for the **top of the
//! spectrum** of a symmetric matrix.
//!
//! The spatial-correlation covariances this workspace decomposes have
//! rapidly decaying spectra: a handful of Karhunen–Loève components carry
//! essentially all the variance, yet the full Jacobi or QL solvers pay
//! `O(n³)` to resolve every one of the `n` eigenpairs before the consumer
//! throws most of them away. This module computes only the retained
//! leading eigenpairs by building a blocked Krylov basis with **full
//! reorthogonalization** and extracting Ritz pairs by explicit
//! Rayleigh–Ritz projection, stopping as soon as a [`StopRule`] is met:
//!
//! * [`StopRule::EnergyFraction`] — the converged leading eigenvalues
//!   capture a target fraction of `trace(A)` (model truncation),
//! * [`StopRule::AboveThreshold`] — every eigenvalue above a threshold has
//!   converged (negative-spectrum extraction for PSD repair, run on `−A`).
//!
//! Design notes:
//!
//! * **Blocked** (block size ≥ 2) rather than scalar Lanczos, with the
//!   projected problem solved densely at geometric checkpoints: the square
//!   process grids produce *degenerate* eigenvalue pairs (x/y symmetry)
//!   that single-vector Lanczos can only find through rounding noise.
//! * The start block is **seeded random**: a deterministic direction like
//!   all-ones is exactly orthogonal to every antisymmetric eigenvector of
//!   a symmetric grid kernel and would lock the iteration out of half the
//!   spectrum.
//! * Full two-pass (CGS2) reorthogonalization keeps the basis orthonormal
//!   to machine precision, so no ghost eigenvalues appear.
//! * Once a stop rule is first satisfied it must survive one further
//!   block expansion unchanged (same count, same eigenvalues within
//!   tolerance) before the result is accepted — insurance against Ritz
//!   values that interlace below a still-hidden eigenvalue.
//! * If the basis grows past `n/2` the asymptotic advantage is gone and
//!   the iteration falls back to the dense QL solver
//!   ([`crate::tridiag::symmetric_eigen_ql`]), filtered by the same rule,
//!   so the routine always terminates with a correct answer.
//!
//! All matrix products go through the deterministic parallel kernels in
//! [`crate::matrix`], so results are bit-identical at any thread count.

use crate::matrix::{axpy, dot, norm2, DMatrix};
use crate::rng::{NormalSampler, Xoshiro256pp};
use crate::tridiag::symmetric_eigen_ql;
use crate::{NumError, Result};

/// When to stop extracting leading eigenpairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Stop once the converged leading eigenvalues sum to at least this
    /// fraction of `trace(A)`. The trace is used as the total energy (for
    /// a PSD matrix they agree; for a slightly indefinite one the trace is
    /// what downstream truncation normalizes by, keeping the retained
    /// component count identical to a full-spectrum solve).
    EnergyFraction(f64),
    /// Stop once every eigenvalue strictly greater than this threshold has
    /// converged (and the next Ritz value sits at or below it).
    AboveThreshold(f64),
}

/// Options for [`top_eigenpairs`].
#[derive(Debug, Clone, Copy)]
pub struct LanczosOptions {
    /// Stopping rule deciding how much of the leading spectrum to resolve.
    pub rule: StopRule,
    /// Residual tolerance relative to the spectral scale: a Ritz pair
    /// `(θ, y)` counts as converged when `‖A·y − θ·y‖ ≤ tol·max|θ|`.
    pub tol: f64,
    /// Krylov block size (clamped to `[2, n]`); ≥ 2 so degenerate
    /// eigenvalue pairs are resolved.
    pub block_size: usize,
    /// Seed for the random orthonormal start block. Fixed default makes
    /// the decomposition deterministic; vary it only to probe robustness.
    pub seed: u64,
    /// Hard cap on the number of returned eigenpairs (`None` = no cap).
    pub max_components: Option<usize>,
    /// Worker threads for the blocked mat-vecs (1 = serial). Results are
    /// bit-identical regardless.
    pub threads: usize,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            rule: StopRule::EnergyFraction(1.0),
            tol: 1e-12,
            block_size: 4,
            seed: 0x5bd1_e995_9e37_79b9,
            max_components: None,
            threads: 1,
        }
    }
}

/// Outcome of scanning the current Ritz spectrum against the stop rule.
enum Scan {
    /// Leading `k` pairs satisfy the rule.
    Satisfied(usize),
    /// Need a larger basis.
    NotYet,
}

/// Computes the leading eigenpairs of the symmetric matrix `a` until the
/// stop rule in `opts` is satisfied.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues descending and
/// the `n × k` eigenvector matrix holding the matching unit vectors in
/// its columns — the same layout as the full-spectrum solvers, just with
/// `k ≤ n` columns.
///
/// # Errors
///
/// * [`NumError::Dimension`] if `a` is not square,
/// * [`NumError::Domain`] if the rule or tolerance is out of range,
/// * [`NumError::NoConvergence`] propagated from the dense fallback
///   (does not occur for finite symmetric input in practice).
pub fn top_eigenpairs(a: &DMatrix, opts: &LanczosOptions) -> Result<(Vec<f64>, DMatrix)> {
    let n = a.nrows();
    if !a.is_square() {
        return Err(NumError::Dimension {
            detail: format!(
                "eigendecomposition requires a square matrix, got {}x{}",
                a.nrows(),
                a.ncols()
            ),
        });
    }
    validate(opts)?;
    if n == 0 {
        return Ok((Vec::new(), DMatrix::zeros(0, 0)));
    }
    let cap = opts.max_components.unwrap_or(n).min(n);
    if cap == 0 || a.frobenius_norm() == 0.0 {
        return Ok((Vec::new(), DMatrix::zeros(n, 0)));
    }

    let block = opts.block_size.clamp(2, n);
    // Past this basis size the dense solver is at least as cheap.
    let fallback_at = (n / 2).max(4 * block).min(n);
    if n <= 4 * block {
        // Too small for a Krylov basis to pay off.
        let (vals, vecs) = symmetric_eigen_ql(a)?;
        return Ok(filter_full_spectrum(&vals, &vecs, opts.rule, cap));
    }

    let trace = a.trace();
    let mut rng = Xoshiro256pp::seed_from_u64(opts.seed);
    let mut normal = NormalSampler::new();
    let mut random_vec =
        move |n: usize| -> Vec<f64> { (0..n).map(|_| normal.sample(&mut rng)).collect() };

    let mut q_cols: Vec<Vec<f64>> = Vec::new(); // orthonormal basis
    let mut aq_cols: Vec<Vec<f64>> = Vec::new(); // cached A·q
    let mut h_rows: Vec<Vec<f64>> = Vec::new(); // H = QᵀAQ, grown per block
    let mut next_check = block;
    // First satisfaction of the rule, awaiting confirmation:
    // (k, eigenvalues of the leading k pairs at that checkpoint).
    let mut pending: Option<(usize, Vec<f64>)> = None;
    let mut exhausted = false;

    while q_cols.len() < fallback_at && !exhausted {
        // --- expand the basis by one block ---------------------------------
        let m0 = q_cols.len();
        let candidates: Vec<Vec<f64>> = if m0 == 0 {
            (0..block).map(|_| random_vec(n)).collect()
        } else {
            aq_cols[m0 - block.min(m0)..].to_vec()
        };
        for mut v in candidates {
            let mut accepted = false;
            for attempt in 0..5 {
                orthogonalize(&mut v, &q_cols);
                let nrm = norm2(&v);
                // The candidate must retain a meaningful component outside
                // the current span; otherwise it is numerically dependent.
                if nrm > 1e-8 {
                    let inv = 1.0 / nrm;
                    for x in &mut v {
                        *x *= inv;
                    }
                    accepted = true;
                    break;
                }
                if attempt == 4 {
                    break;
                }
                v = random_vec(n);
            }
            if !accepted {
                exhausted = true; // basis spans an invariant subspace
                break;
            }
            let aq = a.mul_vec_parallel(&v, opts.threads);
            // Grow H symmetrically: new row = qᵀ_new·(A·q_old) for the old
            // columns plus the new diagonal entry.
            let mut row: Vec<f64> = aq_cols.iter().map(|old_aq| dot(&v, old_aq)).collect();
            row.push(dot(&v, &aq));
            for (old_row, &hij) in h_rows.iter_mut().zip(&row) {
                old_row.push(hij);
            }
            h_rows.push(row);
            q_cols.push(v);
            aq_cols.push(aq);
            if q_cols.len() == n {
                break;
            }
        }

        let m = q_cols.len();
        let force_check = pending.is_some() || exhausted || m == n || m >= fallback_at;
        if m < next_check && !force_check {
            continue;
        }
        next_check = (m + block).max(m + m / 3);

        // --- Rayleigh–Ritz at this checkpoint ------------------------------
        let h = DMatrix::from_fn(m, m, |i, j| 0.5 * (h_rows[i][j] + h_rows[j][i]));
        let (theta, s) = symmetric_eigen_ql(&h)?;
        let scale = theta.iter().fold(0.0f64, |acc, t| acc.max(t.abs()));
        if scale == 0.0 {
            return Ok((Vec::new(), DMatrix::zeros(n, 0)));
        }
        let res_tol = opts.tol * scale;
        let mut residuals: Vec<Option<f64>> = vec![None; m];
        let converged = |i: usize, residuals: &mut Vec<Option<f64>>| -> bool {
            let r = *residuals[i]
                .get_or_insert_with(|| ritz_residual(&q_cols, &aq_cols, &s, i, theta[i]));
            r <= res_tol
        };

        let complete = m == n || exhausted;
        let scan = match opts.rule {
            StopRule::EnergyFraction(f) => {
                let target = f * trace;
                let scale = theta.first().map(|t| t.abs()).unwrap_or(0.0);
                let mut energy = 0.0;
                let mut k = 0;
                let mut verdict = Scan::NotYet;
                while k < m {
                    let target_met = energy >= target && target > 0.0;
                    // Never cut inside a numerically degenerate cluster:
                    // the retained subspace would depend on the solver
                    // (see `extend_over_cluster`). Keep absorbing cluster
                    // members — which must also converge — before stopping.
                    let in_cluster = target_met
                        && k > 0
                        && theta[k] > 0.0
                        && (theta[k - 1] - theta[k]).abs() <= CLUSTER_REL_GAP * scale;
                    if (target_met && !in_cluster) || k == cap {
                        verdict = Scan::Satisfied(k);
                        break;
                    }
                    if theta[k] <= 0.0 {
                        // Positive spectrum exhausted; with a complete
                        // basis this is everything there is.
                        if complete {
                            verdict = Scan::Satisfied(k);
                        }
                        break;
                    }
                    if !converged(k, &mut residuals) {
                        break;
                    }
                    energy += theta[k];
                    k += 1;
                }
                if let Scan::NotYet = verdict {
                    if k == m && (energy >= target || complete) {
                        verdict = Scan::Satisfied(k);
                    }
                }
                verdict
            }
            StopRule::AboveThreshold(t) => {
                // Certifying "nothing above t remains" needs the leading
                // Ritz pair itself converged: Ritz values approach
                // eigenvalues from below, so an unconverged θ₀ at or
                // below t proves nothing about λ_max.
                let mut verdict = Scan::NotYet;
                if converged(0, &mut residuals) {
                    let mut k = 0;
                    let mut all_converged = true;
                    while k < m && theta[k] > t && k < cap {
                        if !converged(k, &mut residuals) {
                            all_converged = false;
                            break;
                        }
                        k += 1;
                    }
                    // Accept only if the basis also shows spectrum at or
                    // below t (or is complete): the tail must be visible.
                    if all_converged && (k < m || complete || k == cap) {
                        verdict = Scan::Satisfied(k);
                    }
                }
                verdict
            }
        };

        match scan {
            Scan::NotYet => pending = None,
            Scan::Satisfied(k) => {
                let confirm_tol = (10.0 * res_tol).max(1e3 * f64::EPSILON * scale);
                let confirmed = complete
                    || match &pending {
                        Some((pk, pvals)) => {
                            *pk == k
                                && pvals
                                    .iter()
                                    .zip(&theta[..k])
                                    .all(|(p, t)| (p - t).abs() <= confirm_tol)
                        }
                        None => false,
                    };
                if confirmed {
                    return Ok(assemble(&q_cols, &s, &theta, k, n));
                }
                pending = Some((k, theta[..k].to_vec()));
            }
        }
    }

    // Krylov phase did not settle within budget: dense fallback.
    let (vals, vecs) = symmetric_eigen_ql(a)?;
    Ok(filter_full_spectrum(&vals, &vecs, opts.rule, cap))
}

/// Extracts the eigenpairs of `a` with eigenvalue **below** `-threshold`
/// (`threshold ≥ 0`), most negative first — the partial decomposition
/// needed to project a slightly indefinite covariance back onto the PSD
/// cone without resolving its (much larger) positive spectrum.
///
/// Implemented as [`top_eigenpairs`] on `−A` with
/// [`StopRule::AboveThreshold`].
///
/// # Errors
///
/// As for [`top_eigenpairs`]; additionally [`NumError::Domain`] if
/// `threshold` is negative or non-finite.
pub fn negative_eigenpairs(
    a: &DMatrix,
    threshold: f64,
    threads: usize,
) -> Result<(Vec<f64>, DMatrix)> {
    if !(threshold >= 0.0 && threshold.is_finite()) {
        return Err(NumError::Domain {
            detail: format!("negative-spectrum threshold must be finite and >= 0, got {threshold}"),
        });
    }
    let mut neg = a.clone();
    neg.scale_mut(-1.0);
    let opts = LanczosOptions {
        rule: StopRule::AboveThreshold(threshold),
        threads,
        ..LanczosOptions::default()
    };
    let (mut vals, vecs) = top_eigenpairs(&neg, &opts)?;
    for v in &mut vals {
        *v = -*v;
    }
    Ok((vals, vecs))
}

/// Applies a [`StopRule`] to a fully resolved spectrum (descending
/// eigenvalues, matching eigenvector columns), returning the retained
/// leading pairs capped at `max_components`.
///
/// This is the truncation the iterative path converges to; the dense
/// solvers use it so that "solve fully, then truncate" and "solve
/// partially" select the identical component set.
pub fn filter_full_spectrum(
    values: &[f64],
    vectors: &DMatrix,
    rule: StopRule,
    max_components: usize,
) -> (Vec<f64>, DMatrix) {
    let n = values.len();
    let k = match rule {
        StopRule::EnergyFraction(f) => {
            let target = f * values.iter().sum::<f64>();
            let mut energy = 0.0;
            let mut k = 0;
            while k < n && k < max_components {
                if energy >= target && target > 0.0 {
                    break;
                }
                if values[k] <= 0.0 {
                    break;
                }
                energy += values[k];
                k += 1;
            }
            extend_over_cluster(values, k, max_components)
        }
        StopRule::AboveThreshold(t) => values
            .iter()
            .take(max_components)
            .take_while(|&&v| v > t)
            .count(),
    };
    let kept = DMatrix::from_fn(vectors.nrows(), k, |i, j| vectors[(i, j)]);
    (values[..k].to_vec(), kept)
}

/// Relative gap below which adjacent eigenvalues count as one degenerate
/// cluster for truncation purposes (see [`extend_over_cluster`]).
pub const CLUSTER_REL_GAP: f64 = 1e-8;

/// Extends a truncation point `k` so it never splits a numerically
/// degenerate eigenvalue cluster.
///
/// Symmetric grids produce exactly repeated eigenvalues; cutting inside
/// such a cluster would make the retained subspace depend on which
/// arbitrary basis of the eigenspace the solver happened to return. While
/// the next (positive) eigenvalue sits within [`CLUSTER_REL_GAP`]`·|λ₀|`
/// of the last retained one, it is kept too. `values` must be sorted
/// descending; the result never exceeds `cap` or `values.len()`.
pub fn extend_over_cluster(values: &[f64], mut k: usize, cap: usize) -> usize {
    if k == 0 {
        return 0;
    }
    let scale = values.first().map(|v| v.abs()).unwrap_or(0.0);
    while k < values.len()
        && k < cap
        && values[k] > 0.0
        && (values[k - 1] - values[k]).abs() <= CLUSTER_REL_GAP * scale
    {
        k += 1;
    }
    k
}

fn validate(opts: &LanczosOptions) -> Result<()> {
    let rule_ok = match opts.rule {
        StopRule::EnergyFraction(f) => (0.0..=1.0).contains(&f),
        StopRule::AboveThreshold(t) => t.is_finite(),
    };
    if !rule_ok {
        return Err(NumError::Domain {
            detail: format!("invalid stop rule {:?}", opts.rule),
        });
    }
    if !(opts.tol > 0.0 && opts.tol.is_finite()) {
        return Err(NumError::Domain {
            detail: format!(
                "Lanczos tolerance must be positive and finite, got {}",
                opts.tol
            ),
        });
    }
    Ok(())
}

/// Two-pass classical Gram–Schmidt (CGS2) of `v` against the orthonormal
/// columns in `basis`. Two passes bound the loss of orthogonality at
/// `O(ε)` regardless of how parallel `v` is to the span.
fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) {
    for _ in 0..2 {
        for q in basis {
            let c = dot(v, q);
            if c != 0.0 {
                axpy(-c, q, v);
            }
        }
    }
}

/// Residual `‖A·y − θ·y‖` of the Ritz pair `i`, where `y = Q·s_i` and
/// `A·y = (A·Q)·s_i` comes from the cached products.
fn ritz_residual(
    q_cols: &[Vec<f64>],
    aq_cols: &[Vec<f64>],
    s: &DMatrix,
    i: usize,
    theta: f64,
) -> f64 {
    let n = q_cols[0].len();
    let mut y = vec![0.0; n];
    let mut ay = vec![0.0; n];
    for (j, (q, aq)) in q_cols.iter().zip(aq_cols).enumerate() {
        let sji = s[(j, i)];
        if sji != 0.0 {
            axpy(sji, q, &mut y);
            axpy(sji, aq, &mut ay);
        }
    }
    axpy(-theta, &y, &mut ay);
    norm2(&ay)
}

/// Materializes the leading `k` Ritz vectors `y_i = Q·s_i` into an
/// `n × k` eigenvector matrix.
fn assemble(
    q_cols: &[Vec<f64>],
    s: &DMatrix,
    theta: &[f64],
    k: usize,
    n: usize,
) -> (Vec<f64>, DMatrix) {
    let mut vecs = DMatrix::zeros(n, k);
    for (j, q) in q_cols.iter().enumerate() {
        for i in 0..k {
            let sji = s[(j, i)];
            if sji != 0.0 {
                for (r, &qr) in q.iter().enumerate() {
                    vecs[(r, i)] += sji * qr;
                }
            }
        }
    }
    (theta[..k].to_vec(), vecs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exponential-decay grid kernel: the covariance shape the pipeline
    /// actually decomposes, with degenerate pairs from grid symmetry.
    fn grid_kernel(side: usize, corr: f64) -> DMatrix {
        let n = side * side;
        let coord = |k: usize| ((k % side) as f64, (k / side) as f64);
        DMatrix::from_fn(n, n, |i, j| {
            let (xi, yi) = coord(i);
            let (xj, yj) = coord(j);
            (-(((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()) / corr).exp()
        })
    }

    #[test]
    fn energy_rule_matches_full_solver_on_grid_kernel() {
        let a = grid_kernel(9, 2.5); // n = 81, has degenerate pairs
        let opts = LanczosOptions {
            rule: StopRule::EnergyFraction(0.99),
            ..LanczosOptions::default()
        };
        let (vals, vecs) = top_eigenpairs(&a, &opts).unwrap();
        let (full_vals, full_vecs) = symmetric_eigen_ql(&a).unwrap();
        let (want_vals, _) = filter_full_spectrum(&full_vals, &full_vecs, opts.rule, a.nrows());
        assert_eq!(vals.len(), want_vals.len(), "component count");
        for (got, want) in vals.iter().zip(&want_vals) {
            assert!((got - want).abs() < 1e-9 * want_vals[0], "{got} vs {want}");
        }
        // Each returned vector is a unit eigenvector: ‖A·v − λ·v‖ small.
        for (i, &l) in vals.iter().enumerate() {
            let v = vecs.column(i);
            assert!((norm2(&v) - 1.0).abs() < 1e-10);
            let mut av = a.mul_vec(&v);
            axpy(-l, &v, &mut av);
            assert!(norm2(&av) < 1e-9 * vals[0], "pair {i} residual");
        }
    }

    #[test]
    fn full_energy_on_small_matrix_recovers_everything() {
        let a = grid_kernel(3, 1.0); // n = 9 → dense path internally
        let opts = LanczosOptions::default();
        let (vals, vecs) = top_eigenpairs(&a, &opts).unwrap();
        assert_eq!(vals.len(), 9);
        let recon = vecs
            .mul(&DMatrix::from_fn(
                9,
                9,
                |i, j| {
                    if i == j {
                        vals[i]
                    } else {
                        0.0
                    }
                },
            ))
            .unwrap()
            .mul(&vecs.transpose())
            .unwrap();
        for i in 0..9 {
            for j in 0..9 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn negative_eigenpairs_finds_planted_negative_direction() {
        // PSD grid kernel plus a planted negative rank-one bump.
        let mut a = grid_kernel(8, 2.0); // n = 64
        let n = a.nrows();
        let u: Vec<f64> = (0..n)
            .map(|i| ((i as f64 * 0.7).sin() + 0.3) / (n as f64).sqrt())
            .collect();
        let u_norm = norm2(&u);
        let strength = 0.5;
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] -= strength * (u[i] / u_norm) * (u[j] / u_norm) * 4.0;
            }
        }
        let (neg_vals, neg_vecs) = negative_eigenpairs(&a, 1e-10, 1).unwrap();
        let (full_vals, _) = symmetric_eigen_ql(&a).unwrap();
        let want: Vec<f64> = full_vals
            .iter()
            .rev()
            .filter(|&&v| v < -1e-10)
            .cloned()
            .collect();
        assert_eq!(neg_vals.len(), want.len(), "negative count");
        for (got, want) in neg_vals.iter().zip(&want) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
        for (i, &l) in neg_vals.iter().enumerate() {
            let v = neg_vecs.column(i);
            let mut av = a.mul_vec(&v);
            axpy(-l, &v, &mut av);
            assert!(norm2(&av) < 1e-8, "pair {i}");
        }
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        let a = grid_kernel(9, 3.0);
        let base = LanczosOptions {
            rule: StopRule::EnergyFraction(0.95),
            ..LanczosOptions::default()
        };
        let (v1, m1) = top_eigenpairs(&a, &LanczosOptions { threads: 1, ..base }).unwrap();
        let (v4, m4) = top_eigenpairs(&a, &LanczosOptions { threads: 4, ..base }).unwrap();
        assert_eq!(v1.len(), v4.len());
        for (x, y) in v1.iter().zip(&v4) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in m1.as_slice().iter().zip(m4.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn max_components_caps_the_result() {
        let a = grid_kernel(8, 2.0);
        let opts = LanczosOptions {
            rule: StopRule::EnergyFraction(1.0),
            max_components: Some(3),
            ..LanczosOptions::default()
        };
        let (vals, vecs) = top_eigenpairs(&a, &opts).unwrap();
        assert_eq!(vals.len(), 3);
        assert_eq!(vecs.ncols(), 3);
        let (full_vals, _) = symmetric_eigen_ql(&a).unwrap();
        for (got, want) in vals.iter().zip(&full_vals) {
            assert!((got - want).abs() < 1e-9 * full_vals[0]);
        }
    }

    #[test]
    fn filter_full_spectrum_rules() {
        let vals = vec![4.0, 3.0, 2.0, 1.0, -0.5];
        let vecs = DMatrix::identity(5);
        let (kept, m) = filter_full_spectrum(&vals, &vecs, StopRule::EnergyFraction(0.7), 5);
        // trace = 9.5, target 6.65 → 4 + 3 = 7 ≥ 6.65 → 2 components.
        assert_eq!(kept, vec![4.0, 3.0]);
        assert_eq!(m.ncols(), 2);
        let (kept, _) = filter_full_spectrum(&vals, &vecs, StopRule::AboveThreshold(1.5), 5);
        assert_eq!(kept, vec![4.0, 3.0, 2.0]);
        let (kept, _) = filter_full_spectrum(&vals, &vecs, StopRule::EnergyFraction(1.0), 3);
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn rejects_invalid_options() {
        let a = DMatrix::identity(4);
        let bad_rule = LanczosOptions {
            rule: StopRule::EnergyFraction(1.5),
            ..LanczosOptions::default()
        };
        assert!(matches!(
            top_eigenpairs(&a, &bad_rule),
            Err(NumError::Domain { .. })
        ));
        let bad_tol = LanczosOptions {
            tol: 0.0,
            ..LanczosOptions::default()
        };
        assert!(matches!(
            top_eigenpairs(&a, &bad_tol),
            Err(NumError::Domain { .. })
        ));
        assert!(negative_eigenpairs(&a, -1.0, 1).is_err());
    }

    #[test]
    fn zero_and_empty_matrices() {
        let (vals, vecs) =
            top_eigenpairs(&DMatrix::zeros(0, 0), &LanczosOptions::default()).unwrap();
        assert!(vals.is_empty());
        assert_eq!(vecs.ncols(), 0);
        let (vals, vecs) =
            top_eigenpairs(&DMatrix::zeros(6, 6), &LanczosOptions::default()).unwrap();
        assert!(vals.is_empty());
        assert_eq!(vecs.nrows(), 6);
        assert_eq!(vecs.ncols(), 0);
    }
}
